//! Accept loop, bounded worker pool, graceful drain.
//!
//! The listener runs non-blocking and is polled against the shared
//! shutdown flag. Accepted connections go through an mpsc channel to a
//! fixed pool of worker threads (the same bounded-fan-out discipline as
//! `Pipeline::answer_batch`, but long-lived since connections arrive
//! forever). On shutdown the accept loop stops taking connections, drops
//! the channel sender, and the workers drain whatever was already
//! accepted before exiting — in-flight requests always complete. The
//! journal is flushed last so the drain itself is on the flight record.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use relpat_obs::{counter, global_journal, jevent, Level};

use crate::app::App;
use crate::http::{read_request, ReadError, Response};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-connection read timeout — a stalled client cannot block drain
    /// forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
        ServerConfig { workers, read_timeout: Duration::from_secs(30) }
    }
}

/// A running server; join it to wait for drain.
pub struct Server {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the accept loop has exited and every worker has
    /// drained its queue.
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Spawns the accept loop and worker pool on an already-bound listener.
pub fn spawn(listener: TcpListener, app: Arc<App>, config: ServerConfig) -> std::io::Result<Server> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = app.shutdown_flag();

    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let app = Arc::clone(&app);
            let timeout = config.read_timeout;
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &app, timeout))
                .expect("spawn worker")
        })
        .collect();

    let accept_shutdown = Arc::clone(&shutdown);
    let accept = thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || {
            while !accept_shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        counter!("serve.http.accepted");
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            }
            // Stop feeding the pool; workers exit once the queue is dry.
            drop(tx);
            for worker in workers {
                let _ = worker.join();
            }
            jevent!(Level::Info, "serve.drained");
            global_journal().flush();
        })
        .expect("spawn accept loop");

    Ok(Server { addr, accept, shutdown })
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, app: &App, timeout: Duration) {
    loop {
        let stream = {
            let guard = rx.lock().expect("connection queue lock");
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, app, timeout),
            Err(_) => break, // sender dropped: drain complete
        }
    }
}

fn handle_connection(stream: TcpStream, app: &App, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(req) => match catch_unwind(AssertUnwindSafe(|| app.handle(&req))) {
            Ok(resp) => resp,
            Err(_) => {
                counter!("serve.http.panics");
                jevent!(Level::Error, "serve.panic", "path" => req.path);
                Response::error(500, "internal error")
            }
        },
        Err(ReadError::Eof) => return,
        Err(ReadError::Io(_)) => return,
        Err(ReadError::Bad(msg)) => {
            counter!("serve.http.errors");
            Response::error(400, msg)
        }
    };
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}
