//! Application state and request routing.
//!
//! [`App`] owns everything a worker thread needs to serve one request: the
//! QA [`Pipeline`] (installed after the KB and pattern store finish
//! loading, which is what flips `/readyz`), the tail-sampled
//! [`TraceStore`], and the shared shutdown flag that `POST /shutdown`
//! raises for the accept loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use relpat_obs::{
    counter, gauge, global, global_journal, jevent, profiler, render_prometheus, span,
    BurnReport, Json, Level, SloConfig, SloMonitor, TraceStore, TraceStoreConfig,
};
use relpat_qa::{Pipeline, Stage};
use relpat_sparql::QueryResult;

use crate::http::{Request, Response};

pub struct App {
    pipeline: OnceLock<Pipeline<'static>>,
    traces: TraceStore,
    slo: SloMonitor,
    /// Second (monitor clock) of the last burn-rate check, so request
    /// handling re-evaluates the objectives at most once per second.
    slo_last_check: AtomicU64,
    ready: AtomicBool,
    shutdown: Arc<AtomicBool>,
}

impl App {
    pub fn new(trace_config: TraceStoreConfig) -> Arc<App> {
        Self::with_slo(trace_config, SloConfig::default())
    }

    /// An [`App`] with explicit latency/error objectives (the serve binary
    /// builds these from `--slo-*` flags).
    pub fn with_slo(trace_config: TraceStoreConfig, slo_config: SloConfig) -> Arc<App> {
        Arc::new(App {
            pipeline: OnceLock::new(),
            traces: TraceStore::new(trace_config),
            slo: SloMonitor::new(slo_config),
            slo_last_check: AtomicU64::new(0),
            ready: AtomicBool::new(false),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The flag the accept loop polls; `POST /shutdown` sets it.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Installs the loaded pipeline and flips readiness. Panics if called
    /// twice — the server has exactly one load phase.
    pub fn install_pipeline(&self, pipeline: Pipeline<'static>) {
        if self.pipeline.set(pipeline).is_err() {
            panic!("pipeline installed twice");
        }
        self.ready.store(true, Ordering::Release);
        jevent!(Level::Info, "serve.ready");
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Routes one request. Infallible: every outcome is an HTTP response.
    pub fn handle(&self, req: &Request) -> Response {
        counter!("serve.http.requests");
        // SLO-covered endpoints get wall-clock latency + error accounting
        // around the whole handler (what the caller experiences).
        let slo_endpoint = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/answer") => Some("answer"),
            ("POST", "/sparql") => Some("sparql"),
            _ => None,
        };
        let slo_start = slo_endpoint.map(|_| Instant::now());
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/readyz") => {
                if self.is_ready() {
                    Response::text(200, "ready\n")
                } else {
                    Response::text(503, "loading\n")
                }
            }
            ("GET", "/metrics") => {
                self.refresh_gauges();
                Response::prometheus(render_prometheus(&global().snapshot()))
            }
            ("GET", "/debug/store") => self.handle_debug_store(),
            ("GET", "/debug/profile") => self.handle_profile(req),
            ("GET", "/debug/slo") => self.handle_slo(),
            ("POST", "/answer") => self.handle_answer(req),
            ("POST", "/sparql") => self.handle_sparql(req),
            ("GET", "/traces") => self.handle_traces_list(req),
            ("GET", path) if path.starts_with("/traces/") => self.handle_trace_get(path),
            ("GET", "/events/tail") => {
                let n = parse_count(req.query_param("n"), 100);
                Response::json(200, &global_journal().tail_json(n))
            }
            ("POST", "/shutdown") => {
                jevent!(Level::Info, "serve.shutdown", "reason" => "POST /shutdown");
                self.shutdown.store(true, Ordering::Release);
                Response::text(200, "draining\n")
            }
            ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
            _ => Response::error(405, "method not allowed"),
        };
        if resp.status >= 400 {
            counter!("serve.http.errors");
        }
        if let (Some(endpoint), Some(start)) = (slo_endpoint, slo_start) {
            // Objectives cover the ready-serving period: an instance still
            // failing /readyz isn't receiving routed traffic, so its
            // load-shedding 503s don't burn the budget. Once ready, client
            // mistakes (4xx) don't burn it either; server faults (5xx) and
            // slowness do.
            if self.is_ready() {
                let error = resp.status >= 500;
                self.slo.record(endpoint, start.elapsed().as_nanos() as u64, error);
                self.maybe_check_slo();
            }
        }
        resp
    }

    /// Re-evaluates burn rates at most once per second of request traffic —
    /// breaches surface promptly under load without a per-request
    /// full-window scan. `/metrics` and `/debug/slo` always check fresh.
    fn maybe_check_slo(&self) {
        let now = self.slo.now_s();
        let last = self.slo_last_check.load(Ordering::Relaxed);
        if now > last
            && self
                .slo_last_check
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.slo.check(global());
        }
    }

    /// `GET /debug/slo` — current burn rates per objective, checking (and
    /// refreshing gauges / transition events) on the spot.
    fn handle_slo(&self) -> Response {
        let reports = self.slo.check(global());
        let body = Json::obj().set(
            "objectives",
            Json::Arr(reports.iter().map(BurnReport::to_json).collect()),
        );
        Response::json(200, &body)
    }

    /// `GET /debug/profile?seconds=N[&format=json]` — observe the sampling
    /// profiler for a window and return the collapsed-stack delta
    /// (flamegraph-compatible text, or JSON with `format=json`).
    ///
    /// If the sampler is off it is enabled for the window and switched back
    /// off afterwards. The handling worker blocks for the window (capped at
    /// 30 s); the rest of the pool keeps serving, and those requests are
    /// exactly the traffic the profile captures.
    fn handle_profile(&self, req: &Request) -> Response {
        let seconds = req
            .query_param("seconds")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(2.0)
            .clamp(0.1, 30.0);
        let prof = profiler();
        let was_on = prof.is_enabled();
        if !was_on {
            prof.enable(relpat_obs::prof::DEFAULT_HZ);
        }
        let before = prof.snapshot();
        std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
        let window = prof.snapshot().delta_since(&before);
        if !was_on {
            prof.disable();
        }
        jevent!(
            Level::Info,
            "serve.profile",
            "seconds" => seconds,
            "samples" => window.samples,
            "stacks" => window.stacks.len(),
        );
        if req.query_param("format") == Some("json") {
            let body = window
                .to_json()
                .set("rate_hz", prof.rate_hz())
                .set("seconds", Json::Num(seconds));
            Response::json(200, &body)
        } else {
            Response::text(200, window.collapsed())
        }
    }

    fn handle_answer(&self, req: &Request) -> Response {
        let Some(pipeline) = self.pipeline.get() else {
            return Response::error(503, "pipeline still loading");
        };
        let Some(body) = req.body_str() else {
            return Response::error(400, "body is not UTF-8");
        };
        let (question, explain) = match Json::parse(body) {
            Ok(json) => {
                let question = match json.get("question").and_then(Json::as_str) {
                    Some(q) if !q.trim().is_empty() => q.to_string(),
                    _ => return Response::error(400, "missing \"question\" field"),
                };
                (question, json.get("explain").and_then(Json::as_bool).unwrap_or(false))
            }
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        };

        let response = {
            let _timer = span!("serve.answer_ns");
            if explain {
                pipeline.answer_explained(&question)
            } else {
                pipeline.answer(&question)
            }
        };
        let error = response.stage != Stage::Answered;
        counter!("serve.answers");
        if error {
            counter!("serve.answers.unanswered");
        }
        let outcome = self.traces.record(&response.trace, error);

        let answers: Vec<Json> =
            response.answer_texts(pipeline.kb()).into_iter().map(Json::from).collect();
        let mut body = Json::obj()
            .set("question", response.trace.question.clone())
            .set("stage", response.trace.stage.clone())
            .set("answered", !error)
            .set("answers", Json::Arr(answers))
            .set("total_ns", response.trace.total_nanos())
            .set("trace_id", outcome.id)
            .set(
                "retained",
                match outcome.retained {
                    Some(r) => Json::from(r.as_str()),
                    None => Json::Null,
                },
            );
        if explain {
            body = body.set(
                "plans",
                Json::Arr(response.trace.plans.iter().map(|p| p.to_json()).collect()),
            );
        }
        Response::json(200, &body)
    }

    /// `POST /sparql` — raw SPARQL over the loaded KB. Body:
    /// `{"query": "...", "expect": "solutions" | "boolean"}` (`expect`
    /// optional). When `expect` names a result kind the query doesn't
    /// produce, the fallible accessors turn the mismatch into a 400 error
    /// response — the worker thread survives to serve the next request.
    fn handle_sparql(&self, req: &Request) -> Response {
        let Some(pipeline) = self.pipeline.get() else {
            return Response::error(503, "pipeline still loading");
        };
        let Some(body) = req.body_str() else {
            return Response::error(400, "body is not UTF-8");
        };
        let (query, expect) = match Json::parse(body) {
            Ok(json) => {
                let query = match json.get("query").and_then(Json::as_str) {
                    Some(q) if !q.trim().is_empty() => q.to_string(),
                    _ => return Response::error(400, "missing \"query\" field"),
                };
                (query, json.get("expect").and_then(Json::as_str).map(str::to_string))
            }
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        };
        counter!("serve.sparql");
        let result = match pipeline.kb().query(&query) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let result = match expect.as_deref() {
            Some("solutions") => match result.into_solutions() {
                Ok(s) => QueryResult::Solutions(s),
                Err(e) => return Response::error(400, &e.to_string()),
            },
            Some("boolean") => match result.into_boolean() {
                Ok(b) => QueryResult::Boolean(b),
                Err(e) => return Response::error(400, &e.to_string()),
            },
            Some(other) => {
                return Response::error(
                    400,
                    &format!("unknown \"expect\" kind {other:?} (use \"solutions\" or \"boolean\")"),
                )
            }
            None => result,
        };
        let body = match result {
            QueryResult::Boolean(b) => Json::obj().set("kind", "boolean").set("value", b),
            QueryResult::Solutions(sols) => {
                let variables =
                    sols.variables.iter().map(|v| Json::from(v.as_str())).collect();
                let rows = sols
                    .rows
                    .iter()
                    .map(|row| {
                        Json::Arr(
                            row.iter()
                                .map(|cell| match cell {
                                    Some(term) => Json::from(term.to_string().as_str()),
                                    None => Json::Null,
                                })
                                .collect(),
                        )
                    })
                    .collect();
                Json::obj()
                    .set("kind", "solutions")
                    .set("variables", Json::Arr(variables))
                    .set("rows", Json::Arr(rows))
            }
        };
        Response::json(200, &body)
    }

    /// `GET /debug/store` — point-in-time health of the triple store, the
    /// query cache and the trace store, as one JSON object. Also refreshes
    /// the corresponding gauges so `/metrics` scraped right after agrees.
    fn handle_debug_store(&self) -> Response {
        let Some(pipeline) = self.pipeline.get() else {
            return Response::error(503, "pipeline still loading");
        };
        self.refresh_gauges();
        let kb = pipeline.kb();
        let stats = kb.graph.stats();
        let (cache_len, cache_capacity) = kb.cache_occupancy();
        let cache = kb.cache_stats();
        let body = Json::obj()
            .set(
                "graph",
                Json::obj()
                    .set("frozen_triples", stats.frozen_triples)
                    .set("triples", stats.triples)
                    .set("overlay_len", stats.overlay_len)
                    .set("tombstones", stats.tombstones)
                    .set("compactions", stats.compactions)
                    .set("last_freeze_nanos", stats.last_freeze_nanos),
            )
            .set(
                "query_cache",
                Json::obj()
                    .set("len", cache_len)
                    .set("capacity", cache_capacity)
                    .set("hits", cache.hits)
                    .set("misses", cache.misses)
                    .set("hit_rate", Json::Num(cache.hit_rate())),
            )
            .set("traces", self.traces.stats().to_json());
        Response::json(200, &body)
    }

    /// Refreshes the store/cache/trace-retention health gauges from their
    /// sources of truth. Called on every `/metrics` scrape and
    /// `/debug/store` read — gauges are levels, so sampling at read time is
    /// both cheapest and freshest.
    fn refresh_gauges(&self) {
        if let Some(pipeline) = self.pipeline.get() {
            let kb = pipeline.kb();
            let stats = kb.graph.stats();
            gauge!("store.frozen_triples", stats.frozen_triples);
            gauge!("store.triples", stats.triples);
            gauge!("store.overlay_len", stats.overlay_len);
            gauge!("store.tombstones", stats.tombstones);
            gauge!("store.compactions", stats.compactions);
            gauge!("store.last_freeze_nanos", stats.last_freeze_nanos);
            let (len, capacity) = kb.cache_occupancy();
            gauge!("sparql.cache.len", len);
            gauge!("sparql.cache.capacity", capacity);
        }
        let traces = self.traces.stats();
        gauge!("traces.held", traces.held);
        gauge!("traces.bytes", traces.bytes);
        // Burn-rate gauges (slo.*) refresh through the monitor itself so a
        // scrape always sees rates computed over the current second.
        // prof_samples_total / prof_dropped_total need no refresh here: the
        // sampler bumps the global counters itself as it captures.
        self.slo.check(global());
    }

    fn handle_trace_get(&self, path: &str) -> Response {
        let id_part = &path["/traces/".len()..];
        let Ok(id) = id_part.parse::<u64>() else {
            return Response::error(400, "trace id must be an integer");
        };
        match self.traces.get(id) {
            Some(trace) => Response::json(200, &trace),
            None => Response::error(404, "trace not found (never stored or since evicted)"),
        }
    }

    fn handle_traces_list(&self, req: &Request) -> Response {
        let n = parse_count(req.query_param("slow"), 10);
        let body = Json::obj()
            .set("slowest", self.traces.slowest(n))
            .set("stats", self.traces.stats().to_json());
        Response::json(200, &body)
    }
}

fn parse_count(param: Option<&str>, default: usize) -> usize {
    param.and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), query: Vec::new(), body: Vec::new() }
    }

    #[test]
    fn not_ready_until_pipeline_installed() {
        let app = App::new(TraceStoreConfig::default());
        let resp = app.handle(&get("/readyz"));
        assert_eq!(resp.status, 503);
        assert_eq!(app.handle(&get("/healthz")).status, 200);
    }

    #[test]
    fn answer_without_pipeline_is_503_and_bad_routes_404() {
        let app = App::new(TraceStoreConfig::default());
        let req = Request {
            method: "POST".into(),
            path: "/answer".into(),
            query: Vec::new(),
            body: br#"{"question": "Who?"}"#.to_vec(),
        };
        assert_eq!(app.handle(&req).status, 503);
        assert_eq!(app.handle(&get("/nope")).status, 404);
        assert_eq!(app.handle(&get("/traces/xyz")).status, 400);
        assert_eq!(app.handle(&get("/traces/999999")).status, 404);
    }

    #[test]
    fn metrics_endpoint_serves_exposition_text() {
        let app = App::new(TraceStoreConfig::default());
        let resp = app.handle(&get("/metrics"));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.contains("version=0.0.4"));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("serve_http_requests_total"));
        // Trace-store gauges refresh on every scrape even before the
        // pipeline loads (store/cache gauges need the KB installed).
        assert!(text.contains("# TYPE traces_held gauge"), "{text}");
        assert!(text.contains("# TYPE traces_bytes gauge"), "{text}");
    }

    #[test]
    fn debug_store_requires_a_loaded_pipeline() {
        let app = App::new(TraceStoreConfig::default());
        assert_eq!(app.handle(&get("/debug/store")).status, 503);
    }

    #[test]
    fn sparql_requires_a_loaded_pipeline() {
        let app = App::new(TraceStoreConfig::default());
        let req = Request {
            method: "POST".into(),
            path: "/sparql".into(),
            query: Vec::new(),
            body: br#"{"query": "ASK { ?s ?p ?o }"}"#.to_vec(),
        };
        assert_eq!(app.handle(&req).status, 503);
    }
}
