//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Just enough of RFC 7230 for the telemetry plane: one request per
//! connection (every response carries `Connection: close`), bounded head
//! and body sizes, `Content-Length` bodies only (no chunked encoding).
//! Query strings are split on `&`/`=` without percent-decoding — every
//! parameter this server accepts is a plain integer.

use std::io::{self, BufRead, Write};

use relpat_obs::Json;

/// Upper bound on the request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on an accepted request body.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed inbound request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path component only, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value for a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed the connection before sending a request line.
    Eof,
    /// Transport failure (including read timeout).
    Io(io::Error),
    /// Malformed request; the message is safe to echo in a 400 body.
    Bad(&'static str),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from the stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReadError::Eof);
    }
    head_bytes += line.len();
    let request_line = line.trim_end_matches(['\r', '\n']);
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or(ReadError::Bad("empty request line"))?.to_string();
    let target = parts.next().ok_or(ReadError::Bad("missing request target"))?;
    let version = parts.next().ok_or(ReadError::Bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad("unsupported HTTP version"));
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ReadError::Bad("truncated headers"));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Bad("request head too large"));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Bad("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad("request body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path: path.to_string(), query, body })
}

/// An outbound response; always closes the connection.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.to_string().into_bytes(),
        }
    }

    /// Standard error shape: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj().set("error", message))
    }

    /// Prometheus text exposition format v0.0.4.
    pub fn prometheus(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = parse(
            "POST /answer?slow=3&verbose HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/answer");
        assert_eq!(req.query_param("slow"), Some("3"));
        assert_eq!(req.query_param("verbose"), Some(""));
        assert_eq!(req.body_str(), Some("body"));
    }

    #[test]
    fn eof_before_request_line_is_distinguished_from_bad_requests() {
        assert!(matches!(parse(""), Err(ReadError::Eof)));
        assert!(matches!(parse("GET\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(ReadError::Bad(_))));
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(ReadError::Bad(_))));
    }

    #[test]
    fn response_wire_format_has_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
