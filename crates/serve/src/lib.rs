//! # relpat-serve — the serving-grade telemetry plane
//!
//! A std-only HTTP/1.1 frontend over the QA [`Pipeline`], turning the
//! in-process observability substrate (`relpat-obs`) into something an
//! operator can actually reach while the system runs:
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /answer` | `{"question": …}` in; answer, stage and trace id out |
//! | `GET /metrics` | Prometheus text exposition v0.0.4 of the global registry |
//! | `GET /traces/<id>` | Retrieve a retained trace by id |
//! | `GET /traces?slow=N` | N slowest retained traces + store stats |
//! | `GET /events/tail?n=N` | Tail of the structured event journal |
//! | `GET /healthz` | Liveness (always 200 once the socket is up) |
//! | `GET /readyz` | 503 until KB + pattern store are loaded, then 200 |
//! | `POST /shutdown` | SIGTERM-equivalent: drain and exit |
//!
//! The server binds **before** the knowledge base loads, so orchestration
//! can health-check immediately; `/readyz` flips only after
//! [`App::install_pipeline`]. Shutdown stops the accept loop, finishes
//! every accepted request, then flushes the event journal.
//!
//! [`Pipeline`]: relpat_qa::Pipeline

pub mod app;
pub mod http;
pub mod server;

pub use app::App;
pub use http::{Request, Response};
pub use server::{spawn, Server, ServerConfig};
