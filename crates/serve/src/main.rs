//! `relpat-serve` — serve the QA pipeline over HTTP with live telemetry.
//!
//! ```text
//! cargo run --release -p relpat-serve -- --kb default --port 7878
//! curl -s localhost:7878/readyz
//! curl -s localhost:7878/answer -d '{"question": "Which books are written by Orhan Pamuk?"}'
//! curl -s localhost:7878/metrics
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use relpat_kb::{generate, KbConfig};
use relpat_obs::{global_journal, jevent, Level, SloConfig, SloObjective, TraceStoreConfig};
use relpat_qa::Pipeline;
use relpat_serve::{spawn, App, ServerConfig};

struct Args {
    kb: String,
    bind: String,
    port: u16,
    workers: Option<usize>,
    journal: Option<String>,
    trace_capacity: Option<usize>,
    sample_rate: Option<f64>,
    profile_hz: u32,
    slo_answer_ms: u64,
    slo_answer_target: f64,
    slo_error_target: f64,
    slo_sparql_ms: u64,
}

const USAGE: &str = "relpat-serve — HTTP frontend for the relational-pattern QA pipeline

USAGE:
    relpat-serve [OPTIONS]

OPTIONS:
    --kb <tiny|default|scaled:<N>>   knowledge base to generate [default: default]
    --bind <addr>                    bind address [default: 127.0.0.1]
    --port <port>                    port; 0 picks a free one [default: 7878]
    --workers <n>                    worker threads [default: min(cores, 8)]
    --journal <path>                 also write journal events to a JSONL file
    --trace-capacity <n>             max retained traces [default: 1024]
    --sample-rate <f>                fast-trace sampling rate in [0,1] [default: 0.05]
    --profile-hz <n>                 continuous-profiler sampling rate; 0 disables [default: 997]
    --slo-answer-ms <n>              answer latency objective threshold [default: 250]
    --slo-answer-target <f>          answer latency objective target [default: 0.99]
    --slo-error-target <f>           answer availability objective target [default: 0.999]
    --slo-sparql-ms <n>              sparql latency objective threshold [default: 100]
    --help                           print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kb: "default".to_string(),
        bind: "127.0.0.1".to_string(),
        port: 7878,
        workers: None,
        journal: None,
        trace_capacity: None,
        sample_rate: None,
        profile_hz: relpat_obs::prof::DEFAULT_HZ,
        slo_answer_ms: 250,
        slo_answer_target: 0.99,
        slo_error_target: 0.999,
        slo_sparql_ms: 100,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--kb" => args.kb = value("--kb")?,
            "--bind" => args.bind = value("--bind")?,
            "--port" => {
                args.port = value("--port")?.parse().map_err(|_| "invalid --port".to_string())?
            }
            "--workers" => {
                args.workers =
                    Some(value("--workers")?.parse().map_err(|_| "invalid --workers".to_string())?)
            }
            "--journal" => args.journal = Some(value("--journal")?),
            "--trace-capacity" => {
                args.trace_capacity = Some(
                    value("--trace-capacity")?
                        .parse()
                        .map_err(|_| "invalid --trace-capacity".to_string())?,
                )
            }
            "--sample-rate" => {
                args.sample_rate = Some(
                    value("--sample-rate")?
                        .parse()
                        .map_err(|_| "invalid --sample-rate".to_string())?,
                )
            }
            "--profile-hz" => {
                args.profile_hz = value("--profile-hz")?
                    .parse()
                    .map_err(|_| "invalid --profile-hz".to_string())?
            }
            "--slo-answer-ms" => {
                args.slo_answer_ms = value("--slo-answer-ms")?
                    .parse()
                    .map_err(|_| "invalid --slo-answer-ms".to_string())?
            }
            "--slo-answer-target" => {
                args.slo_answer_target = parse_target(&value("--slo-answer-target")?)
                    .ok_or_else(|| "invalid --slo-answer-target (need 0 < f < 1)".to_string())?
            }
            "--slo-error-target" => {
                args.slo_error_target = parse_target(&value("--slo-error-target")?)
                    .ok_or_else(|| "invalid --slo-error-target (need 0 < f < 1)".to_string())?
            }
            "--slo-sparql-ms" => {
                args.slo_sparql_ms = value("--slo-sparql-ms")?
                    .parse()
                    .map_err(|_| "invalid --slo-sparql-ms".to_string())?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_target(s: &str) -> Option<f64> {
    let v: f64 = s.parse().ok()?;
    (v > 0.0 && v < 1.0).then_some(v)
}

fn kb_config(spec: &str) -> Result<KbConfig, String> {
    match spec {
        "tiny" => Ok(KbConfig::tiny()),
        "default" => Ok(KbConfig::default()),
        other => match other.strip_prefix("scaled:").and_then(|n| n.parse().ok()) {
            Some(factor) => Ok(KbConfig::scaled(factor)),
            None => Err(format!("unknown --kb value {spec:?} (tiny|default|scaled:<N>)")),
        },
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let kb_cfg = match kb_config(&args.kb) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.journal {
        if let Err(e) = global_journal().attach_file(path) {
            eprintln!("error: cannot open journal file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut trace_config = TraceStoreConfig::default();
    if let Some(capacity) = args.trace_capacity {
        trace_config.capacity = capacity;
    }
    if let Some(rate) = args.sample_rate {
        trace_config.sample_rate = rate.clamp(0.0, 1.0);
    }

    // Bind before the (slow) KB load so orchestration can probe
    // /healthz + /readyz from the first moment.
    let listener = match TcpListener::bind((args.bind.as_str(), args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}:{}: {e}", args.bind, args.port);
            return ExitCode::FAILURE;
        }
    };
    let slo_config = SloConfig {
        objectives: vec![
            SloObjective::latency(
                "answer_latency",
                "answer",
                args.slo_answer_ms,
                args.slo_answer_target,
            ),
            SloObjective::errors("answer_errors", "answer", args.slo_error_target),
            SloObjective::latency(
                "sparql_latency",
                "sparql",
                args.slo_sparql_ms,
                args.slo_answer_target,
            ),
        ],
        ..SloConfig::default()
    };
    // The continuous profiler is on by default in the serving plane (and
    // only here — offline tools opt in). `--profile-hz 0` turns it off;
    // `GET /debug/profile` can still enable it for one window.
    if args.profile_hz > 0 {
        relpat_obs::profiler().enable(args.profile_hz);
    }

    let app = App::with_slo(trace_config, slo_config);
    let mut server_config = ServerConfig::default();
    if let Some(workers) = args.workers {
        server_config.workers = workers;
    }
    server_config.read_timeout = Duration::from_secs(30);
    let server = match spawn(listener, Arc::clone(&app), server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{} (loading kb={})", server.addr(), args.kb);

    let load_start = Instant::now();
    jevent!(Level::Info, "serve.load", "kb" => args.kb);
    let kb = Box::leak(Box::new(generate(&kb_cfg)));
    let pipeline = Pipeline::new(kb);
    app.install_pipeline(pipeline);
    println!(
        "ready in {:.1}s — POST /answer, GET /metrics, GET /traces?slow=10",
        load_start.elapsed().as_secs_f64()
    );

    server.join();
    // Drain order: stop sampling first (no profile mutation after the last
    // request), then flush the journal so the `serve.drain` events land in
    // the flight-recorder file.
    relpat_obs::profiler().disable();
    global_journal().flush();
    println!("drained");
    ExitCode::SUCCESS
}
