//! `relpat-serve` — serve the QA pipeline over HTTP with live telemetry.
//!
//! ```text
//! cargo run --release -p relpat-serve -- --kb default --port 7878
//! curl -s localhost:7878/readyz
//! curl -s localhost:7878/answer -d '{"question": "Which books are written by Orhan Pamuk?"}'
//! curl -s localhost:7878/metrics
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use relpat_kb::{generate, KbConfig};
use relpat_obs::{global_journal, jevent, Level, TraceStoreConfig};
use relpat_qa::Pipeline;
use relpat_serve::{spawn, App, ServerConfig};

struct Args {
    kb: String,
    bind: String,
    port: u16,
    workers: Option<usize>,
    journal: Option<String>,
    trace_capacity: Option<usize>,
    sample_rate: Option<f64>,
}

const USAGE: &str = "relpat-serve — HTTP frontend for the relational-pattern QA pipeline

USAGE:
    relpat-serve [OPTIONS]

OPTIONS:
    --kb <tiny|default|scaled:<N>>   knowledge base to generate [default: default]
    --bind <addr>                    bind address [default: 127.0.0.1]
    --port <port>                    port; 0 picks a free one [default: 7878]
    --workers <n>                    worker threads [default: min(cores, 8)]
    --journal <path>                 also write journal events to a JSONL file
    --trace-capacity <n>             max retained traces [default: 1024]
    --sample-rate <f>                fast-trace sampling rate in [0,1] [default: 0.05]
    --help                           print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kb: "default".to_string(),
        bind: "127.0.0.1".to_string(),
        port: 7878,
        workers: None,
        journal: None,
        trace_capacity: None,
        sample_rate: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--kb" => args.kb = value("--kb")?,
            "--bind" => args.bind = value("--bind")?,
            "--port" => {
                args.port = value("--port")?.parse().map_err(|_| "invalid --port".to_string())?
            }
            "--workers" => {
                args.workers =
                    Some(value("--workers")?.parse().map_err(|_| "invalid --workers".to_string())?)
            }
            "--journal" => args.journal = Some(value("--journal")?),
            "--trace-capacity" => {
                args.trace_capacity = Some(
                    value("--trace-capacity")?
                        .parse()
                        .map_err(|_| "invalid --trace-capacity".to_string())?,
                )
            }
            "--sample-rate" => {
                args.sample_rate = Some(
                    value("--sample-rate")?
                        .parse()
                        .map_err(|_| "invalid --sample-rate".to_string())?,
                )
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn kb_config(spec: &str) -> Result<KbConfig, String> {
    match spec {
        "tiny" => Ok(KbConfig::tiny()),
        "default" => Ok(KbConfig::default()),
        other => match other.strip_prefix("scaled:").and_then(|n| n.parse().ok()) {
            Some(factor) => Ok(KbConfig::scaled(factor)),
            None => Err(format!("unknown --kb value {spec:?} (tiny|default|scaled:<N>)")),
        },
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let kb_cfg = match kb_config(&args.kb) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.journal {
        if let Err(e) = global_journal().attach_file(path) {
            eprintln!("error: cannot open journal file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut trace_config = TraceStoreConfig::default();
    if let Some(capacity) = args.trace_capacity {
        trace_config.capacity = capacity;
    }
    if let Some(rate) = args.sample_rate {
        trace_config.sample_rate = rate.clamp(0.0, 1.0);
    }

    // Bind before the (slow) KB load so orchestration can probe
    // /healthz + /readyz from the first moment.
    let listener = match TcpListener::bind((args.bind.as_str(), args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}:{}: {e}", args.bind, args.port);
            return ExitCode::FAILURE;
        }
    };
    let app = App::new(trace_config);
    let mut server_config = ServerConfig::default();
    if let Some(workers) = args.workers {
        server_config.workers = workers;
    }
    server_config.read_timeout = Duration::from_secs(30);
    let server = match spawn(listener, Arc::clone(&app), server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{} (loading kb={})", server.addr(), args.kb);

    let load_start = Instant::now();
    jevent!(Level::Info, "serve.load", "kb" => args.kb);
    let kb = Box::leak(Box::new(generate(&kb_cfg)));
    let pipeline = Pipeline::new(kb);
    app.install_pipeline(pipeline);
    println!(
        "ready in {:.1}s — POST /answer, GET /metrics, GET /traces?slow=10",
        load_start.elapsed().as_secs_f64()
    );

    server.join();
    println!("drained");
    ExitCode::SUCCESS
}
