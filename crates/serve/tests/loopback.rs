//! Loopback integration test: the full telemetry plane over 127.0.0.1.
//!
//! One test function drives the whole lifecycle in order — readiness flip,
//! three Table-2 questions through `POST /answer`, metrics advancement,
//! trace retrieval by id, journal tailing, and a graceful drain that
//! completes an in-flight request — because the server, the global metrics
//! registry and the journal are process-wide singletons.
//!
//! Everything runs against the tiny in-tree KB and never leaves loopback.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use relpat_kb::{generate, KbConfig};
use relpat_obs::{Json, TraceStoreConfig};
use relpat_qa::Pipeline;
use relpat_serve::{spawn, App, ServerConfig};

const TABLE2_QUESTIONS: [&str; 3] = [
    "Which book is written by Orhan Pamuk?",
    "How tall is Michael Jordan?",
    "Where did Abraham Lincoln die?",
];

/// Sends raw bytes, reads to EOF, returns (status, body).
fn raw_request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: loopback\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    raw_request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Value of an exposition sample line (`name value`), or None if absent.
/// Absent and zero are equivalent for counters: handles are created lazily
/// on first increment.
fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let mut parts = line.split_whitespace();
        (parts.next() == Some(name)).then(|| parts.next().unwrap().parse().unwrap())
    })
}

#[test]
fn full_telemetry_plane_over_loopback() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    let app = App::new(TraceStoreConfig::default());
    let config = ServerConfig { workers: 2, read_timeout: Duration::from_secs(10) };
    let server = spawn(listener, Arc::clone(&app), config).expect("spawn server");
    let addr = server.addr();

    // Liveness is immediate; readiness waits for the pipeline.
    assert_eq!(get(addr, "/healthz").0, 200);
    let (status, body) = get(addr, "/readyz");
    assert_eq!((status, body.as_str()), (503, "loading\n"));
    let (status, _) = post(addr, "/answer", r#"{"question": "Who?"}"#);
    assert_eq!(status, 503, "answer must 503 before the pipeline loads");

    // Metrics are live even before readiness.
    let (status, before) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(before.contains("# TYPE serve_http_requests_total counter"), "{before}");
    let requests_before = metric_value(&before, "serve_http_requests_total").unwrap();
    let answers_before = metric_value(&before, "serve_answers_total").unwrap_or(0.0);

    // Load the tiny KB and flip readiness.
    let kb = Box::leak(Box::new(generate(&KbConfig::tiny())));
    app.install_pipeline(Pipeline::new(kb));
    let (status, body) = get(addr, "/readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    // Three Table-2 questions; the store is cold (inside warmup) so every
    // trace is pinned and must be retrievable by id.
    let mut trace_ids = Vec::new();
    for question in TABLE2_QUESTIONS {
        let payload = Json::obj().set("question", question).to_string();
        let (status, body) = post(addr, "/answer", &payload);
        assert_eq!(status, 200, "{body}");
        let json = Json::parse(&body).expect("answer response is JSON");
        assert_eq!(json.get("answered").and_then(Json::as_bool), Some(true), "{body}");
        assert_eq!(json.get("stage").and_then(Json::as_str), Some("Answered"));
        assert!(!json.get("answers").unwrap().as_array().unwrap().is_empty());
        assert!(json.get("retained").and_then(Json::as_str).is_some(), "{body}");
        assert!(json.get("plans").is_none(), "plain answers must not carry plans: {body}");
        trace_ids.push(json.get("trace_id").and_then(Json::as_u64).unwrap());
    }

    // EXPLAIN ANALYZE over HTTP: `"explain": true` attaches per-query plan
    // traces whose step sums are internally consistent.
    let payload =
        Json::obj().set("question", "Who directed Titanic?").set("explain", true).to_string();
    let (status, body) = post(addr, "/answer", &payload);
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).expect("explained answer is JSON");
    assert_eq!(json.get("answered").and_then(Json::as_bool), Some(true), "{body}");
    let plans = json.get("plans").and_then(Json::as_array).expect("explain returns plans");
    assert!(!plans.is_empty(), "{body}");
    for plan in plans {
        let trace = plan.get("plan").expect("each plan wraps a trace");
        let steps = trace.get("steps").and_then(Json::as_array).unwrap();
        let cache_hit = trace.get("cache_hit").and_then(Json::as_bool).unwrap();
        assert!(cache_hit || !steps.is_empty(), "cold query must record join steps: {body}");
        let summed: u64 =
            steps.iter().map(|s| s.get("rows_scanned").and_then(Json::as_u64).unwrap()).sum();
        assert_eq!(trace.get("rows_scanned").and_then(Json::as_u64), Some(summed));
        for step in steps {
            assert!(step.get("estimate").and_then(Json::as_u64).is_some(), "{body}");
            assert!(step.get("pattern").and_then(Json::as_str).is_some(), "{body}");
        }
    }

    // Raw SPARQL endpoint: a SELECT round-trips; asking for the wrong
    // result kind is a 400 error *response* (the fallible accessors), and
    // the worker that served it survives to answer the next request —
    // a kind mismatch used to be a panic in library code.
    let select = r#"{"query": "SELECT ?x WHERE { ?x <http://dbpedia.org/ontology/author> <http://dbpedia.org/resource/Orhan_Pamuk> . }"}"#;
    let (status, body) = post(addr, "/sparql", select);
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).unwrap();
    assert_eq!(json.get("kind").and_then(Json::as_str), Some("solutions"));
    assert!(!json.get("rows").and_then(Json::as_array).unwrap().is_empty(), "{body}");

    let mismatch = r#"{"query": "SELECT ?x WHERE { ?x <http://dbpedia.org/ontology/author> <http://dbpedia.org/resource/Orhan_Pamuk> . }", "expect": "boolean"}"#;
    let (status, body) = post(addr, "/sparql", mismatch);
    assert_eq!(status, 400, "kind mismatch must be an error response: {body}");
    assert!(body.contains("mismatch"), "{body}");

    // Not a dead server: the same endpoint keeps serving afterwards.
    let ask = r#"{"query": "ASK { <http://dbpedia.org/resource/Snow> <http://dbpedia.org/ontology/author> <http://dbpedia.org/resource/Orhan_Pamuk> . }", "expect": "boolean"}"#;
    let (status, body) = post(addr, "/sparql", ask);
    assert_eq!(status, 200, "server must survive the mismatch: {body}");
    let json = Json::parse(&body).unwrap();
    assert_eq!(json.get("kind").and_then(Json::as_str), Some("boolean"));
    assert_eq!(json.get("value").and_then(Json::as_bool), Some(true), "{body}");

    // Store health: /debug/store and the /metrics gauges report the same
    // levels.
    let (status, body) = get(addr, "/debug/store");
    assert_eq!(status, 200, "{body}");
    let debug = Json::parse(&body).unwrap();
    let triples =
        debug.get("graph").and_then(|g| g.get("triples")).and_then(Json::as_u64).unwrap();
    assert!(triples > 0, "{body}");
    let cache_len =
        debug.get("query_cache").and_then(|c| c.get("len")).and_then(Json::as_u64).unwrap();
    let cache_capacity =
        debug.get("query_cache").and_then(|c| c.get("capacity")).and_then(Json::as_u64).unwrap();
    assert!(cache_len > 0, "answering must have warmed the query cache: {body}");
    assert!(debug.get("traces").and_then(|t| t.get("held")).and_then(Json::as_u64).unwrap() >= 3);
    let (_, exposition) = get(addr, "/metrics");
    for name in [
        "store_frozen_triples",
        "store_triples",
        "store_overlay_len",
        "store_tombstones",
        "store_compactions",
        "store_last_freeze_nanos",
        "sparql_cache_len",
        "sparql_cache_capacity",
        "traces_held",
        "traces_bytes",
    ] {
        assert!(exposition.contains(&format!("# TYPE {name} gauge")), "missing gauge {name}");
    }
    assert_eq!(metric_value(&exposition, "store_triples"), Some(triples as f64));
    assert_eq!(metric_value(&exposition, "sparql_cache_len"), Some(cache_len as f64));
    assert_eq!(metric_value(&exposition, "sparql_cache_capacity"), Some(cache_capacity as f64));

    // Traces retrievable by id, with the right question inside.
    for (id, question) in trace_ids.iter().zip(TABLE2_QUESTIONS) {
        let (status, body) = get(addr, &format!("/traces/{id}"));
        assert_eq!(status, 200, "trace {id} not retrievable");
        let json = Json::parse(&body).unwrap();
        let stored = json.get("trace").and_then(|t| t.get("question")).and_then(Json::as_str);
        assert_eq!(stored, Some(question));
    }
    assert_eq!(get(addr, "/traces/999999").0, 404);

    // Slow-trace listing and store stats.
    let (status, body) = get(addr, "/traces?slow=2");
    assert_eq!(status, 200);
    let json = Json::parse(&body).unwrap();
    assert_eq!(json.get("slowest").unwrap().as_array().unwrap().len(), 2);
    // 3 plain answers + 1 explained answer have been served by now.
    assert_eq!(json.get("stats").and_then(|s| s.get("seen")).and_then(Json::as_u64), Some(4));

    // Counters advanced and the answer histogram is populated.
    let (_, after) = get(addr, "/metrics");
    let requests_after = metric_value(&after, "serve_http_requests_total").unwrap();
    assert!(requests_after > requests_before, "{requests_before} -> {requests_after}");
    assert_eq!(metric_value(&after, "serve_answers_total"), Some(answers_before + 4.0));
    assert_eq!(metric_value(&after, "serve_answer_ns_count"), Some(4.0));
    // The query planner's work counters surface in the exposition once
    // answers have been served.
    for name in ["qa_plan_expanded_total", "qa_plan_pruned_total", "qa_plan_emitted_total"] {
        assert!(after.contains(&format!("# TYPE {name} counter")), "missing counter {name}");
    }
    assert!(
        metric_value(&after, "qa_plan_emitted_total").unwrap() > 0.0,
        "answers must have exercised the planner"
    );
    // The join-operator split reaches the exposition: every executed BGP
    // step bumps exactly one of the three, first steps are always nested
    // scans, and the Table-2 joins (type + property on a frozen store) ride
    // the sort-merge path.
    for name in ["sparql_join_merge_total", "sparql_join_nested_total"] {
        assert!(after.contains(&format!("# TYPE {name} counter")), "missing counter {name}");
    }
    assert!(
        metric_value(&after, "sparql_join_nested_total").unwrap() > 0.0,
        "first join steps always scan nested"
    );
    assert!(
        metric_value(&after, "sparql_join_merge_total").unwrap() > 0.0,
        "answers must have exercised the sort-merge operator"
    );
    assert!(after.contains("# TYPE serve_answer_ns histogram"));
    assert!(after.contains("serve_answer_ns_bucket{le=\"+Inf\"} 4"));

    // The journal saw the lifecycle (serve.ready at minimum).
    let (status, body) = get(addr, "/events/tail?n=200");
    assert_eq!(status, 200);
    let events = Json::parse(&body).unwrap();
    let stages: Vec<&str> = events
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e.get("stage").and_then(Json::as_str))
        .collect();
    assert!(stages.contains(&"serve.ready"), "{stages:?}");

    // SLO plane: burn rates are live per objective, and the gauges reach
    // the exposition. Loopback answers over the tiny KB are fast and
    // succeed, so nothing may be breached.
    let (status, body) = get(addr, "/debug/slo");
    assert_eq!(status, 200, "{body}");
    let slo = Json::parse(&body).unwrap();
    let objectives = slo.get("objectives").and_then(Json::as_array).unwrap();
    assert_eq!(objectives.len(), 3, "{body}");
    let names: Vec<&str> =
        objectives.iter().filter_map(|o| o.get("objective").and_then(Json::as_str)).collect();
    for name in ["answer_latency", "answer_errors", "sparql_latency"] {
        assert!(names.contains(&name), "{names:?}");
    }
    for o in objectives {
        assert_eq!(o.get("breached").and_then(Json::as_bool), Some(false), "{body}");
    }
    let (_, exposition) = get(addr, "/metrics");
    for gauge in [
        "slo_answer_latency_burn_1m",
        "slo_answer_latency_burn_5m",
        "slo_answer_latency_burn_1h",
        "slo_answer_latency_breached",
        "slo_answer_errors_burn_1m",
        "slo_sparql_latency_burn_1m",
    ] {
        assert!(exposition.contains(&format!("# TYPE {gauge} gauge")), "missing gauge {gauge}");
    }
    assert_eq!(metric_value(&exposition, "slo_answer_latency_breached"), Some(0.0));

    // Continuous profiler: request a one-second window from a second
    // connection while this thread keeps answering — the worker pool serves
    // both, and the answer traffic is exactly what the window captures.
    let profile = std::thread::spawn(move || get(addr, "/debug/profile?seconds=1"));
    let deadline = std::time::Instant::now() + Duration::from_millis(1300);
    let payload = Json::obj().set("question", TABLE2_QUESTIONS[0]).to_string();
    while std::time::Instant::now() < deadline {
        let (status, _) = post(addr, "/answer", &payload);
        assert_eq!(status, 200);
    }
    let (status, collapsed) = profile.join().expect("profile request thread");
    assert_eq!(status, 200, "{collapsed}");
    assert!(!collapsed.trim().is_empty(), "profile window over live traffic came back empty");
    assert!(
        collapsed.contains("serve.answer_ns"),
        "serve span must appear in the profile:\n{collapsed}"
    );
    assert!(
        collapsed.contains("qa.") && collapsed.contains(';'),
        "nested pipeline stages must appear under the serve span:\n{collapsed}"
    );
    // The sampler's work is accounted, and the JSON form agrees.
    let (_, exposition) = get(addr, "/metrics");
    assert!(metric_value(&exposition, "prof_samples_total").unwrap() > 0.0, "{exposition}");
    let (status, body) = get(addr, "/debug/profile?seconds=0.1&format=json");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("profile JSON parses");
    assert!(json.get("samples").and_then(Json::as_u64).is_some(), "{body}");
    assert!(json.get("rate_hz").and_then(Json::as_u64).unwrap() > 0, "{body}");

    // Graceful drain: park a request mid-body, raise shutdown, then finish
    // the body — the in-flight request must still get its full response.
    let (_, pre_drain) = get(addr, "/metrics");
    let accepted_base = metric_value(&pre_drain, "serve_http_accepted_total").unwrap();
    let question = r#"{"question": "Which book is written by Orhan Pamuk?"}"#;
    let mut parked = TcpStream::connect(addr).expect("connect parked");
    parked.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "POST /answer HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n",
        question.len()
    );
    parked.write_all(head.as_bytes()).unwrap();
    parked.flush().unwrap();

    // Wait until the parked connection is accepted. Each /metrics poll is
    // itself one accept, so after n polls an excess over n means `parked`
    // is in (accepts are counted before responses are served, so by the
    // time poll i returns, its own accept is included).
    let mut polls = 0.0;
    loop {
        let (_, body) = get(addr, "/metrics");
        polls += 1.0;
        let accepted = metric_value(&body, "serve_http_accepted_total").unwrap();
        if accepted - accepted_base - polls >= 1.0 {
            break;
        }
        assert!(polls < 500.0, "parked connection never accepted");
        std::thread::sleep(Duration::from_millis(2));
    }

    let (status, body) = post(addr, "/shutdown", "");
    assert_eq!((status, body.as_str()), (200, "draining\n"));

    // Finish the in-flight request after shutdown was raised.
    parked.write_all(question.as_bytes()).unwrap();
    let mut response = String::new();
    parked.read_to_string(&mut response).expect("in-flight response after shutdown");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let parked_body = response.split_once("\r\n\r\n").unwrap().1;
    let parked_json = Json::parse(parked_body).unwrap();
    assert_eq!(parked_json.get("answered").and_then(Json::as_bool), Some(true));

    // join() returns only after the accept loop and workers have drained.
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after drain"
    );
}
