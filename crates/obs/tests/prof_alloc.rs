//! Allocation cost of the profiler's hot path.
//!
//! The `span!` macro runs on every question and every SPARQL execution, so
//! its profiler hook must be free when the sampler is off: one relaxed
//! load, no allocation. This binary installs a counting global allocator
//! and pins that claim — plus the enabled-path claim that a warmed thread
//! (tag stack registered, span handles interned) pushes and pops without
//! allocating either.
//!
//! Own test binary on purpose: the allocation counter is process-global,
//! and any concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use relpat_obs::{profiler, span};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations across `f` after the counter snapshot.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Relaxed);
    f();
    ALLOCATIONS.load(Relaxed) - before
}

fn span_cycle() {
    let _outer = span!("prof_alloc.outer");
    let _inner = span!("prof_alloc.inner");
    std::hint::black_box((&_outer, &_inner));
}

#[test]
fn span_hot_path_allocates_nothing() {
    // One test fn drives both phases: the two claims share the allocator
    // counter and the global profiler, so interleaving them as separate
    // parallel tests would measure each other's noise.

    // Warm up: first use interns the tags, registers the histogram
    // handles, and records into fresh histogram buckets.
    span_cycle();

    // Phase 1 — sampler OFF (the default): the profiler hook is a single
    // relaxed load; the whole span cycle must be allocation-free.
    assert!(!profiler().is_enabled(), "profiler must start disabled");
    // The counter is process-global and the test harness has its own
    // threads, so a block can pick up stray background allocations. A
    // genuine per-push allocation costs ≥10_000 in *every* block; measure
    // five and require at least one perfectly clean block.
    let mut per_block = Vec::new();
    for _ in 0..5 {
        per_block.push(allocations_during(|| {
            for _ in 0..10_000 {
                span_cycle();
            }
        }));
    }
    let during_off = *per_block.iter().min().unwrap();
    assert_eq!(
        during_off, 0,
        "span! with profiler off allocated in every block: {per_block:?}"
    );

    // Phase 2 — sampler ON: enable spawns the sampler thread and the
    // first push registers this thread's stack (both allocate, once).
    // After that warmup, the owner-thread push/pop path is two stores and
    // a depth restore — still allocation-free. Sampler-thread allocations
    // (store folding) don't count: they happen off the serving threads.
    profiler().enable(997);
    span_cycle(); // warm: TLS stack registration
    let during_on = allocations_during(|| {
        for _ in 0..10_000 {
            span_cycle();
        }
    });
    profiler().disable();
    // The sampler thread's own bookkeeping races this window; what we pin
    // is that the *owner path* adds nothing per cycle. 10k cycles at even
    // one allocation each would be ≥10_000; the sampler folding stacks at
    // 997 Hz contributes a few dozen. A small budget separates the two.
    assert!(
        during_on < 1_000,
        "span! with profiler on allocated {during_on} times over 10k cycles — \
         the owner path is allocating per push"
    );
}
