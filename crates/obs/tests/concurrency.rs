//! Concurrent-writer hammers for the flight-recorder surfaces.
//!
//! The TraceStore, the EventJournal, and the profiler's sampler all accept
//! writes from every serving thread at once; their invariants are cheap to
//! state and easy to break with a lock-ordering or counter-accounting slip:
//!
//! - **TraceStore**: every offered trace gets a unique monotonic id; the
//!   retention counters reconcile exactly with `seen`; held entries and
//!   bytes stay inside the configured bounds whatever the interleaving.
//! - **EventJournal**: sequence numbers are gap-free under contention
//!   (`emitted` equals the highest seq; the retained tail is contiguous),
//!   and `emitted + dropped` accounting never loses an event.
//! - **Profiler**: the sampler reading racing thread stacks mid-push must
//!   never observe (or invent) a tag outside the interned set, and the
//!   store stays within its stack cap.
//!
//! All hammers are seeded (in-tree [`Rng`]) and use `std::thread::scope`,
//! so a failure reproduces under the same seed.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use relpat_obs::{
    profiler, EventJournal, Level, QuestionTrace, Rng, TraceStore, TraceStoreConfig,
};

const WRITERS: usize = 8;
const PER_WRITER: u64 = 500;

fn trace(question: &str, stage: &str, nanos: u64) -> QuestionTrace {
    let mut t = QuestionTrace::new(question);
    t.add_stage(stage, nanos);
    t
}

#[test]
fn trace_store_survives_concurrent_writers() {
    let config = TraceStoreConfig {
        capacity: 64,
        max_bytes: 64 * 1024,
        sample_rate: 0.25,
        seed: 0x5eed_cafe,
        warmup: 16,
    };
    let store = TraceStore::new(config);
    let id_sum = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = &store;
            let id_sum = &id_sum;
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xbeef_0000 + w as u64);
                for i in 0..PER_WRITER {
                    // Mix of fast, slow-tail, and errored traffic so every
                    // retention path runs under contention.
                    let nanos = match rng.gen_range(0u32..10) {
                        0 => 50_000_000, // slow outlier
                        _ => 10_000 + rng.gen_range(0u64..100_000),
                    };
                    let error = rng.gen_range(0u32..20) == 0;
                    let t = trace(&format!("w{w} q{i}"), "answer", nanos);
                    let outcome = store.record(&t, error);
                    id_sum.fetch_add(outcome.id, Relaxed);
                }
            });
        }
    });

    let total = WRITERS as u64 * PER_WRITER;
    let stats = store.stats();
    assert_eq!(stats.seen, total, "every offer counted");
    // Ids are handed out monotonically from 1; unique ids over `total`
    // offers sum to the exact triangular number — any duplicate or skipped
    // id breaks the sum.
    assert_eq!(id_sum.load(Relaxed), total * (total + 1) / 2, "trace ids not unique/contiguous");
    // Retention accounting reconciles: every trace was either kept (for
    // exactly one reason) or sampled out.
    assert_eq!(
        stats.errors + stats.slow_tail + stats.sampled + stats.sampled_out,
        total,
        "retention counters lost traces: {stats:?}"
    );
    // Bounds hold at rest.
    assert!(stats.held <= 64, "capacity exceeded: {}", stats.held);
    assert!(stats.bytes <= 64 * 1024, "byte budget exceeded: {}", stats.bytes);
    assert_eq!(stats.held, store.ids().len());
    // The id index and the entries agree after all the concurrent churn.
    for id in store.ids() {
        assert!(store.get(id).is_some(), "indexed id {id} has no entry");
    }
}

#[test]
fn journal_seqs_stay_gap_free_under_contention() {
    let journal = EventJournal::new(256);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let journal = &journal;
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xfeed_0000 + w as u64);
                for i in 0..PER_WRITER {
                    // jevent!-shaped payloads of varying width.
                    let mut fields = vec![("w".to_string(), w.to_string())];
                    if rng.gen_range(0u32..2) == 0 {
                        fields.push(("i".to_string(), i.to_string()));
                    }
                    journal.emit(Level::Debug, "hammer.stage", fields);
                }
            });
        }
    });

    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(journal.emitted(), total);
    // Ring of 256 holding the newest events: the retained tail must be the
    // contiguous final stretch of the sequence space, ending at `emitted`.
    let tail = journal.tail(usize::MAX);
    assert_eq!(tail.len(), 256);
    for pair in tail.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "gap in retained tail");
    }
    assert_eq!(tail.last().unwrap().seq, total, "newest event missing");
    assert_eq!(journal.dropped(), total - 256, "drop accounting");
}

#[test]
fn sampler_never_observes_uninterned_tags() {
    let prof = profiler();
    prof.reset_store();
    prof.enable(997);

    // Writers churn nested spans while the sampler races their stacks;
    // every tag the profile ends up holding must be one we interned.
    let tags: Vec<_> = (0..6).map(|i| relpat_obs::prof::intern(&format!("hammer.t{i}"))).collect();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let tags = &tags;
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xabba_0000 + w as u64);
                for _ in 0..2_000 {
                    let _a = relpat_obs::prof::push(tags[rng.gen_range(0usize..tags.len())]);
                    let _b = relpat_obs::prof::push(tags[rng.gen_range(0usize..tags.len())]);
                    if rng.gen_range(0u32..4) == 0 {
                        let _c = relpat_obs::prof::push(tags[rng.gen_range(0usize..tags.len())]);
                        std::hint::black_box(&_c);
                    }
                    std::hint::black_box(&_b);
                }
            });
        }
    });

    let snapshot = prof.snapshot();
    prof.disable();
    for stack in &snapshot.stacks {
        assert!(stack.count > 0);
        assert!(stack.frames.len() <= relpat_obs::prof::MAX_DEPTH);
        for frame in &stack.frames {
            // Frames from concurrent test binaries' spans can't appear here
            // (integration tests are their own process), so every frame is
            // either one of ours or a resolved name from this process —
            // never the interner's out-of-range placeholder.
            assert!(!frame.starts_with('?'), "sampler saw uninterned tag {frame:?}");
        }
    }
    assert!(snapshot.stacks.len() <= 4096, "profile store over its cap");
}
