//! Deterministic PRNG for synthetic-data generation, replacing the `rand`
//! dependency so the workspace builds offline.
//!
//! `xoshiro256++` seeded through SplitMix64 — the textbook combination: the
//! seed expander guarantees a well-mixed nonzero state from any `u64`, and
//! the generator passes the standard statistical batteries. Nothing here is
//! cryptographic; the workspace only uses it to synthesize KB entities and
//! corpus noise, where the requirements are determinism and uniformity.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (`xoshiro256++`).
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Builds a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion: four decorrelated words from one seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { state: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        self.state = [s0, s1, s2 ^ t, s3.rotate_left(45)];
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from an integer or float range, mirroring `rand`'s
    /// `Rng::gen_range` call shape (`rng.gen_range(1..=12)`) — the output
    /// type parameter drives integer-literal inference exactly like
    /// `rand`'s `SampleRange<T>` does.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i32, u32, i64, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(1.5..2.05f64);
            assert!((1.5..2.05).contains(&f));
            let neg = rng.gen_range(-20i64..-3);
            assert!((-20..-3).contains(&neg));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!Rng::seed_from_u64(0).gen_bool(0.0));
        assert!(Rng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
