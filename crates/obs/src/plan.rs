//! Per-query plan traces — the "EXPLAIN ANALYZE" payload.
//!
//! A [`PlanTrace`] records, for every join step the SPARQL executor ran,
//! what the planner predicted (index estimate, selectivity-adjusted score)
//! next to what actually happened (rows scanned, bindings emitted, wall
//! time, whether a LIMIT pushdown cut the scan short). The types live here
//! rather than in `relpat-sparql` so [`QuestionTrace`](crate::QuestionTrace)
//! can embed them without an upward dependency; `relpat-sparql` re-exports
//! them and is the only writer.
//!
//! Traces are collected only when a caller asks for them (the executor
//! threads an `Option<&mut PlanTrace>` through the join loop), so the
//! explain-off path pays nothing — no allocation, no clock reads.

use crate::json::Json;

/// Join operator the executor ran for one step.
///
/// `Nested` is the always-correct fallback (bindings × scan, one slice
/// relocation per probe row). `Merge` exploits bindings sorted on the join
/// variable: one forward cursor walks the frozen slice in step with the
/// binding stream, locating each distinct key's range once. `Gallop` covers
/// unsorted bindings: probe keys are deduplicated and sorted, then each
/// distinct key's range is located once by `partition_point` searches over a
/// strictly shrinking tail. The planner picks per step; the executor may
/// downgrade to `Nested` at run time (live overlay, LIMIT pushdown) and the
/// recorded value is always the operator that actually ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JoinAlgo {
    #[default]
    Nested,
    Merge,
    Gallop,
}

impl JoinAlgo {
    /// Stable lowercase name used in renderings, JSON and counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            JoinAlgo::Nested => "nested",
            JoinAlgo::Merge => "merge",
            JoinAlgo::Gallop => "gallop",
        }
    }
}

/// One executed join step: planner prediction vs. measured reality.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The triple pattern, rendered in canonical SPARQL form.
    pub pattern: String,
    /// Index of the pattern in the query's BGP (source order).
    pub pattern_index: usize,
    /// Position the planner chose for it in the join order (0 = first).
    pub position: usize,
    /// The planner's exact index estimate for the pattern's concrete
    /// positions — `graph.estimate()` on the same id-pattern the greedy
    /// planner scored.
    pub estimate: usize,
    /// Selectivity-adjusted score the planner ranked by:
    /// `estimate / 10^(bound variable positions)`.
    pub score: f64,
    /// Rows the step's scans actually visited. Nested-loop steps count every
    /// slice row touched per probe binding; merge/gallop steps locate each
    /// distinct probe key's range once and count its rows once, so this is
    /// never larger than the nested cost of the same step.
    pub rows_scanned: u64,
    /// The join operator that actually executed this step.
    pub join_algo: JoinAlgo,
    /// Bindings the step emitted into the next join step.
    pub bindings_emitted: usize,
    /// Wall-clock time spent in the step, in nanoseconds.
    pub nanos: u64,
    /// Whether a bare-LIMIT/ASK pushdown was armed on this (final) step.
    pub limit_pushdown: bool,
}

impl PlanStep {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("pattern", self.pattern.as_str())
            .set("pattern_index", self.pattern_index)
            .set("position", self.position)
            .set("estimate", self.estimate)
            .set("score", Json::Num(self.score))
            .set("rows_scanned", self.rows_scanned)
            .set("join_algo", self.join_algo.as_str())
            .set("bindings_emitted", self.bindings_emitted)
            .set("nanos", self.nanos)
            .set("limit_pushdown", self.limit_pushdown)
    }
}

/// The full plan trace of one query execution.
///
/// A cache hit produces an empty-steps trace with `cache_hit: true` — the
/// executor never ran, so there is nothing to analyze and the summed
/// `rows_scanned` is correctly zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanTrace {
    /// Executed join steps, in execution order. Nested groups (UNION /
    /// OPTIONAL branches) append their steps after the outer BGP's.
    pub steps: Vec<PlanStep>,
    /// True when the result came from the query cache without executing.
    pub cache_hit: bool,
    /// Join steps whose actual scan cost diverged from the planner's score
    /// past the misestimation threshold.
    pub misestimates: u64,
}

impl PlanTrace {
    /// Total rows scanned across every step — equals the query's
    /// `sparql.rows_scanned` counter delta.
    pub fn rows_scanned(&self) -> u64 {
        self.steps.iter().map(|s| s.rows_scanned).sum()
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("cache_hit", self.cache_hit)
            .set("misestimates", self.misestimates)
            .set("rows_scanned", self.rows_scanned())
            .set("steps", Json::Arr(self.steps.iter().map(PlanStep::to_json).collect()))
    }

    /// Stable human-readable rendering. Deliberately excludes `nanos` so
    /// the output of a fixed query on a fixed graph is byte-stable (the
    /// explain golden test locks this format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.cache_hit {
            out.push_str("plan: cache hit (0 rows scanned)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "plan: {} step{}, {} rows scanned, {} misestimate{}",
            self.steps.len(),
            if self.steps.len() == 1 { "" } else { "s" },
            self.rows_scanned(),
            self.misestimates,
            if self.misestimates == 1 { "" } else { "s" },
        );
        for s in &self.steps {
            let _ = writeln!(
                out,
                "  #{} {}  est={} score={:.2} scanned={} emitted={} algo={}{}",
                s.position,
                s.pattern,
                s.estimate,
                s.score,
                s.rows_scanned,
                s.bindings_emitted,
                s.join_algo.as_str(),
                if s.limit_pushdown { " [pushdown]" } else { "" },
            );
        }
        out
    }
}

/// A query text paired with the plan trace its execution produced — the
/// unit [`QuestionTrace`](crate::QuestionTrace) accumulates when a caller
/// asks for an explained answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The SPARQL text as executed.
    pub sparql: String,
    pub trace: PlanTrace,
}

impl QueryPlan {
    pub fn to_json(&self) -> Json {
        Json::obj().set("sparql", self.sparql.as_str()).set("plan", self.trace.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanTrace {
        PlanTrace {
            steps: vec![
                PlanStep {
                    pattern: "?x <w> <p> .".into(),
                    pattern_index: 1,
                    position: 0,
                    estimate: 2,
                    score: 2.0,
                    rows_scanned: 2,
                    join_algo: JoinAlgo::Nested,
                    bindings_emitted: 2,
                    nanos: 1234,
                    limit_pushdown: false,
                },
                PlanStep {
                    pattern: "?x <t> <B> .".into(),
                    pattern_index: 0,
                    position: 1,
                    estimate: 3,
                    score: 0.3,
                    rows_scanned: 2,
                    join_algo: JoinAlgo::Merge,
                    bindings_emitted: 2,
                    nanos: 567,
                    limit_pushdown: true,
                },
            ],
            cache_hit: false,
            misestimates: 0,
        }
    }

    #[test]
    fn rows_scanned_sums_steps() {
        assert_eq!(sample().rows_scanned(), 4);
        assert_eq!(PlanTrace::default().rows_scanned(), 0);
    }

    #[test]
    fn json_carries_prediction_and_reality() {
        let json = sample().to_json().to_string();
        assert!(json.contains("\"cache_hit\":false"), "{json}");
        assert!(json.contains("\"estimate\":2"), "{json}");
        assert!(json.contains("\"rows_scanned\":4"), "{json}");
        assert!(json.contains("\"limit_pushdown\":true"), "{json}");
        assert!(json.contains("\"nanos\":1234"), "{json}");
        assert!(json.contains("\"join_algo\":\"nested\""), "{json}");
        assert!(json.contains("\"join_algo\":\"merge\""), "{json}");
    }

    #[test]
    fn render_is_stable_and_excludes_nanos() {
        let text = sample().render();
        assert_eq!(
            text,
            "plan: 2 steps, 4 rows scanned, 0 misestimates\n\
             \x20 #0 ?x <w> <p> .  est=2 score=2.00 scanned=2 emitted=2 algo=nested\n\
             \x20 #1 ?x <t> <B> .  est=3 score=0.30 scanned=2 emitted=2 algo=merge [pushdown]\n"
        );
        assert!(!text.contains("1234"), "nanos must not leak into the stable rendering");
    }

    #[test]
    fn cache_hit_renders_without_steps() {
        let hit = PlanTrace { cache_hit: true, ..PlanTrace::default() };
        assert_eq!(hit.render(), "plan: cache hit (0 rows scanned)\n");
        assert!(hit.to_json().to_string().contains("\"cache_hit\":true"));
    }
}
