//! Thread-safe metrics: named counters and log-scale latency histograms.
//!
//! All recording goes through relaxed atomics — no locks on the hot path.
//! Registration (name → handle) takes a mutex once per call site; the
//! [`counter!`](crate::counter) and [`span!`](crate::span) macros cache the
//! handle in a `OnceLock` so steady-state cost is an enabled-flag load plus
//! the `fetch_add`s. Disabling a registry turns every record into the flag
//! load alone — cheap enough to leave instrumentation compiled in.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Histogram bucket layout: values `0..8` get exact buckets, then eight
/// sub-buckets per power of two (≤ 12.5 % relative error), covering the full
/// `u64` range in 496 buckets. Values are nanoseconds when used as latency.
const BUCKETS: usize = 496;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // ≥ 3
        (exp - 2) * 8 + ((v >> (exp - 3)) & 7) as usize
    }
}

/// Inclusive lower bound of a bucket (inverse of [`bucket_index`]).
fn bucket_low(i: usize) -> u64 {
    if i < 8 {
        i as u64
    } else {
        let exp = i / 8 + 2;
        (8 + (i % 8) as u64) << (exp - 3)
    }
}

/// Midpoint representative value for a bucket.
fn bucket_mid(i: usize) -> u64 {
    let low = bucket_low(i);
    let high = if i + 1 < BUCKETS { bucket_low(i + 1) } else { low.saturating_mul(2) };
    low + (high - low) / 2
}

#[derive(Debug)]
struct CounterCell {
    name: String,
    value: AtomicU64,
}

#[derive(Debug)]
struct GaugeCell {
    name: String,
    value: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    name: String,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first observation (the empty-histogram sentinel).
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl HistogramCell {
    fn new(name: &str) -> Self {
        HistogramCell {
            name: name.to_string(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
    }

    fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let percentile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Exclusive rank (`floor(q·N)+1`): with 100 samples, p99 is the
            // 100th order statistic, so a 1% slow tail is visible rather
            // than rounded away. The epsilon guards against `0.99 * 100`
            // landing just below an integer in floating point.
            let rank = ((q * total as f64 + 1e-9).floor() as u64 + 1).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_mid(i);
                }
            }
            bucket_mid(BUCKETS - 1)
        };
        let sum = self.sum.load(Relaxed);
        let min = self.min.load(Relaxed);
        let max = self.max.load(Relaxed);
        // Bucket midpoints can overshoot the true extremum by up to half a
        // bucket; clamping keeps `p99 <= max` in every report.
        let clamped = |q: f64| percentile(q).min(max.max(1));
        // Sparse cumulative buckets for Prometheus exposition: one
        // `(inclusive upper bound, cumulative count)` pair per occupied
        // bucket. Observations are integers, so the inclusive bound of
        // bucket `i` is `bucket_low(i + 1) - 1` — the cumulative count at
        // that bound is exact, not approximated.
        let mut cumulative = Vec::new();
        let mut running = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                running += c;
                let le = if i + 1 < BUCKETS { bucket_low(i + 1) - 1 } else { u64::MAX };
                cumulative.push((le, running));
            }
        }
        HistogramSummary {
            name: self.name.clone(),
            count: total,
            sum,
            mean: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            min: if total == 0 { 0 } else { min },
            max,
            p50: if total == 0 { 0 } else { clamped(0.50) },
            p90: if total == 0 { 0 } else { clamped(0.90) },
            p99: if total == 0 { 0 } else { clamped(0.99) },
            buckets: cumulative,
        }
    }

    fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }

    /// Folds another cell's observations into this one: count/sum/buckets
    /// add, min/max take the extremum. Both layouts are identical by
    /// construction ([`BUCKETS`]). An empty `other` carries the `u64::MAX`
    /// min sentinel, which `fetch_min` leaves inert.
    fn merge_from(&self, other: &HistogramCell) {
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            dst.fetch_add(src.load(Relaxed), Relaxed);
        }
    }
}

/// Cheap cloneable handle to a registered counter.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds `n`; a single relaxed `fetch_add` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Relaxed) {
            self.cell.value.fetch_add(n, Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.value.load(Relaxed)
    }

    pub fn name(&self) -> &str {
        &self.cell.name
    }
}

/// Cheap cloneable handle to a registered gauge: a point-in-time value
/// (occupancy, capacity, overlay size) rather than a monotone count.
///
/// Unlike counters, gauge writes are **not** gated by the registry's
/// enabled flag: a gauge states current system health, and a health
/// endpoint that silently reports zero because profiling was switched off
/// would be worse than the one relaxed store it saves.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.cell.value.store(value, Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.value.fetch_add(n, Relaxed);
    }

    /// Decrements by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self.cell.value.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.value.load(Relaxed)
    }

    pub fn name(&self) -> &str {
        &self.cell.name
    }
}

/// Cheap cloneable handle to a registered histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one observation (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Relaxed) {
            self.cell.record(value);
        }
    }

    /// True when recording is live (used by [`Span`](crate::Span) to skip
    /// the clock read entirely).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Point-in-time percentile summary.
    pub fn summary(&self) -> HistogramSummary {
        self.cell.summary()
    }

    pub fn name(&self) -> &str {
        &self.cell.name
    }
}

/// Point-in-time histogram digest.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Sparse cumulative distribution: `(inclusive upper bound, cumulative
    /// count)` per occupied log-scale bucket, ascending. The last bound for
    /// the top bucket is `u64::MAX` (rendered as `+Inf` in exposition).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("count", self.count)
            .set("sum", self.sum)
            .set("mean", Json::Num(self.mean))
            .set("min", self.min)
            .set("max", self.max)
            .set("p50", self.p50)
            .set("p90", self.p90)
            .set("p99", self.p99)
    }
}

/// Registry of named counters and histograms.
///
/// Handles returned by [`counter`](Self::counter)/[`histogram`](Self::histogram)
/// stay valid for the registry's lifetime and share its enabled flag.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<Vec<Arc<CounterCell>>>,
    gauges: Mutex<Vec<Arc<GaugeCell>>>,
    histograms: Mutex<Vec<Arc<HistogramCell>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(true)),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// A registry whose every record call is a no-op (the zero-overhead
    /// "off" configuration).
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Handle to the named counter, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().expect("metrics lock");
        let cell = match counters.iter().find(|c| c.name == name) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell =
                    Arc::new(CounterCell { name: name.to_string(), value: AtomicU64::new(0) });
                counters.push(Arc::clone(&cell));
                cell
            }
        };
        Counter { enabled: Arc::clone(&self.enabled), cell }
    }

    /// Handle to the named gauge, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.gauges.lock().expect("metrics lock");
        let cell = match gauges.iter().find(|g| g.name == name) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell =
                    Arc::new(GaugeCell { name: name.to_string(), value: AtomicU64::new(0) });
                gauges.push(Arc::clone(&cell));
                cell
            }
        };
        Gauge { cell }
    }

    /// Handle to the named histogram, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.histograms.lock().expect("metrics lock");
        let cell = match histograms.iter().find(|h| h.name == name) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell = Arc::new(HistogramCell::new(name));
                histograms.push(Arc::clone(&cell));
                cell
            }
        };
        Histogram { enabled: Arc::clone(&self.enabled), cell }
    }

    /// RAII timer recording into the named histogram on drop.
    pub fn span(&self, name: &str) -> crate::Span {
        crate::Span::from_handle(self.histogram(name))
    }

    /// Current value of a counter (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics lock")
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value.load(Relaxed))
    }

    /// Current value of a gauge (0 if never registered).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .find(|g| g.name == name)
            .map_or(0, |g| g.value.load(Relaxed))
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|c| (c.name.clone(), c.value.load(Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|g| (g.name.clone(), g.value.load(Relaxed)))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSummary> = self
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|h| h.summary())
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Folds every metric of `other` into this registry: counters add by
    /// name, histograms add bucket-wise (max takes the larger observation).
    /// Metrics only present in `other` are registered here on the fly.
    ///
    /// This is how per-worker registries from a parallel run collapse into
    /// one report: each worker records into its own (contention-free)
    /// registry, and the coordinator merges them afterwards. The merge
    /// bypasses the enabled flag — a disabled coordinator registry still
    /// absorbs worker data faithfully. Merging a registry into itself is a
    /// no-op.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if std::ptr::eq(self, other) {
            return;
        }
        let other_counters: Vec<Arc<CounterCell>> =
            other.counters.lock().expect("metrics lock").clone();
        for src in other_counters {
            let dst = self.counter(&src.name);
            dst.cell.value.fetch_add(src.value.load(Relaxed), Relaxed);
        }
        // Gauges are point-in-time levels, not accumulations — adding two
        // workers' occupancy would double-count shared state. The merged
        // view keeps the largest reported level (high-water semantics).
        let other_gauges: Vec<Arc<GaugeCell>> = other.gauges.lock().expect("metrics lock").clone();
        for src in other_gauges {
            let dst = self.gauge(&src.name);
            dst.cell.value.fetch_max(src.value.load(Relaxed), Relaxed);
        }
        let other_histograms: Vec<Arc<HistogramCell>> =
            other.histograms.lock().expect("metrics lock").clone();
        for src in other_histograms {
            let dst = self.histogram(&src.name);
            dst.cell.merge_from(&src);
        }
    }

    /// Zeroes every metric (keeps registrations and handles alive).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("metrics lock").iter() {
            c.value.store(0, Relaxed);
        }
        for g in self.gauges.lock().expect("metrics lock").iter() {
            g.value.store(0, Relaxed);
        }
        for h in self.histograms.lock().expect("metrics lock").iter() {
            h.reset();
        }
    }
}

/// Point-in-time copy of a registry's metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, value) in &self.counters {
            counters = counters.set(name, *value);
        }
        let mut gauges = Json::obj();
        for (name, value) in &self.gauges {
            gauges = gauges.set(name, *value);
        }
        Json::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set(
                "histograms",
                Json::Arr(self.histograms.iter().map(HistogramSummary::to_json).collect()),
            )
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (v0.0.4)

/// Rewrites a dotted metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every invalid byte becomes `_`, and a
/// leading digit gets an underscore prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push(if valid { c } else { '_' });
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline are escaped; everything else (including UTF-8) passes
/// through verbatim.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as Prometheus text exposition v0.0.4 — the single
/// renderer behind the live `GET /metrics` endpoint and the offline
/// `repro-profile --prom` dump, so the two can never drift.
///
/// Counters render as `counter` samples with the conventional `_total`
/// suffix. Gauges render as plain `gauge` samples. Histograms render
/// natively: one cumulative `_bucket{le="..."}` sample per occupied
/// log-scale bucket (inclusive integer upper bounds, see
/// [`HistogramSummary::buckets`]), a `+Inf` bucket equal to `_count`,
/// plus `_sum`/`_count` and `_min`/`_max` gauges. Every family — including
/// the derived `_min`/`_max` ones — carries both a `# HELP` and a `# TYPE`
/// line, so scrapers that key on metadata see no anonymous series.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let mut n = sanitize_metric_name(name);
        if !n.ends_with("_total") {
            n.push_str("_total");
        }
        let _ = writeln!(out, "# HELP {n} relpat counter {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# HELP {n} relpat gauge {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for h in &snapshot.histograms {
        let n = sanitize_metric_name(&h.name);
        let _ = writeln!(out, "# HELP {n} relpat histogram {} (nanoseconds)", escape_help(&h.name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        for &(le, cumulative) in &h.buckets {
            if le == u64::MAX {
                continue; // the top bucket is covered by the +Inf sample
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", escape_label_value(&le.to_string()));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "# HELP {n}_min relpat histogram {} minimum", escape_help(&h.name));
        let _ = writeln!(out, "# TYPE {n}_min gauge");
        let _ = writeln!(out, "{n}_min {}", h.min);
        let _ = writeln!(out, "# HELP {n}_max relpat histogram {} maximum", escape_help(&h.name));
        let _ = writeln!(out, "# TYPE {n}_max gauge");
        let _ = writeln!(out, "{n}_max {}", h.max);
    }
    out
}

/// Escapes HELP text (backslash and newline only, per the format spec).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The process-wide registry the [`counter!`](crate::counter) and
/// [`span!`](crate::span) macros record into. Enabled by default.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Increments a named counter on the global registry, caching the handle at
/// the call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1)
    };
    ($name:expr, $n:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::Counter> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name)).add($n as u64);
    }};
}

/// Sets a named gauge on the global registry to an absolute value, caching
/// the handle at the call site: `gauge!("store.overlay_len", len)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::Gauge> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name)).set($value as u64);
    }};
}

/// RAII stage timer on the global registry: `let _g = span!("stage.map");`
/// records the guard's lifetime into the named histogram (nanoseconds) and,
/// while the [`prof`](crate::prof) sampler is enabled, keeps the stage's
/// interned tag on the calling thread's profiler stack. Both handles are
/// resolved once per call site.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<($crate::Histogram, $crate::prof::TagId)> =
            std::sync::OnceLock::new();
        let (histogram, tag) = HANDLE
            .get_or_init(|| ($crate::global().histogram($name), $crate::prof::intern($name)));
        $crate::Span::from_handle_tagged(histogram.clone(), *tag)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_invertible() {
        let mut last = 0;
        for v in [0u64, 1, 5, 7, 8, 9, 100, 1000, 4096, 1 << 20, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(i >= last || v < 8, "index regressed at {v}");
            last = i;
            assert!(bucket_low(i) <= v, "low({i}) = {} > {v}", bucket_low(i));
            if i + 1 < BUCKETS {
                assert!(bucket_low(i + 1) > v, "next bucket too low for {v}");
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_percentiles_on_known_distribution() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        // 1..=1000 uniformly: p50 ≈ 500, p90 ≈ 900, p99 ≈ 990.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        let within = |got: u64, want: f64| {
            let err = (got as f64 - want).abs() / want;
            assert!(err <= 0.15, "got {got}, want ~{want}");
        };
        within(s.p50, 500.0);
        within(s.p90, 900.0);
        within(s.p99, 990.0);
        assert!((s.mean - 500.5).abs() < 1.0);
    }

    #[test]
    fn histogram_percentiles_on_skewed_distribution() {
        let r = MetricsRegistry::new();
        let h = r.histogram("skew");
        // 99 fast ops at ~10ns, 1 slow at ~1ms: p50 near 10, p99 sees it;
        // the single outlier dominates max.
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.summary();
        assert!(s.p50 <= 12, "{}", s.p50);
        assert!(s.p99 >= 900_000, "{}", s.p99);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let r = MetricsRegistry::new();
        let s = r.histogram("never").summary();
        assert_eq!((s.count, s.p50, s.p90, s.p99, s.max), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        let r = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = r.counter("hits");
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter_value("hits"), 80_000);
    }

    #[test]
    fn concurrent_histogram_records_all_land() {
        let r = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = r.histogram("lat");
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1000 + i % 100);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.histogram("lat").summary().count, 20_000);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(5);
        h.record(100);
        assert_eq!(c.value(), 0);
        assert_eq!(h.summary().count, 0);
        // Re-enabling makes the same handles live.
        r.set_enabled(true);
        c.add(5);
        h.record(100);
        assert_eq!(c.value(), 5);
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn handles_are_shared_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("same");
        let b = r.counter("same");
        a.inc();
        b.inc();
        assert_eq!(r.counter_value("same"), 2);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.histogram("h").record(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 3);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        let json = snap.to_json().to_string();
        assert!(json.contains("\"a\":3"), "{json}");
        r.reset();
        assert_eq!(r.counter_value("a"), 0);
        assert_eq!(r.histogram("h").summary().count, 0);
    }

    #[test]
    fn merge_from_adds_counters_and_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("shared").add(3);
        b.counter("shared").add(4);
        b.counter("only_b").add(7);
        for v in [10u64, 20, 30] {
            a.histogram("lat").record(v);
        }
        for v in [1_000u64, 2_000] {
            b.histogram("lat").record(v);
        }
        b.histogram("only_b.lat").record(5);

        a.merge_from(&b);
        assert_eq!(a.counter_value("shared"), 7);
        assert_eq!(a.counter_value("only_b"), 7);
        let lat = a.histogram("lat").summary();
        assert_eq!(lat.count, 5);
        assert_eq!(lat.sum, 3_060);
        assert_eq!(lat.max, 2_000);
        assert_eq!(a.histogram("only_b.lat").summary().count, 1);
        // The source registry is left untouched.
        assert_eq!(b.counter_value("shared"), 4);
        assert_eq!(b.histogram("lat").summary().count, 2);
    }

    #[test]
    fn merge_preserves_percentiles_of_the_union() {
        // Merging k disjoint registries must equal recording everything
        // into one — bucket-wise addition keeps the percentile structure.
        let merged = MetricsRegistry::new();
        let reference = MetricsRegistry::new();
        for part in 0..4u64 {
            let worker = MetricsRegistry::new();
            for i in 0..250u64 {
                let v = part * 250 + i + 1; // 1..=1000 overall
                worker.histogram("lat").record(v);
                reference.histogram("lat").record(v);
            }
            merged.merge_from(&worker);
        }
        let m = merged.histogram("lat").summary();
        let r = reference.histogram("lat").summary();
        assert_eq!((m.count, m.sum, m.max), (r.count, r.sum, r.max));
        assert_eq!((m.p50, m.p90, m.p99), (r.p50, r.p90, r.p99));
    }

    #[test]
    fn merge_bypasses_disabled_flag_and_self_merge_is_noop() {
        let dst = MetricsRegistry::disabled();
        let src = MetricsRegistry::new();
        src.counter("c").add(9);
        dst.merge_from(&src);
        assert_eq!(dst.counter_value("c"), 9);
        dst.merge_from(&dst);
        assert_eq!(dst.counter_value("c"), 9);
    }

    #[test]
    fn min_tracks_smallest_observation() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [500u64, 3, 40_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!((s.min, s.max), (3, 40_000));
        assert!(s.to_json().to_string().contains("\"min\":3"));
        // Merge takes the smaller min; an empty source leaves it alone.
        let other = MetricsRegistry::new();
        other.histogram("lat").record(1);
        r.merge_from(&other);
        assert_eq!(r.histogram("lat").summary().min, 1);
        r.merge_from(&MetricsRegistry::new());
        assert_eq!(r.histogram("lat").summary().min, 1);
        // Reset restores the empty sentinel (reported as 0).
        r.reset();
        assert_eq!(r.histogram("lat").summary().min, 0);
        r.histogram("lat").record(9);
        assert_eq!(r.histogram("lat").summary().min, 9);
    }

    #[test]
    fn summary_buckets_are_cumulative_and_end_at_count() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert!(!s.buckets.is_empty());
        let mut last_le = 0u64;
        let mut last_c = 0u64;
        for &(le, c) in &s.buckets {
            assert!(le > last_le || last_c == 0, "le bounds must ascend");
            assert!(c >= last_c, "cumulative counts must be monotone");
            last_le = le;
            last_c = c;
        }
        assert_eq!(last_c, s.count, "final cumulative bucket equals _count");
        // Each bound is exact for integer observations: count(v <= le).
        for &(le, c) in &s.buckets {
            let expect = (1..=1000u64).filter(|v| *v <= le).count() as u64;
            assert_eq!(c, expect, "le={le}");
        }
    }

    #[test]
    fn sanitize_and_escape_follow_the_exposition_charset() {
        assert_eq!(sanitize_metric_name("qa.map.index.probed"), "qa_map_index_probed");
        assert_eq!(sanitize_metric_name("stage.answer"), "stage_answer");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x2"), "ok_name:x2");
        assert_eq!(sanitize_metric_name("sparql cache/hits"), "sparql_cache_hits");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("héllo – ünïcode"), "héllo – ünïcode");
    }

    #[test]
    fn prometheus_exposition_golden_format() {
        let r = MetricsRegistry::new();
        r.counter("qa.questions").add(21);
        let h = r.histogram("qa.total");
        for v in [5u64, 100, 100, 3_000] {
            h.record(v);
        }
        let text = render_prometheus(&r.snapshot());
        // Counter block: TYPE line and `_total`-suffixed sample.
        assert!(text.contains("# TYPE qa_questions_total counter"), "{text}");
        assert!(text.contains("\nqa_questions_total 21\n"), "{text}");
        // Histogram block: native type, sum and count.
        assert!(text.contains("# TYPE qa_total histogram"), "{text}");
        assert!(text.contains("\nqa_total_sum 3205\n"), "{text}");
        assert!(text.contains("\nqa_total_count 4\n"), "{text}");
        assert!(text.contains("qa_total_bucket{le=\"+Inf\"} 4"), "{text}");
        // min/max gauges ride along.
        assert!(text.contains("# TYPE qa_total_min gauge"), "{text}");
        assert!(text.contains("\nqa_total_min 5\n"), "{text}");
        assert!(text.contains("\nqa_total_max 3000\n"), "{text}");
        // le bounds ascend and cumulative counts are monotone, with the
        // +Inf bucket equal to _count.
        let mut last_le = -1i128;
        let mut last_c = 0u64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with("qa_total_bucket")) {
            let le = line.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
            let c: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(c >= last_c, "cumulative counts regressed: {line}");
            last_c = c;
            if le == "+Inf" {
                saw_inf = true;
                assert_eq!(c, 4, "+Inf bucket must equal _count");
            } else {
                let bound: i128 = le.parse().unwrap();
                assert!(bound > last_le, "le bounds must ascend: {line}");
                last_le = bound;
            }
        }
        assert!(saw_inf);
        // Every sample line uses a sanitized name (no dots survive).
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            assert!(!line.split(' ').next().unwrap().contains('.'), "unsanitized: {line}");
        }
    }

    #[test]
    fn empty_histogram_exposition_is_well_formed() {
        let r = MetricsRegistry::new();
        r.histogram("never");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("never_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("\nnever_sum 0\n"), "{text}");
        assert!(text.contains("\nnever_count 0\n"), "{text}");
    }

    #[test]
    fn gauge_set_add_sub_and_snapshot() {
        let r = MetricsRegistry::new();
        let g = r.gauge("store.overlay_len");
        g.set(100);
        g.add(20);
        g.sub(50);
        assert_eq!(g.value(), 70);
        g.sub(1_000); // saturates at zero rather than wrapping
        assert_eq!(g.value(), 0);
        g.set(42);
        assert_eq!(r.gauge_value("store.overlay_len"), 42);
        assert_eq!(r.gauge_value("never.registered"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("store.overlay_len"), 42);
        let json = snap.to_json().to_string();
        assert!(json.contains("\"gauges\""), "{json}");
        assert!(json.contains("\"store.overlay_len\":42"), "{json}");
        // Same-name handles share the cell; reset zeroes but keeps them.
        r.gauge("store.overlay_len").set(7);
        assert_eq!(g.value(), 7);
        r.reset();
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn gauge_writes_survive_disabled_registry() {
        // Health gauges must stay truthful even when profiling is off.
        let r = MetricsRegistry::disabled();
        let g = r.gauge("cache.len");
        g.set(9);
        assert_eq!(r.gauge_value("cache.len"), 9);
    }

    #[test]
    fn merge_takes_gauge_high_water() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.gauge("held").set(10);
        b.gauge("held").set(25);
        b.gauge("only_b").set(3);
        a.merge_from(&b);
        assert_eq!(a.gauge_value("held"), 25);
        assert_eq!(a.gauge_value("only_b"), 3);
        // Merging a smaller level does not regress the high-water mark.
        let c = MetricsRegistry::new();
        c.gauge("held").set(1);
        a.merge_from(&c);
        assert_eq!(a.gauge_value("held"), 25);
    }

    #[test]
    fn gauges_render_as_prometheus_gauge_family() {
        let r = MetricsRegistry::new();
        r.gauge("store.frozen_triples").set(9641);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# HELP store_frozen_triples relpat gauge store.frozen_triples"), "{text}");
        assert!(text.contains("# TYPE store_frozen_triples gauge"), "{text}");
        assert!(text.contains("\nstore_frozen_triples 9641\n"), "{text}");
        // No `_total` suffix on gauges.
        assert!(!text.contains("store_frozen_triples_total"), "{text}");
    }

    /// Asserts every sample family in a rendered exposition carries both
    /// `# HELP` and `# TYPE` metadata. Strips histogram sub-sample
    /// suffixes so `x_bucket`/`x_sum`/`x_count` map to `x`, while
    /// `_min`/`_max` stand as their own gauge families.
    fn audit_exposition_metadata(text: &str) {
        let mut annotated = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split(' ').next().unwrap();
                assert!(
                    text.contains(&format!("# HELP {fam} ")),
                    "family {fam} has TYPE but no HELP"
                );
                annotated.insert(fam.to_string());
            }
        }
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let sample = line.split([' ', '{']).next().unwrap();
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| sample.strip_suffix(suf))
                .unwrap_or(sample);
            assert!(annotated.contains(family), "sample {sample} lacks # TYPE/# HELP metadata");
        }
    }

    #[test]
    fn every_exposition_family_has_help_and_type() {
        let r = MetricsRegistry::new();
        r.counter("qa.questions").add(2);
        r.gauge("store.held").set(5);
        r.histogram("qa.total").record(100);
        audit_exposition_metadata(&render_prometheus(&r.snapshot()));
    }

    #[test]
    fn slo_and_prof_families_render_with_metadata() {
        use crate::slo::{SloConfig, SloMonitor};
        // Drive the real SLO machinery: the default objectives, two
        // minutes of clean traffic, one check populating the gauges.
        let r = MetricsRegistry::new();
        let monitor = SloMonitor::new(SloConfig::default());
        for sec in 0..120 {
            monitor.record_at(sec, "answer", 1_000_000, false);
            monitor.record_at(sec, "sparql", 1_000_000, false);
        }
        monitor.check_at(120, &r);
        // The profiler's counter mirrors, at their exported names.
        r.counter("prof.samples").add(3);
        r.counter("prof.dropped").add(0);
        let text = render_prometheus(&r.snapshot());
        audit_exposition_metadata(&text);

        // Every objective exports its three burn-rate windows plus the
        // breached flag — as gauges (no `_total`), fully annotated.
        for objective in ["answer_latency", "answer_errors", "sparql_latency"] {
            for suffix in ["burn_1m", "burn_5m", "burn_1h", "breached"] {
                let fam = format!("slo_{objective}_{suffix}");
                assert!(text.contains(&format!("# TYPE {fam} gauge")), "{fam} missing: {text}");
                assert!(
                    text.lines().any(|l| l.starts_with(&format!("{fam} "))),
                    "{fam} has no sample"
                );
                assert!(!text.contains(&format!("{fam}_total")), "gauge {fam} got _total");
            }
        }
        // Clean traffic: nothing breached.
        for objective in ["answer_latency", "answer_errors", "sparql_latency"] {
            assert!(text.contains(&format!("slo_{objective}_breached 0")), "{text}");
        }
        // Profiler counters render as counters with the `_total` suffix,
        // and a zero counter still exports (absence would be unscrapeable).
        assert!(text.contains("# TYPE prof_samples_total counter"), "{text}");
        assert!(text.contains("prof_samples_total 3"), "{text}");
        assert!(text.contains("prof_dropped_total 0"), "{text}");
    }

    #[test]
    fn macros_record_into_global() {
        let before = global().counter_value("obs.test.macro");
        crate::counter!("obs.test.macro");
        crate::counter!("obs.test.macro", 4);
        assert_eq!(global().counter_value("obs.test.macro"), before + 5);
        crate::gauge!("obs.test.gauge", 17);
        assert_eq!(global().gauge_value("obs.test.gauge"), 17);
        {
            let _g = crate::span!("obs.test.span");
        }
        assert!(global().histogram("obs.test.span").summary().count >= 1);
    }
}
