//! Structured event journal — the flight recorder next to the metrics.
//!
//! Metrics aggregate; traces cover one question; the journal records the
//! *sequence* of notable decisions across the whole process: pipeline stage
//! boundaries, SPARQL cache evictions, lexical-index fallback-to-scan
//! degradations, answer early-termination decisions, serving lifecycle
//! events. Each [`Event`] carries a monotonic sequence number, a
//! monotonic-clock timestamp (nanoseconds since journal creation), a
//! [`Level`], a dotted stage name, and free-form key-value fields.
//!
//! Two backends, composable:
//!
//! - a **ring buffer** (always on) for in-memory tailing — the live
//!   `GET /events/tail?n=` endpoint reads this; when full, the oldest
//!   events fall off and a dropped counter keeps the loss visible;
//! - an optional **file backend** ([`attach_file`](EventJournal::attach_file))
//!   appending one JSON object per line (JSONL) for crash forensics —
//!   buffered, with [`flush`](EventJournal::flush) called on graceful drain.
//!
//! Cost discipline: the enabled flag is a single relaxed atomic load, and
//! the [`jevent!`](crate::jevent) macro checks it *before* evaluating its
//! field expressions, so a disabled journal costs one load and zero
//! allocations at every call site. An enabled emit takes the mutex once to
//! push into the ring (and write the line when a file is attached).

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (1-based, gap-free per journal).
    pub seq: u64,
    /// Nanoseconds since the journal was created (monotonic clock).
    pub nanos: u64,
    pub level: Level,
    /// Dotted source, e.g. `qa.map`, `sparql.cache`, `serve.drain`.
    pub stage: String,
    /// Free-form key-value payload, insertion order preserved.
    pub fields: Vec<(String, String)>,
}

impl Event {
    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.fields {
            fields = fields.set(k, v.as_str());
        }
        Json::obj()
            .set("seq", self.seq)
            .set("t_ns", self.nanos)
            .set("level", self.level.as_str())
            .set("stage", self.stage.as_str())
            .set("fields", fields)
    }
}

#[derive(Default)]
struct Inner {
    ring: VecDeque<Event>,
    file: Option<std::io::BufWriter<std::fs::File>>,
}

/// Bounded structured event sink. See the module docs for the contract.
pub struct EventJournal {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    seq: AtomicU64,
    /// Events pushed out of the ring by capacity (still written to the file
    /// backend if one is attached).
    dropped: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity)
            .field("enabled", &self.is_enabled())
            .field("seq", &self.seq.load(Relaxed))
            .finish()
    }
}

impl EventJournal {
    /// A journal whose ring holds at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(1),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A journal that records nothing until re-enabled.
    pub fn disabled(capacity: usize) -> Self {
        let j = Self::new(capacity);
        j.set_enabled(false);
        j
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Attaches (or replaces) the JSONL file backend. Subsequent events
    /// append one line each; call [`flush`](Self::flush) before reading the
    /// file or exiting.
    pub fn attach_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        self.inner.lock().expect("journal lock").file = Some(std::io::BufWriter::new(file));
        Ok(())
    }

    /// Detaches the file backend (flushing it first). Returns true when a
    /// backend was attached.
    pub fn detach_file(&self) -> bool {
        let mut inner = self.inner.lock().expect("journal lock");
        match inner.file.take() {
            Some(mut w) => {
                let _ = w.flush();
                true
            }
            None => false,
        }
    }

    /// Flushes the file backend, if attached.
    pub fn flush(&self) {
        if let Some(w) = self.inner.lock().expect("journal lock").file.as_mut() {
            let _ = w.flush();
        }
    }

    /// Records one event (no-op when disabled). Prefer the
    /// [`jevent!`](crate::jevent) macro at call sites — it skips field
    /// construction entirely when the journal is disabled.
    pub fn emit(&self, level: Level, stage: &str, fields: Vec<(String, String)>) {
        if !self.is_enabled() {
            return;
        }
        let nanos = self.epoch.elapsed().as_nanos() as u64;
        let stage = stage.to_string();
        let mut inner = self.inner.lock().expect("journal lock");
        // Seq is assigned under the ring lock: handing it out earlier lets
        // two racing writers insert out of seq order, so the retained tail
        // would no longer be the contiguous end of the sequence space.
        let event = Event { seq: self.seq.fetch_add(1, Relaxed) + 1, nanos, level, stage, fields };
        if let Some(w) = inner.file.as_mut() {
            let _ = writeln!(w, "{}", event.to_json());
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        inner.ring.push_back(event);
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let inner = self.inner.lock().expect("journal lock");
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// JSON array of the most recent `n` events, oldest first.
    pub fn tail_json(&self, n: usize) -> Json {
        Json::Arr(self.tail(n).iter().map(Event::to_json).collect())
    }

    /// Total events emitted (including any that have fallen off the ring).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Relaxed)
    }

    /// Events pushed out of the ring by capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock").ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide journal the [`jevent!`](crate::jevent) macro emits
/// into. Ring capacity 4096, enabled by default (ring-only; attach a file
/// backend explicitly for flight recording).
pub fn global_journal() -> &'static EventJournal {
    static GLOBAL: OnceLock<EventJournal> = OnceLock::new();
    GLOBAL.get_or_init(|| EventJournal::new(4096))
}

/// Emits a structured event into the global journal:
/// `jevent!(Level::Info, "qa.answer", "executed" => 3, "built" => 51)`.
/// Field values go through `Display`. When the journal is disabled the
/// field expressions are never evaluated.
#[macro_export]
macro_rules! jevent {
    ($level:expr, $stage:expr $(, $k:literal => $v:expr)* $(,)?) => {{
        let journal = $crate::journal::global_journal();
        if journal.is_enabled() {
            journal.emit($level, $stage, vec![$(($k.to_string(), $v.to_string())),*]);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_sequence_time_and_fields() {
        let j = EventJournal::new(16);
        j.emit(Level::Info, "qa.extract", vec![("nanos".into(), "41".into())]);
        j.emit(Level::Warn, "sparql.cache", vec![("evicted".into(), "512".into())]);
        let events = j.tail(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert!(events[0].nanos <= events[1].nanos);
        assert_eq!(events[1].level, Level::Warn);
        assert_eq!(events[1].stage, "sparql.cache");
        assert_eq!(events[1].fields[0], ("evicted".to_string(), "512".to_string()));
        assert_eq!(j.emitted(), 2);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts_the_loss() {
        let j = EventJournal::new(3);
        for i in 0..10u64 {
            j.emit(Level::Debug, "s", vec![("i".into(), i.to_string())]);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let tail = j.tail(100);
        assert_eq!(tail.first().unwrap().seq, 8);
        assert_eq!(tail.last().unwrap().seq, 10);
        // tail(n) returns the newest n, oldest first.
        let last_two = j.tail(2);
        assert_eq!(last_two.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![9, 10]);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = EventJournal::disabled(8);
        j.emit(Level::Error, "x", Vec::new());
        assert!(j.is_empty());
        assert_eq!(j.emitted(), 0);
        j.set_enabled(true);
        j.emit(Level::Error, "x", Vec::new());
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn json_rendering_round_trips() {
        let j = EventJournal::new(4);
        j.emit(
            Level::Info,
            "qa.answer",
            vec![("q".into(), "Kaç kişi \"quoted\" söyledi?".into()), ("n".into(), "3".into())],
        );
        let json = j.tail_json(4);
        let parsed = Json::parse(&json.to_string()).expect("valid JSON");
        let e = parsed.idx(0).unwrap();
        assert_eq!(e.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(e.get("stage").and_then(Json::as_str), Some("qa.answer"));
        assert_eq!(
            e.get("fields").and_then(|f| f.get("q")).and_then(Json::as_str),
            Some("Kaç kişi \"quoted\" söyledi?")
        );
    }

    #[test]
    fn file_backend_appends_jsonl_and_survives_ring_eviction() {
        let path = std::env::temp_dir().join(format!("relpat-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let j = EventJournal::new(2);
        j.attach_file(&path).expect("attach");
        for i in 0..5u64 {
            j.emit(Level::Info, "s", vec![("i".into(), i.to_string())]);
        }
        j.flush();
        let text = std::fs::read_to_string(&path).expect("read journal file");
        let lines: Vec<&str> = text.lines().collect();
        // All five events hit the file even though the ring only holds 2.
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).expect("each line is one JSON object");
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(i as u64 + 1));
        }
        assert!(j.detach_file());
        assert!(!j.detach_file());
        j.emit(Level::Info, "s", Vec::new());
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_emits_keep_gap_free_sequence() {
        let j = std::sync::Arc::new(EventJournal::new(10_000));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let j = &j;
                scope.spawn(move || {
                    for _ in 0..500 {
                        j.emit(Level::Debug, "t", Vec::new());
                    }
                });
            }
        });
        assert_eq!(j.emitted(), 2000);
        let mut seqs: Vec<u64> = j.tail(10_000).iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=2000).collect::<Vec<_>>());
    }

    #[test]
    fn jevent_macro_emits_into_global() {
        let before = global_journal().emitted();
        crate::jevent!(Level::Info, "obs.test.jevent", "k" => 42, "s" => "v");
        assert_eq!(global_journal().emitted(), before + 1);
        let tail = global_journal().tail(64);
        let e = tail.iter().rev().find(|e| e.stage == "obs.test.jevent").unwrap();
        assert_eq!(e.fields[0], ("k".to_string(), "42".to_string()));
    }
}
