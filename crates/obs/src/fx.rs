//! Fast non-cryptographic hashing (FxHash-style), replacing the
//! `rustc-hash` dependency so the workspace builds offline.
//!
//! The algorithm is the rustc/Firefox multiply-rotate-xor hash: fold each
//! machine word of input into the state with `rotate ^ word`, then multiply
//! by a constant with good bit dispersion. It is not DoS-resistant — every
//! map in this workspace is keyed by trusted, internally-generated data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Odd constant with well-spread bits (the 64-bit FxHash multiplier).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate-xor hasher over 8-byte words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(s: &str) -> u64 {
        let mut h = FxHasher::default();
        h.write(s.as_bytes());
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of("deathPlace"), hash_of("deathPlace"));
        assert_ne!(hash_of("deathPlace"), hash_of("birthPlace"));
        assert_ne!(hash_of(""), hash_of("a"));
        assert_ne!(hash_of("ab"), hash_of("ba"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn spread_over_buckets() {
        // Sequential integers should not collide in the low bits en masse.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0u64..256 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct low bytes", low_bits.len());
    }
}
