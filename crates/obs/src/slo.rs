//! Rolling-window latency/error objectives with multi-window burn rates.
//!
//! An objective states "`target` fraction of requests to `endpoint` must be
//! good", where *bad* means an error or (for latency objectives) a request
//! over the threshold. The error budget is `1 - target`, and the **burn
//! rate** over a window is
//!
//! ```text
//! burn = bad_fraction_in_window / (1 - target)
//! ```
//!
//! — burn 1.0 spends the budget exactly at the sustainable pace; burn 14.4
//! sustained for an hour spends a 30-day budget's 2% in that hour. The
//! monitor keeps one-second buckets in three ring buffers (1m/5m/1h) per
//! objective and applies the standard two-window rule so a breach needs
//! both a fast and a slower window over threshold: the short window makes
//! the alert responsive, the long one stops a single bad second from
//! paging.
//!
//! - **fast breach**: `burn(1m) ≥ fast_burn` **and** `burn(5m) ≥ fast_burn`
//! - **slow breach**: `burn(5m) ≥ slow_burn` **and** `burn(1h) ≥ slow_burn`
//!
//! Breach *transitions* (entering or leaving) emit a `slo.burn` journal
//! event and bump `slo.breaches` (enters only); every
//! [`check`](SloMonitor::check) refreshes per-objective gauges
//! (`slo.<name>.burn_1m/5m/1h`, milli-burn — the gauge value is
//! `round(burn × 1000)` since gauges are integers — and
//! `slo.<name>.breached` 0/1).
//!
//! All clocking goes through seconds-since-monitor-creation, and the
//! `*_at` variants take that second explicitly, so unit sweeps can replay
//! hours of traffic without sleeping.

use std::sync::Mutex;
use std::time::Instant;

use crate::journal::Level;
use crate::metrics::MetricsRegistry;

/// The three burn-rate windows, in seconds.
pub const WINDOWS: &[(&str, u64)] = &[("1m", 60), ("5m", 300), ("1h", 3600)];

/// One latency or error objective on an endpoint.
#[derive(Debug, Clone)]
pub struct SloObjective {
    /// Gauge/report name, e.g. `answer_latency`.
    pub name: String,
    /// Endpoint key matched against [`SloMonitor::record`]'s first argument.
    pub endpoint: String,
    /// A request slower than this is bad (`None`: errors alone are bad).
    pub threshold_ns: Option<u64>,
    /// Good-request fraction target in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
}

impl SloObjective {
    /// Latency objective: `target` of `endpoint` requests finish within
    /// `threshold_ms` (errors count as bad too).
    pub fn latency(name: &str, endpoint: &str, threshold_ms: u64, target: f64) -> Self {
        SloObjective {
            name: name.to_string(),
            endpoint: endpoint.to_string(),
            threshold_ns: Some(threshold_ms * 1_000_000),
            target,
        }
    }

    /// Availability objective: `target` of `endpoint` requests succeed.
    pub fn errors(name: &str, endpoint: &str, target: f64) -> Self {
        SloObjective {
            name: name.to_string(),
            endpoint: endpoint.to_string(),
            threshold_ns: None,
            target,
        }
    }
}

/// Objectives plus the two-window burn thresholds.
#[derive(Debug, Clone)]
pub struct SloConfig {
    pub objectives: Vec<SloObjective>,
    /// Threshold for the fast (1m + 5m) breach rule.
    pub fast_burn: f64,
    /// Threshold for the slow (5m + 1h) breach rule.
    pub slow_burn: f64,
}

impl Default for SloConfig {
    /// The serving plane's defaults: 99% of answers within 250 ms, 99.9%
    /// of answers succeed, 99% of raw SPARQL calls within 100 ms. Burn
    /// thresholds follow the SRE-workbook pairing (14.4 fast / 6 slow).
    fn default() -> Self {
        SloConfig {
            objectives: vec![
                SloObjective::latency("answer_latency", "answer", 250, 0.99),
                SloObjective::errors("answer_errors", "answer", 0.999),
                SloObjective::latency("sparql_latency", "sparql", 100, 0.99),
            ],
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

/// One-second buckets over a fixed window. Slot `sec % window` holds the
/// counts for `sec`; a slot whose stored second has fallen out of the
/// window is dead weight until overwritten, and the sum skips it.
#[derive(Debug)]
struct Ring {
    window: u64,
    secs: Vec<u64>,
    total: Vec<u64>,
    bad: Vec<u64>,
}

impl Ring {
    fn new(window: u64) -> Self {
        Ring {
            window,
            secs: vec![u64::MAX; window as usize],
            total: vec![0; window as usize],
            bad: vec![0; window as usize],
        }
    }

    fn add(&mut self, sec: u64, bad: bool) {
        let i = (sec % self.window) as usize;
        if self.secs[i] != sec {
            self.secs[i] = sec;
            self.total[i] = 0;
            self.bad[i] = 0;
        }
        self.total[i] += 1;
        self.bad[i] += u64::from(bad);
    }

    /// `(total, bad)` over `(now - window, now]`.
    fn sums(&self, now: u64) -> (u64, u64) {
        let mut total = 0;
        let mut bad = 0;
        for i in 0..self.window as usize {
            let s = self.secs[i];
            if s != u64::MAX && s <= now && now - s < self.window {
                total += self.total[i];
                bad += self.bad[i];
            }
        }
        (total, bad)
    }
}

#[derive(Debug)]
struct ObjectiveState {
    objective: SloObjective,
    rings: Vec<Ring>,
    breached: bool,
}

/// Burn rates for one objective at one [`check`](SloMonitor::check).
#[derive(Debug, Clone, PartialEq)]
pub struct BurnReport {
    pub objective: String,
    pub endpoint: String,
    pub target: f64,
    pub burn_1m: f64,
    pub burn_5m: f64,
    pub burn_1h: f64,
    pub breached: bool,
    /// True when this check flipped the breach state either way.
    pub changed: bool,
}

impl BurnReport {
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj()
            .set("objective", self.objective.as_str())
            .set("endpoint", self.endpoint.as_str())
            .set("target", crate::Json::Num(self.target))
            .set("burn_1m", crate::Json::Num(round3(self.burn_1m)))
            .set("burn_5m", crate::Json::Num(round3(self.burn_5m)))
            .set("burn_1h", crate::Json::Num(round3(self.burn_1h)))
            .set("breached", self.breached)
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Rolling-window SLO monitor. See the module docs for the math.
#[derive(Debug)]
pub struct SloMonitor {
    epoch: Instant,
    fast_burn: f64,
    slow_burn: f64,
    inner: Mutex<Vec<ObjectiveState>>,
}

impl Default for SloMonitor {
    fn default() -> Self {
        Self::new(SloConfig::default())
    }
}

impl SloMonitor {
    pub fn new(config: SloConfig) -> Self {
        let SloConfig { objectives, fast_burn, slow_burn } = config;
        let states = objectives
            .into_iter()
            .map(|objective| ObjectiveState {
                objective,
                rings: WINDOWS.iter().map(|&(_, w)| Ring::new(w)).collect(),
                breached: false,
            })
            .collect();
        SloMonitor {
            epoch: Instant::now(),
            fast_burn: config_burn(fast_burn),
            slow_burn: config_burn(slow_burn),
            inner: Mutex::new(states),
        }
    }

    /// Seconds since the monitor was created (the clock `record`/`check`
    /// use).
    pub fn now_s(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one request against every objective on `endpoint`.
    pub fn record(&self, endpoint: &str, latency_ns: u64, error: bool) {
        self.record_at(self.now_s(), endpoint, latency_ns, error);
    }

    /// [`record`](Self::record) at an explicit second (unit-sweep entry
    /// point).
    pub fn record_at(&self, sec: u64, endpoint: &str, latency_ns: u64, error: bool) {
        let mut states = self.inner.lock().expect("slo lock");
        for st in states.iter_mut().filter(|s| s.objective.endpoint == endpoint) {
            let bad =
                error || st.objective.threshold_ns.is_some_and(|t| latency_ns > t);
            for ring in &mut st.rings {
                ring.add(sec, bad);
            }
        }
    }

    /// Recomputes every objective's burn rates, refreshes gauges on
    /// `registry`, and emits `slo.burn` journal events on breach
    /// transitions. Returns one report per objective.
    pub fn check(&self, registry: &MetricsRegistry) -> Vec<BurnReport> {
        self.check_at(self.now_s(), registry)
    }

    /// [`check`](Self::check) at an explicit second.
    pub fn check_at(&self, sec: u64, registry: &MetricsRegistry) -> Vec<BurnReport> {
        let mut states = self.inner.lock().expect("slo lock");
        let mut reports = Vec::with_capacity(states.len());
        for st in states.iter_mut() {
            let budget = (1.0 - st.objective.target).max(1e-9);
            let burns: Vec<f64> = st
                .rings
                .iter()
                .map(|r| {
                    let (total, bad) = r.sums(sec);
                    if total == 0 { 0.0 } else { (bad as f64 / total as f64) / budget }
                })
                .collect();
            let (b1, b5, bh) = (burns[0], burns[1], burns[2]);
            let fast = b1 >= self.fast_burn && b5 >= self.fast_burn;
            let slow = b5 >= self.slow_burn && bh >= self.slow_burn;
            let breached = fast || slow;
            let changed = breached != st.breached;
            st.breached = breached;
            let name = st.objective.name.as_str();
            if changed {
                let (level, state) =
                    if breached { (Level::Warn, "breached") } else { (Level::Info, "resolved") };
                if breached {
                    crate::counter!("slo.breaches");
                }
                crate::jevent!(
                    level,
                    "slo.burn",
                    "objective" => name,
                    "endpoint" => st.objective.endpoint,
                    "state" => state,
                    "burn_1m" => round3(b1),
                    "burn_5m" => round3(b5),
                    "burn_1h" => round3(bh),
                );
            }
            registry.gauge(&format!("slo.{name}.burn_1m")).set(milli(b1));
            registry.gauge(&format!("slo.{name}.burn_5m")).set(milli(b5));
            registry.gauge(&format!("slo.{name}.burn_1h")).set(milli(bh));
            registry.gauge(&format!("slo.{name}.breached")).set(u64::from(breached));
            reports.push(BurnReport {
                objective: st.objective.name.clone(),
                endpoint: st.objective.endpoint.clone(),
                target: st.objective.target,
                burn_1m: b1,
                burn_5m: b5,
                burn_1h: bh,
                breached,
                changed,
            });
        }
        reports
    }
}

/// Milli-burn gauge encoding (gauges are unsigned integers).
fn milli(burn: f64) -> u64 {
    (burn * 1000.0).round().min(u64::MAX as f64 / 2.0) as u64
}

fn config_burn(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 { v } else { 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_only(target: f64) -> SloMonitor {
        SloMonitor::new(SloConfig {
            objectives: vec![SloObjective::latency("lat", "ep", 100, target)],
            fast_burn: 14.4,
            slow_burn: 6.0,
        })
    }

    #[test]
    fn ring_sums_track_a_sliding_window() {
        let mut r = Ring::new(60);
        for sec in 0..120u64 {
            r.add(sec, sec % 10 == 0);
        }
        // At second 119 the window covers 60..=119: six bad seconds.
        assert_eq!(r.sums(119), (60, 6));
        // Far in the future everything has expired.
        assert_eq!(r.sums(1000), (0, 0));
        // Re-adding at a wrapped slot resets that slot's old counts.
        r.add(1000, false);
        assert_eq!(r.sums(1000), (1, 0));
    }

    #[test]
    fn burn_is_bad_fraction_over_budget() {
        let m = latency_only(0.99); // 1% budget
        let r = MetricsRegistry::new();
        // 100 requests in one second, 2 slow: bad fraction 2% → burn 2.0.
        for i in 0..100u64 {
            m.record_at(10, "ep", if i < 2 { 200_000_000 } else { 1_000_000 }, false);
        }
        let reports = m.check_at(10, &r);
        assert_eq!(reports.len(), 1);
        let rep = &reports[0];
        assert!((rep.burn_1m - 2.0).abs() < 1e-9, "{rep:?}");
        assert!((rep.burn_5m - 2.0).abs() < 1e-9, "{rep:?}");
        assert!(!rep.breached, "burn 2 is under both thresholds");
        assert_eq!(r.gauge_value("slo.lat.burn_1m"), 2000);
        assert_eq!(r.gauge_value("slo.lat.breached"), 0);
    }

    #[test]
    fn errors_count_against_latency_objectives_too() {
        let m = latency_only(0.9);
        let r = MetricsRegistry::new();
        m.record_at(5, "ep", 1, true); // fast but errored
        let rep = &m.check_at(5, &r)[0];
        assert!(rep.burn_1m > 0.0, "{rep:?}");
    }

    #[test]
    fn unmatched_endpoint_is_ignored() {
        let m = latency_only(0.99);
        let r = MetricsRegistry::new();
        m.record_at(5, "other", 500_000_000, false);
        let rep = &m.check_at(5, &r)[0];
        assert_eq!((rep.burn_1m, rep.burn_5m, rep.burn_1h), (0.0, 0.0, 0.0));
    }

    #[test]
    fn fast_breach_needs_both_short_windows() {
        let m = latency_only(0.99);
        let r = MetricsRegistry::new();
        // Minute 0–4: healthy traffic fills the 5m window.
        for sec in 0..300u64 {
            for _ in 0..10 {
                m.record_at(sec, "ep", 1_000_000, false);
            }
        }
        assert!(!m.check_at(299, &r)[0].breached);
        // Sudden total outage: every request slow.
        for sec in 300..360u64 {
            for _ in 0..10 {
                m.record_at(sec, "ep", 500_000_000, false);
            }
        }
        // One bad minute over a healthy 5m window: burn_1m = 100 but
        // burn_5m = 600 bad / 3000 total / 0.01 = 20 ≥ 14.4 → breach.
        let rep = &m.check_at(359, &r)[0];
        assert!(rep.burn_1m >= 14.4, "{rep:?}");
        assert!(rep.breached && rep.changed, "{rep:?}");
        assert_eq!(r.gauge_value("slo.lat.breached"), 1);
        // Second check without new traffic: still breached, not a change.
        let rep2 = &m.check_at(359, &r)[0];
        assert!(rep2.breached && !rep2.changed, "{rep2:?}");
    }

    #[test]
    fn short_blip_over_long_healthy_window_does_not_page() {
        let m = latency_only(0.99);
        let r = MetricsRegistry::new();
        // 10 minutes of healthy traffic…
        for sec in 0..600u64 {
            for _ in 0..10 {
                m.record_at(sec, "ep", 1_000_000, false);
            }
        }
        // …then five bad seconds.
        for sec in 600..605u64 {
            for _ in 0..10 {
                m.record_at(sec, "ep", 900_000_000, false);
            }
        }
        // burn_1m = (50/600)/0.01 ≈ 8.3 < 14.4 and burn_5m ≈ 1.7 < 14.4:
        // the two-window rule holds the page.
        let rep = &m.check_at(604, &r)[0];
        assert!(!rep.breached, "{rep:?}");
    }

    #[test]
    fn breach_recovers_and_emits_transition_events() {
        let m = latency_only(0.99);
        let r = MetricsRegistry::new();
        let journal_before = crate::global_journal().emitted();
        let breaches_before = crate::global().counter_value("slo.breaches");
        // Outage from a cold start: everything bad in every window.
        for sec in 0..60u64 {
            m.record_at(sec, "ep", 500_000_000, false);
        }
        let rep = &m.check_at(59, &r)[0];
        assert!(rep.breached && rep.changed, "{rep:?}");
        assert_eq!(crate::global().counter_value("slo.breaches"), breaches_before + 1);
        // An hour later the windows have drained; the breach resolves.
        let rep2 = &m.check_at(7200, &r)[0];
        assert!(!rep2.breached && rep2.changed, "{rep2:?}");
        // Resolving must not count as a new breach.
        assert_eq!(crate::global().counter_value("slo.breaches"), breaches_before + 1);
        let tail = crate::global_journal().tail(4096);
        let ours: Vec<_> = tail
            .iter()
            .skip_while(|e| e.seq <= journal_before)
            .filter(|e| e.stage == "slo.burn")
            .collect();
        assert!(ours.len() >= 2, "expected breach + resolve events");
        let states: Vec<&str> = ours
            .iter()
            .filter_map(|e| {
                e.fields.iter().find(|(k, _)| k == "state").map(|(_, v)| v.as_str())
            })
            .collect();
        assert!(states.contains(&"breached") && states.contains(&"resolved"), "{states:?}");
    }

    #[test]
    fn hour_long_slow_burn_pages_where_fast_rule_stays_quiet() {
        let m = latency_only(0.99);
        let r = MetricsRegistry::new();
        // Sustained 8% bad for an hour: burn 8 everywhere — under the
        // fast threshold, over the slow one.
        let mut rng = crate::Rng::seed_from_u64(7);
        for sec in 0..3600u64 {
            for _ in 0..5 {
                let bad = rng.gen_bool(0.08);
                m.record_at(sec, "ep", if bad { 200_000_000 } else { 1_000_000 }, false);
            }
        }
        let rep = &m.check_at(3599, &r)[0];
        assert!(rep.burn_1h > 6.0 && rep.burn_1h < 14.4, "{rep:?}");
        assert!(rep.breached, "slow-burn rule must page: {rep:?}");
    }

    #[test]
    fn default_config_covers_answer_and_sparql_endpoints() {
        let m = SloMonitor::default();
        let r = MetricsRegistry::new();
        m.record_at(3, "answer", 1_000_000, false);
        m.record_at(3, "sparql", 1_000_000, false);
        let reports = m.check_at(3, &r);
        assert_eq!(reports.len(), 3);
        for rep in &reports {
            assert!(!rep.breached, "{rep:?}");
        }
        for g in [
            "slo.answer_latency.burn_1m",
            "slo.answer_errors.burn_5m",
            "slo.sparql_latency.burn_1h",
            "slo.answer_latency.breached",
        ] {
            // Registered (value may legitimately be 0).
            assert!(r.snapshot().gauges.iter().any(|(n, _)| n == g), "missing gauge {g}");
        }
        let json = reports[0].to_json().to_string();
        assert!(json.contains("\"objective\":\"answer_latency\""), "{json}");
    }

    #[test]
    fn burn_report_json_rounds_to_milli() {
        let rep = BurnReport {
            objective: "x".into(),
            endpoint: "ep".into(),
            target: 0.99,
            burn_1m: 1.23456,
            burn_5m: 0.0,
            burn_1h: 0.0,
            breached: false,
            changed: false,
        };
        assert!(rep.to_json().to_string().contains("\"burn_1m\":1.235"));
    }
}
