//! Bounded, tail-sampled store of recent question traces.
//!
//! A serving process answers orders of magnitude more questions than an
//! operator will ever read traces for, and the traces worth reading are the
//! unusual ones: questions that errored out of the pipeline and questions in
//! the slow tail. The [`TraceStore`] therefore applies **tail sampling** at
//! record time:
//!
//! - **errored** traces are always retained (pinned);
//! - traces whose total latency reaches the running **p99** of everything
//!   seen so far are always retained (pinned) — the threshold comes from an
//!   internal log-scale histogram fed by *every* trace, retained or not, so
//!   it tracks the true distribution;
//! - the fast majority is downsampled with a deterministic, seeded
//!   [`Rng`](crate::Rng) at [`TraceStoreConfig::sample_rate`].
//!
//! Memory is accounted in bytes of the stored compact-JSON rendering and
//! bounded by [`TraceStoreConfig::max_bytes`] as well as the entry-count
//! capacity. Eviction removes the oldest *sampled* entries first and only
//! touches pinned entries when sampled ones are exhausted — so the bound is
//! hard, and pinned traces survive as long as anything can.
//!
//! Every record is assigned a monotonically increasing id whether or not it
//! is retained, so a serving frontend can hand the id out and a later
//! `GET /traces/<id>` distinguishes "sampled away" from "never existed"
//! only by the 404 — ids never lie about ordering.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::json::Json;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::rng::Rng;
use crate::trace::QuestionTrace;

/// Tail-sampling and bounding knobs.
#[derive(Debug, Clone)]
pub struct TraceStoreConfig {
    /// Maximum retained entries.
    pub capacity: usize,
    /// Hard bound on the summed size of stored trace JSON, in bytes.
    pub max_bytes: usize,
    /// Keep-probability for fast, non-errored traces in `[0, 1]`.
    pub sample_rate: f64,
    /// Seed for the deterministic downsampling stream.
    pub seed: u64,
    /// Observations required before the p99 gate activates; below this
    /// every trace counts as tail (cold-start: retain everything).
    pub warmup: u64,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            capacity: 1024,
            max_bytes: 8 * 1024 * 1024,
            sample_rate: 0.05,
            seed: 0x7e1e_7a11,
            warmup: 64,
        }
    }
}

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Pipeline error — always kept.
    Error,
    /// Total latency at or above the running p99 — always kept.
    SlowTail,
    /// Fast majority, kept by the sampling coin.
    Sampled,
}

impl Retention {
    /// Stable lowercase name used in JSON output (`"error"`, `"slow_tail"`,
    /// `"sampled"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Retention::Error => "error",
            Retention::SlowTail => "slow_tail",
            Retention::Sampled => "sampled",
        }
    }
}

/// Outcome of one [`TraceStore::record`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordOutcome {
    /// The id assigned to this trace (monotonic, assigned even when the
    /// trace is sampled away).
    pub id: u64,
    /// `Some` when the trace was stored, with the retention reason.
    pub retained: Option<Retention>,
}

/// One stored trace plus its retention metadata.
#[derive(Debug, Clone)]
struct StoredTrace {
    id: u64,
    question: String,
    stage: String,
    total_nanos: u64,
    retention: Retention,
    /// Compact JSON rendering of the full trace (also the accounted bytes).
    json: String,
}

impl StoredTrace {
    fn bytes(&self) -> usize {
        self.json.len() + self.question.len() + self.stage.len() + 64
    }

    /// `{"id":…,"retention":…,"total_ns":…,"trace":{…}}` — one JSONL line.
    fn to_line(&self) -> String {
        format!(
            "{{\"id\":{},\"retention\":\"{}\",\"total_ns\":{},\"trace\":{}}}",
            self.id,
            self.retention.as_str(),
            self.total_nanos,
            self.json
        )
    }

    fn summary_json(&self) -> Json {
        Json::obj()
            .set("id", self.id)
            .set("question", self.question.as_str())
            .set("stage", self.stage.as_str())
            .set("total_ns", self.total_nanos)
            .set("retention", self.retention.as_str())
    }
}

/// Point-in-time accounting of a [`TraceStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Traces offered to the store.
    pub seen: u64,
    /// Currently held entries.
    pub held: usize,
    /// Currently held bytes (accounted JSON size).
    pub bytes: usize,
    /// Retained because errored.
    pub errors: u64,
    /// Retained because at/over the running p99.
    pub slow_tail: u64,
    /// Retained by the sampling coin.
    pub sampled: u64,
    /// Fast traces the coin dropped.
    pub sampled_out: u64,
    /// Stored entries later evicted by the capacity/byte bound.
    pub evicted: u64,
    /// Of the evicted, how many were pinned (error/slow-tail) — nonzero
    /// only when pinned traces alone exceed the bound.
    pub evicted_pinned: u64,
}

impl TraceStoreStats {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("seen", self.seen)
            .set("held", self.held)
            .set("bytes", self.bytes)
            .set("errors", self.errors)
            .set("slow_tail", self.slow_tail)
            .set("sampled", self.sampled)
            .set("sampled_out", self.sampled_out)
            .set("evicted", self.evicted)
            .set("evicted_pinned", self.evicted_pinned)
    }
}

struct Inner {
    entries: std::collections::VecDeque<StoredTrace>,
    bytes: usize,
    rng: Rng,
    evicted: u64,
    evicted_pinned: u64,
}

/// Bounded tail-sampling trace store. See the module docs for the policy.
pub struct TraceStore {
    config: TraceStoreConfig,
    next_id: AtomicU64,
    seen: AtomicU64,
    errors: AtomicU64,
    slow_tail: AtomicU64,
    sampled: AtomicU64,
    sampled_out: AtomicU64,
    /// Latency distribution of *all* offered traces; its p99 is the
    /// slow-tail gate. Backed by a private registry so nothing leaks into
    /// the process-global metrics.
    latency: Histogram,
    _registry: MetricsRegistry,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore").field("config", &self.config).finish()
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(TraceStoreConfig::default())
    }
}

impl TraceStore {
    pub fn new(config: TraceStoreConfig) -> Self {
        let registry = MetricsRegistry::new();
        let latency = registry.histogram("trace_store.total_ns");
        TraceStore {
            next_id: AtomicU64::new(1),
            seen: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            slow_tail: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            latency,
            _registry: registry,
            inner: Mutex::new(Inner {
                entries: std::collections::VecDeque::new(),
                bytes: 0,
                rng: Rng::seed_from_u64(config.seed),
                evicted: 0,
                evicted_pinned: 0,
            }),
            config,
        }
    }

    /// Current slow-tail gate: the p99 of every latency offered so far
    /// (0 during warmup, meaning everything is tail).
    pub fn p99_gate(&self) -> u64 {
        let s = self.latency.summary();
        if s.count < self.config.warmup {
            0
        } else {
            s.p99
        }
    }

    /// Offers one trace. `error` marks a pipeline failure (those are always
    /// retained). Returns the assigned id and whether/why it was stored.
    pub fn record(&self, trace: &QuestionTrace, error: bool) -> RecordOutcome {
        let id = self.next_id.fetch_add(1, Relaxed);
        self.seen.fetch_add(1, Relaxed);
        let total = trace.total_nanos();
        // Gate computed from traffic *before* this trace, then the
        // observation is folded in — a single record can't raise the bar
        // on itself.
        let gate = self.p99_gate();
        self.latency.record(total);

        let retention = if error {
            Retention::Error
        } else if total >= gate {
            Retention::SlowTail
        } else {
            let keep = {
                let mut inner = self.inner.lock().expect("trace store lock");
                inner.rng.gen_bool(self.config.sample_rate)
            };
            if !keep {
                self.sampled_out.fetch_add(1, Relaxed);
                return RecordOutcome { id, retained: None };
            }
            Retention::Sampled
        };
        match retention {
            Retention::Error => self.errors.fetch_add(1, Relaxed),
            Retention::SlowTail => self.slow_tail.fetch_add(1, Relaxed),
            Retention::Sampled => self.sampled.fetch_add(1, Relaxed),
        };

        let stored = StoredTrace {
            id,
            question: trace.question.clone(),
            stage: trace.stage.clone(),
            total_nanos: total,
            retention,
            json: trace.to_json().to_string(),
        };
        self.insert(stored);
        RecordOutcome { id, retained: Some(retention) }
    }

    fn insert(&self, stored: StoredTrace) {
        let new_bytes = stored.bytes();
        let mut inner = self.inner.lock().expect("trace store lock");
        // Evict until the newcomer fits both bounds: oldest sampled entries
        // first, oldest pinned only when no sampled entry remains.
        while !inner.entries.is_empty()
            && (inner.entries.len() >= self.config.capacity
                || inner.bytes + new_bytes > self.config.max_bytes)
        {
            let victim = match inner
                .entries
                .iter()
                .position(|e| e.retention == Retention::Sampled)
            {
                Some(i) => inner.entries.remove(i).expect("indexed entry"),
                None => {
                    inner.evicted_pinned += 1;
                    inner.entries.pop_front().expect("non-empty")
                }
            };
            inner.bytes -= victim.bytes();
            inner.evicted += 1;
        }
        if new_bytes <= self.config.max_bytes {
            inner.bytes += new_bytes;
            inner.entries.push_back(stored);
        } else {
            // A single trace larger than the whole budget is dropped rather
            // than breaking the bound.
            inner.evicted += 1;
            if stored.retention != Retention::Sampled {
                inner.evicted_pinned += 1;
            }
        }
    }

    /// The stored trace with this id, as parsed JSON
    /// (`{"id", "retention", "total_ns", "trace"}`), or `None` when the id
    /// was sampled away, evicted, or never assigned.
    pub fn get(&self, id: u64) -> Option<Json> {
        let inner = self.inner.lock().expect("trace store lock");
        let entry = inner.entries.iter().find(|e| e.id == id)?;
        Some(Json::parse(&entry.to_line()).expect("stored trace is valid JSON"))
    }

    /// Summaries of the `n` slowest retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Json {
        let inner = self.inner.lock().expect("trace store lock");
        let mut all: Vec<&StoredTrace> = inner.entries.iter().collect();
        all.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.id.cmp(&b.id)));
        Json::Arr(all.into_iter().take(n).map(StoredTrace::summary_json).collect())
    }

    /// Every retained trace as JSONL (one `{"id",…,"trace":{…}}` object per
    /// line, insertion order) — the `repro-profile --traces` dump format.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("trace store lock");
        let mut out = String::new();
        for e in &inner.entries {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// Ids of every retained trace, insertion order.
    pub fn ids(&self) -> Vec<u64> {
        self.inner.lock().expect("trace store lock").entries.iter().map(|e| e.id).collect()
    }

    /// Point-in-time accounting.
    pub fn stats(&self) -> TraceStoreStats {
        let inner = self.inner.lock().expect("trace store lock");
        TraceStoreStats {
            seen: self.seen.load(Relaxed),
            held: inner.entries.len(),
            bytes: inner.bytes,
            errors: self.errors.load(Relaxed),
            slow_tail: self.slow_tail.load(Relaxed),
            sampled: self.sampled.load(Relaxed),
            sampled_out: self.sampled_out.load(Relaxed),
            evicted: inner.evicted,
            evicted_pinned: inner.evicted_pinned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(question: &str, stage: &str, nanos: u64) -> QuestionTrace {
        let mut t = QuestionTrace::new(question);
        t.stage = stage.to_string();
        t.add_stage("total", nanos);
        t
    }

    #[test]
    fn errored_traces_are_always_retained() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 0.0,
            warmup: 0,
            ..TraceStoreConfig::default()
        });
        // Warm the latency distribution so the p99 gate is far above 1ns.
        for _ in 0..200 {
            store.record(&trace("fast", "Answered", 1_000_000), false);
        }
        let out = store.record(&trace("boom", "MappingFailed", 1), true);
        assert_eq!(out.retained, Some(Retention::Error));
        let got = store.get(out.id).expect("errored trace retrievable");
        assert_eq!(got.get("retention").and_then(Json::as_str), Some("error"));
        assert_eq!(
            got.get("trace").and_then(|t| t.get("question")).and_then(Json::as_str),
            Some("boom")
        );
    }

    #[test]
    fn slow_tail_is_always_retained_and_fast_majority_sampled() {
        let config = TraceStoreConfig {
            capacity: 4096,
            max_bytes: 64 * 1024 * 1024,
            sample_rate: 0.05,
            seed: 42,
            warmup: 64,
        };
        let store = TraceStore::new(config);
        let mut slow_ids = Vec::new();
        for i in 0..2_000u64 {
            // 1% slow outliers at 100x the fast latency.
            let slow = i % 100 == 99;
            let nanos = if slow { 100_000_000 } else { 1_000_000 + i % 1000 };
            let out = store.record(&trace(&format!("q{i}"), "Answered", nanos), false);
            if slow && i >= 100 {
                slow_ids.push(out.id);
                assert_eq!(out.retained, Some(Retention::SlowTail), "slow trace {i} dropped");
            }
        }
        for id in slow_ids {
            assert!(store.get(id).is_some(), "slow trace {id} evicted");
        }
        let stats = store.stats();
        // The fast majority is heavily downsampled but not eliminated.
        assert!(stats.sampled > 0, "{stats:?}");
        assert!(stats.sampled_out > 1_000, "{stats:?}");
        let rate = stats.sampled as f64 / (stats.sampled + stats.sampled_out) as f64;
        assert!((0.01..0.12).contains(&rate), "sample rate drifted: {rate}");
    }

    #[test]
    fn deterministic_across_instances() {
        let mk = || {
            TraceStore::new(TraceStoreConfig {
                sample_rate: 0.3,
                seed: 7,
                warmup: 0,
                ..TraceStoreConfig::default()
            })
        };
        let (a, b) = (mk(), mk());
        // Push the gate up so most records face the sampling coin.
        for store in [&a, &b] {
            for _ in 0..100 {
                store.record(&trace("warm", "Answered", 1_000_000), false);
            }
        }
        for i in 0..500u64 {
            let t = trace(&format!("q{i}"), "Answered", 1000 + i);
            assert_eq!(a.record(&t, false).retained, b.record(&t, false).retained, "{i}");
        }
        assert_eq!(a.ids(), b.ids());
    }

    #[test]
    fn ten_k_synthetic_load_respects_memory_bound_and_keeps_the_tail() {
        let config = TraceStoreConfig {
            capacity: 256,
            max_bytes: 128 * 1024,
            sample_rate: 0.02,
            seed: 99,
            warmup: 64,
        };
        let store = TraceStore::new(config.clone());
        let mut rng = Rng::seed_from_u64(1);
        let mut pinned_ids = Vec::new();
        for i in 0..10_000u64 {
            let error = rng.gen_bool(0.002);
            let slow = rng.gen_bool(0.005);
            // Fast traffic spans a wide band so the coarse log-bucket p99
            // sits above the fast maximum: only genuine outliers pin.
            let nanos =
                if slow { rng.gen_range(80_000_000u64..120_000_000) } else { rng.gen_range(100_000u64..1_000_000) };
            let out = store.record(&trace(&format!("question number {i}"), "Answered", nanos), error);
            let stats = store.stats();
            assert!(stats.bytes <= config.max_bytes, "byte bound broken at {i}: {stats:?}");
            assert!(stats.held <= config.capacity, "capacity broken at {i}: {stats:?}");
            if i >= 200 && (error || slow) {
                pinned_ids.push((out.id, error));
            }
        }
        let stats = store.stats();
        // Every errored and over-p99 trace survives — the bound was spent
        // entirely on the sampled majority.
        assert_eq!(stats.evicted_pinned, 0, "{stats:?}");
        for (id, _) in &pinned_ids {
            assert!(store.get(*id).is_some(), "pinned trace {id} lost: {stats:?}");
        }
        assert!(stats.errors > 0 && stats.slow_tail > 0, "{stats:?}");
        assert!(stats.evicted > 0, "load never exercised eviction: {stats:?}");
    }

    #[test]
    fn slowest_listing_is_ordered_and_bounded() {
        let store = TraceStore::new(TraceStoreConfig {
            warmup: 0,
            sample_rate: 1.0,
            ..TraceStoreConfig::default()
        });
        for (q, n) in [("a", 10u64), ("b", 30), ("c", 20)] {
            store.record(&trace(q, "Answered", n), false);
        }
        let top = store.slowest(2);
        let arr = top.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("question").and_then(Json::as_str), Some("b"));
        assert_eq!(arr[1].get("question").and_then(Json::as_str), Some("c"));
        assert_eq!(arr[0].get("total_ns").and_then(Json::as_u64), Some(30));
    }

    #[test]
    fn jsonl_round_trips_unicode_questions() {
        let store = TraceStore::new(TraceStoreConfig { warmup: 0, ..TraceStoreConfig::default() });
        let q = "Hangi kitap Orhan Pamuk tarafından yazıldı? — \"Kar\" 📚";
        let out = store.record(&trace(q, "Answered", 5), false);
        assert!(out.retained.is_some());
        let jsonl = store.to_jsonl();
        let line = jsonl.lines().next().expect("one line");
        let parsed = Json::parse(line).expect("line parses");
        assert_eq!(
            parsed.get("trace").and_then(|t| t.get("question")).and_then(Json::as_str),
            Some(q)
        );
        // And the by-id view agrees with the dump.
        assert_eq!(store.get(out.id).unwrap(), parsed);
    }

    #[test]
    fn ids_stay_monotonic_even_when_sampled_away() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 0.0,
            warmup: 0,
            ..TraceStoreConfig::default()
        });
        for _ in 0..100 {
            store.record(&trace("warm", "Answered", 1_000_000), false);
        }
        let a = store.record(&trace("x", "Answered", 1), false);
        let b = store.record(&trace("y", "Answered", 1), false);
        assert_eq!(a.retained, None);
        assert_eq!(b.id, a.id + 1);
        assert!(store.get(a.id).is_none());
    }
}
