//! Cooperative wall-clock sampling profiler.
//!
//! Every instrumented thread maintains a thread-local **tag stack**: the
//! [`span!`](crate::span) macro interns its stage name into a [`TagId`]
//! once per call site and pushes/pops it around the span's lifetime, so the
//! existing pipeline/SPARQL/mapping instrumentation doubles as profiling
//! coverage with no new call sites. A background **sampler thread** walks
//! the registered stacks at a configurable rate (default ~997 Hz — prime,
//! so it cannot phase-lock with millisecond-periodic work), folds each
//! observed tag path into a bounded profile store, and exports the result
//! as collapsed-stack text (flamegraph-compatible: `tag;tag;tag count` per
//! line) or JSON.
//!
//! ## Cost discipline
//!
//! The profiler is **off by default**. A disabled push is one relaxed
//! atomic load and allocates nothing; there is no sampler thread until the
//! first [`Profiler::enable`]. An enabled push is two relaxed stores, one
//! release store and an `Arc` refcount bump (the guard's handle to the
//! owner stack — no allocation after the thread's first span). Sampling
//! cost lives entirely on the sampler thread.
//!
//! ## Memory model
//!
//! Only the owning thread writes its stack; the sampler reads `depth` with
//! `Acquire` (pairing with the owner's `Release` store, which happens
//! *after* the tag slot write) and the slots below it with `Relaxed`. A pop
//! racing the sampler can momentarily expose a stale deeper frame — one
//! sample at ~1 kHz attributed to a span that just ended, which is noise
//! well below the sampling error of the profile itself. Pops restore the
//! depth saved at push time rather than decrementing, so a leaked or
//! double-dropped guard can never corrupt the stack for later spans.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::fx::FxHashMap;
use crate::json::Json;

/// Deepest tag path a stack records; logical depth keeps counting past this
/// (so restores stay correct) but deeper frames are not sampled.
pub const MAX_DEPTH: usize = 64;

/// Distinct tag paths the profile store holds before counting drops.
const MAX_STACKS: usize = 4096;

/// Default sampling rate: prime, just under 1 kHz.
pub const DEFAULT_HZ: u32 = 997;

/// Interned activity tag. `Copy` so the [`span!`](crate::span) macro can
/// cache one per call site next to its histogram handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TagId(pub(crate) u32);

/// One thread's tag stack. Owner-write, sampler-read; see the module docs
/// for the ordering contract.
#[derive(Debug)]
pub struct ThreadStack {
    depth: AtomicUsize,
    tags: [AtomicU32; MAX_DEPTH],
}

impl ThreadStack {
    fn new() -> Self {
        ThreadStack {
            depth: AtomicUsize::new(0),
            tags: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Owner-thread push. Returns the pre-push depth — the value to hand
    /// back to [`restore`](Self::restore).
    fn push(&self, tag: TagId) -> usize {
        let d = self.depth.load(Relaxed);
        if d < MAX_DEPTH {
            self.tags[d].store(tag.0, Relaxed);
        }
        // Release-publish the new depth so a sampler that observes it also
        // observes the tag written above.
        self.depth.store(d + 1, Release);
        d
    }

    /// Owner-thread pop: restores the depth saved at push time (self-healing
    /// under unusual drop orders — never decrements blindly).
    fn restore(&self, saved: usize) {
        self.depth.store(saved, Release);
    }

    /// Sampler-side snapshot into `out`. Returns false for an idle stack.
    fn sample(&self, out: &mut Vec<u32>) -> bool {
        out.clear();
        let d = self.depth.load(Acquire).min(MAX_DEPTH);
        if d == 0 {
            return false;
        }
        for slot in &self.tags[..d] {
            out.push(slot.load(Relaxed));
        }
        true
    }
}

/// RAII pop guard returned by [`Profiler::push`]. Holds its own handle to
/// the owner stack so dropping never touches thread-local storage (safe
/// even during TLS teardown).
#[derive(Debug)]
pub struct StackGuard {
    stack: Arc<ThreadStack>,
    saved: usize,
    tag: TagId,
}

impl Drop for StackGuard {
    fn drop(&mut self) {
        self.stack.restore(self.saved);
        let p = profiler();
        if p.audit.load(Relaxed) {
            p.record_audit(self.tag, false);
        }
    }
}

/// One push/pop observation from the audit log (test/diagnostic aid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// `{:?}` rendering of the owning `ThreadId`.
    pub thread: String,
    pub tag: String,
    /// true for push, false for pop.
    pub push: bool,
}

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: FxHashMap<String, u32>,
}

/// One aggregated tag path in a [`ProfileSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStack {
    /// Outermost-first tag names.
    pub frames: Vec<String>,
    pub count: u64,
}

/// Point-in-time copy of the profile store, resolvable to collapsed-stack
/// text or JSON. Subtract two snapshots with
/// [`delta_since`](Self::delta_since) to isolate one observation window.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Captured tag-stack samples (lifetime total at snapshot time).
    pub samples: u64,
    /// Samples whose path could not be stored (store at capacity).
    pub dropped: u64,
    pub stacks: Vec<ProfileStack>,
}

impl ProfileSnapshot {
    /// The samples accumulated since `earlier` (per-path saturating
    /// difference; paths that gained nothing are omitted).
    pub fn delta_since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let mut stacks: Vec<ProfileStack> = self
            .stacks
            .iter()
            .filter_map(|s| {
                let before = earlier
                    .stacks
                    .iter()
                    .find(|e| e.frames == s.frames)
                    .map_or(0, |e| e.count);
                let count = s.count.saturating_sub(before);
                (count > 0).then(|| ProfileStack { frames: s.frames.clone(), count })
            })
            .collect();
        stacks.sort_by(|a, b| a.frames.cmp(&b.frames));
        ProfileSnapshot {
            samples: self.samples.saturating_sub(earlier.samples),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            stacks,
        }
    }

    /// Collapsed-stack text: one `outer;inner;leaf count` line per path,
    /// sorted by path — the format `flamegraph.pl` and speedscope ingest.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&s.frames.join(";"));
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Total samples in which each tag is the *leaf* (executing) frame,
    /// heaviest first — the flat "where does time go" view.
    pub fn top_self_tags(&self) -> Vec<(String, u64)> {
        let mut totals: FxHashMap<&str, u64> = FxHashMap::default();
        for s in &self.stacks {
            if let Some(leaf) = s.frames.last() {
                *totals.entry(leaf).or_insert(0) += s.count;
            }
        }
        let mut v: Vec<(String, u64)> =
            totals.into_iter().map(|(k, c)| (k.to_string(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("samples", self.samples)
            .set("dropped", self.dropped)
            .set(
                "stacks",
                Json::Arr(
                    self.stacks
                        .iter()
                        .map(|s| {
                            Json::obj()
                                .set("stack", s.frames.join(";").as_str())
                                .set("count", s.count)
                        })
                        .collect(),
                ),
            )
    }
}

/// The process-wide sampling profiler. All state lives behind
/// [`profiler()`]; per-thread stacks register themselves lazily on the
/// first push from each thread.
pub struct Profiler {
    enabled: AtomicBool,
    period_nanos: AtomicU64,
    sampler_started: AtomicBool,
    audit: AtomicBool,
    samples: AtomicU64,
    dropped: AtomicU64,
    interner: Mutex<Interner>,
    threads: Mutex<Vec<Arc<ThreadStack>>>,
    /// Bumped on every thread registration so the sampler can keep a
    /// lock-free cached copy of `threads` between registrations.
    thread_generation: AtomicU64,
    /// tag path → sample count, bounded by [`MAX_STACKS`].
    store: Mutex<FxHashMap<Vec<u32>, u64>>,
    audit_log: Mutex<Vec<AuditEvent>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .field("samples", &self.samples.load(Relaxed))
            .finish()
    }
}

impl Profiler {
    fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(false),
            period_nanos: AtomicU64::new(1_000_000_000 / DEFAULT_HZ as u64),
            sampler_started: AtomicBool::new(false),
            audit: AtomicBool::new(false),
            samples: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            interner: Mutex::new(Interner::default()),
            threads: Mutex::new(Vec::new()),
            thread_generation: AtomicU64::new(0),
            store: Mutex::new(FxHashMap::default()),
            audit_log: Mutex::new(Vec::new()),
        }
    }

    /// Interns a tag name (idempotent). Takes a mutex — call once per call
    /// site and cache the id, as the [`span!`](crate::span) macro does.
    pub fn intern(&self, name: &str) -> TagId {
        let mut i = self.interner.lock().expect("prof interner lock");
        if let Some(&id) = i.index.get(name) {
            return TagId(id);
        }
        let id = i.names.len() as u32;
        i.names.push(name.to_string());
        i.index.insert(name.to_string(), id);
        TagId(id)
    }

    /// The interned name for `tag` (`"?<id>"` if out of range).
    pub fn tag_name(&self, tag: TagId) -> String {
        let i = self.interner.lock().expect("prof interner lock");
        i.names.get(tag.0 as usize).cloned().unwrap_or_else(|| format!("?{}", tag.0))
    }

    /// Starts sampling at `hz` (clamped to `1..=100_000`). Spawns the
    /// sampler daemon thread on first call; later calls just retune the
    /// rate and re-arm the flag.
    pub fn enable(&'static self, hz: u32) {
        let hz = hz.clamp(1, 100_000);
        self.period_nanos.store(1_000_000_000 / hz as u64, Relaxed);
        self.enabled.store(true, Relaxed);
        if !self.sampler_started.swap(true, Relaxed) {
            std::thread::Builder::new()
                .name("relpat-prof-sampler".to_string())
                .spawn(move || self.sampler_loop())
                .expect("spawn profiler sampler thread");
        }
    }

    /// Stops sampling (the sampler thread idles; per-thread stacks keep
    /// tracking pushes from already-open guards, which is harmless).
    pub fn disable(&self) {
        self.enabled.store(false, Relaxed);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Current sampling rate in Hz.
    pub fn rate_hz(&self) -> u32 {
        (1_000_000_000 / self.period_nanos.load(Relaxed).max(1)) as u32
    }

    /// Pushes `tag` on the calling thread's stack. Returns `None` (and does
    /// no work beyond one relaxed load) when the profiler is disabled or
    /// the thread's TLS is tearing down.
    #[inline]
    pub fn push(&'static self, tag: TagId) -> Option<StackGuard> {
        if !self.enabled.load(Relaxed) {
            return None;
        }
        self.push_slow(tag)
    }

    fn push_slow(&'static self, tag: TagId) -> Option<StackGuard> {
        THREAD_STACK
            .try_with(|stack| {
                let saved = stack.push(tag);
                if self.audit.load(Relaxed) {
                    self.record_audit(tag, true);
                }
                StackGuard { stack: Arc::clone(stack), saved, tag }
            })
            .ok()
    }

    /// Lifetime counters: `(samples captured, samples dropped by the store
    /// bound)`. Mirrored to the global `prof.samples` / `prof.dropped`
    /// counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.samples.load(Relaxed), self.dropped.load(Relaxed))
    }

    /// Point-in-time copy of the profile store with tag ids resolved.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let store = self.store.lock().expect("prof store lock");
        let interner = self.interner.lock().expect("prof interner lock");
        let resolve = |id: &u32| {
            interner
                .names
                .get(*id as usize)
                .cloned()
                .unwrap_or_else(|| format!("?{id}"))
        };
        let mut stacks: Vec<ProfileStack> = store
            .iter()
            .map(|(path, &count)| ProfileStack { frames: path.iter().map(resolve).collect(), count })
            .collect();
        drop(store);
        stacks.sort_by(|a, b| a.frames.cmp(&b.frames));
        ProfileSnapshot {
            samples: self.samples.load(Relaxed),
            dropped: self.dropped.load(Relaxed),
            stacks,
        }
    }

    /// Clears the profile store and counters (not the interner or thread
    /// registry). Test/bench aid; live observation windows should prefer
    /// snapshot deltas.
    pub fn reset_store(&self) {
        self.store.lock().expect("prof store lock").clear();
        self.samples.store(0, Relaxed);
        self.dropped.store(0, Relaxed);
    }

    /// Turns the push/pop audit log on or off (diagnostics — records every
    /// push and pop with its thread id while the profiler is enabled).
    pub fn set_audit(&self, on: bool) {
        if on {
            self.audit_log.lock().expect("prof audit lock").clear();
        }
        self.audit.store(on, Relaxed);
    }

    /// Drains the audit log.
    pub fn take_audit(&self) -> Vec<AuditEvent> {
        std::mem::take(&mut *self.audit_log.lock().expect("prof audit lock"))
    }

    fn record_audit(&self, tag: TagId, push: bool) {
        let event = AuditEvent {
            thread: format!("{:?}", std::thread::current().id()),
            tag: self.tag_name(tag),
            push,
        };
        self.audit_log.lock().expect("prof audit lock").push(event);
    }

    fn register_thread(&self) -> Arc<ThreadStack> {
        let stack = Arc::new(ThreadStack::new());
        self.threads.lock().expect("prof threads lock").push(Arc::clone(&stack));
        self.thread_generation.fetch_add(1, Relaxed);
        stack
    }

    /// Prunes exited threads from the registry and returns a fresh copy.
    /// `cache` must be cleared by the caller first — a cached `Arc` keeps
    /// a dead thread's strong count above 1 and would defeat the prune.
    fn refresh_threads(&self, cache: &mut Vec<Arc<ThreadStack>>) {
        debug_assert!(cache.is_empty());
        let mut reg = self.threads.lock().expect("prof threads lock");
        // A stack only the registry still references belongs to an exited
        // thread — prune it.
        reg.retain(|s| Arc::strong_count(s) > 1);
        cache.extend(reg.iter().cloned());
    }

    fn sampler_loop(&'static self) {
        let mut buf: Vec<u32> = Vec::with_capacity(MAX_DEPTH);
        // The registry mutex is on every instrumented thread's first-push
        // path, and cloning it allocates; on small machines that per-tick
        // cost is stolen straight from the workload. The sampler keeps a
        // cached copy and only refreshes when a thread registered (the
        // generation moved) or on the periodic prune tick.
        let mut cache: Vec<Arc<ThreadStack>> = Vec::new();
        let mut seen_generation = u64::MAX;
        let mut tick = 0u64;
        const PRUNE_EVERY: u64 = 512;
        loop {
            if !self.enabled.load(Relaxed) {
                // Drop the cached stacks while idle so exited threads
                // don't outlive their profile.
                if !cache.is_empty() {
                    cache.clear();
                    seen_generation = u64::MAX;
                }
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            std::thread::sleep(Duration::from_nanos(self.period_nanos.load(Relaxed)));
            tick += 1;
            let generation = self.thread_generation.load(Relaxed);
            if generation != seen_generation || tick.is_multiple_of(PRUNE_EVERY) {
                cache.clear();
                self.refresh_threads(&mut cache);
                seen_generation = generation;
            }
            self.sample_threads(&cache, &mut buf);
        }
    }

    /// One sampling tick over a fresh view of the registry: walk every
    /// live stack, fold non-idle tag paths into the store. Exposed to the
    /// crate for deterministic tests.
    #[cfg(test)]
    pub(crate) fn sample_once(&self, buf: &mut Vec<u32>) {
        let mut threads = Vec::new();
        self.refresh_threads(&mut threads);
        self.sample_threads(&threads, buf);
    }

    fn sample_threads(&self, threads: &[Arc<ThreadStack>], buf: &mut Vec<u32>) {
        for stack in threads {
            if !stack.sample(buf) {
                continue;
            }
            self.samples.fetch_add(1, Relaxed);
            crate::counter!("prof.samples");
            let mut store = self.store.lock().expect("prof store lock");
            if let Some(count) = store.get_mut(buf.as_slice()) {
                *count += 1;
            } else if store.len() < MAX_STACKS {
                store.insert(buf.clone(), 1);
            } else {
                self.dropped.fetch_add(1, Relaxed);
                crate::counter!("prof.dropped");
            }
        }
    }
}

thread_local! {
    static THREAD_STACK: Arc<ThreadStack> = profiler().register_thread();
}

/// The process-wide profiler (off until [`Profiler::enable`]).
pub fn profiler() -> &'static Profiler {
    static GLOBAL: OnceLock<Profiler> = OnceLock::new();
    GLOBAL.get_or_init(Profiler::new)
}

/// Interns `name` on the global profiler.
pub fn intern(name: &str) -> TagId {
    profiler().intern(name)
}

/// Pushes `tag` on the global profiler (no-op `None` when disabled).
#[inline]
pub fn push(tag: TagId) -> Option<StackGuard> {
    profiler().push(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let p = profiler();
        let a = p.intern("prof.test.intern.a");
        let b = p.intern("prof.test.intern.b");
        assert_ne!(a, b);
        assert_eq!(a, p.intern("prof.test.intern.a"));
        assert_eq!(p.tag_name(a), "prof.test.intern.a");
        assert_eq!(p.tag_name(TagId(u32::MAX)), format!("?{}", u32::MAX));
    }

    #[test]
    fn stack_push_restore_and_sample() {
        let s = ThreadStack::new();
        let mut buf = Vec::new();
        assert!(!s.sample(&mut buf), "idle stack yields no sample");
        let d0 = s.push(TagId(7));
        let d1 = s.push(TagId(9));
        assert_eq!((d0, d1), (0, 1));
        assert!(s.sample(&mut buf));
        assert_eq!(buf, vec![7, 9]);
        s.restore(d1);
        assert!(s.sample(&mut buf));
        assert_eq!(buf, vec![7]);
        s.restore(d0);
        assert!(!s.sample(&mut buf));
    }

    #[test]
    fn stack_depth_overflow_truncates_but_restores_exactly() {
        let s = ThreadStack::new();
        let mut saves = Vec::new();
        for i in 0..(MAX_DEPTH + 10) {
            saves.push(s.push(TagId(i as u32)));
        }
        let mut buf = Vec::new();
        assert!(s.sample(&mut buf));
        assert_eq!(buf.len(), MAX_DEPTH, "sampled depth is clamped");
        assert_eq!(buf[MAX_DEPTH - 1], (MAX_DEPTH - 1) as u32);
        // Unwinding the deep frames restores the shallow view intact.
        while saves.len() > 2 {
            s.restore(saves.pop().unwrap());
        }
        assert!(s.sample(&mut buf));
        assert_eq!(buf, vec![0, 1]);
    }

    #[test]
    fn restore_is_self_healing_out_of_order() {
        // A guard leaked across a sibling's pop: restoring the *outer*
        // saved depth discards the leaked deeper frames too.
        let s = ThreadStack::new();
        let outer = s.push(TagId(1));
        let _leaked = s.push(TagId(2));
        s.push(TagId(3));
        s.restore(outer);
        let mut buf = Vec::new();
        assert!(!s.sample(&mut buf), "outer restore clears everything above");
        // And the stack remains usable.
        s.push(TagId(4));
        assert!(s.sample(&mut buf));
        assert_eq!(buf, vec![4]);
    }

    #[test]
    fn snapshot_delta_and_collapsed_output() {
        let before = ProfileSnapshot {
            samples: 10,
            dropped: 0,
            stacks: vec![ProfileStack { frames: vec!["a".into(), "b".into()], count: 10 }],
        };
        let after = ProfileSnapshot {
            samples: 25,
            dropped: 1,
            stacks: vec![
                ProfileStack { frames: vec!["a".into(), "b".into()], count: 18 },
                ProfileStack { frames: vec!["a".into()], count: 7 },
            ],
        };
        let delta = after.delta_since(&before);
        assert_eq!(delta.samples, 15);
        assert_eq!(delta.dropped, 1);
        assert_eq!(delta.stacks.len(), 2);
        let collapsed = delta.collapsed();
        assert!(collapsed.contains("a 7\n"), "{collapsed}");
        assert!(collapsed.contains("a;b 8\n"), "{collapsed}");
        let top = delta.top_self_tags();
        assert_eq!(top[0], ("b".to_string(), 8));
        assert_eq!(top[1], ("a".to_string(), 7));
        let json = delta.to_json().to_string();
        assert!(json.contains("\"stack\":\"a;b\""), "{json}");
        assert!(json.contains("\"samples\":15"), "{json}");
    }

    #[test]
    fn sample_once_folds_live_stacks_and_bounds_the_store() {
        // Drive sample_once directly against a hand-registered stack — no
        // sampler thread, fully deterministic.
        let p = profiler();
        let stack = p.register_thread();
        let tag = p.intern("prof.test.fold");
        let saved = stack.push(tag);
        let (samples_before, _) = p.counters();
        let snap_before = p.snapshot();
        let mut buf = Vec::new();
        for _ in 0..5 {
            p.sample_once(&mut buf);
        }
        stack.restore(saved);
        let delta = p.snapshot().delta_since(&snap_before);
        let ours: u64 = delta
            .stacks
            .iter()
            .filter(|s| s.frames.last().map(String::as_str) == Some("prof.test.fold"))
            .map(|s| s.count)
            .sum();
        assert_eq!(ours, 5, "five ticks over a pinned stack: {delta:?}");
        assert!(p.counters().0 >= samples_before + 5);
        // After the owner "exits" (drops its handle), the next tick prunes.
        drop(stack);
        p.sample_once(&mut buf);
        let delta2 = p.snapshot().delta_since(&snap_before);
        let ours2: u64 = delta2
            .stacks
            .iter()
            .filter(|s| s.frames.last().map(String::as_str) == Some("prof.test.fold"))
            .map(|s| s.count)
            .sum();
        assert_eq!(ours2, 5, "pruned stack must not accumulate further");
    }

    #[test]
    fn disabled_push_returns_none() {
        let p = profiler();
        assert!(!p.is_enabled(), "profiler must start disabled");
        assert!(push(p.intern("prof.test.off")).is_none());
    }
}
