//! # relpat-obs — observability substrate
//!
//! The measurement backbone every perf-oriented PR reports against, plus
//! the small runtime utilities the workspace previously pulled from
//! crates.io. The crate has **zero dependencies** (std only) so the whole
//! workspace builds in offline/sandboxed environments.
//!
//! ## Observability
//!
//! - [`MetricsRegistry`] — thread-safe named [`Counter`]s, point-in-time
//!   [`Gauge`]s (store/cache health levels) and log-scale latency
//!   [`Histogram`]s (p50/p90/p99 extraction), built on relaxed atomics. A
//!   disabled registry short-circuits every record call to a no-op without
//!   allocating (gauges stay live — health must not lie).
//! - [`Span`] / [`span!`] — RAII stage timers recording monotonic-clock
//!   durations into a histogram on drop.
//! - [`QuestionTrace`] — the per-question pipeline trace: extracted triple
//!   patterns, candidate counts per slot, query counts, pattern-store
//!   hit/miss counts and per-stage durations, serializable to JSON.
//! - [`TraceStore`] — bounded ring of recent traces with tail sampling:
//!   errored and over-p99 traces always retained, the fast majority
//!   deterministically downsampled, memory accounted and bounded.
//! - [`EventJournal`] / [`jevent!`] — lock-cheap structured event log
//!   (monotonic timestamps, level, stage, key-value fields) with a ring
//!   buffer for live tailing and an optional JSONL file backend for
//!   crash-forensics flight recording.
//! - [`metrics::render_prometheus`] — Prometheus text exposition v0.0.4
//!   over a [`MetricsSnapshot`] (counters, native histograms with
//!   cumulative `le` buckets, min/max gauges), shared by the live
//!   `GET /metrics` endpoint and offline profile dumps.
//! - [`prof`] — cooperative wall-clock sampling profiler: `span!` guards
//!   push interned activity tags on per-thread stacks, a background
//!   sampler (off by default) aggregates them into a bounded profile
//!   store, exported as collapsed-stack text or JSON.
//! - [`slo`] — rolling-window (1m/5m/1h) latency/error objectives with
//!   multi-window burn rates; breaches emit `slo.burn` journal events and
//!   per-objective gauges.
//!
//! ## Support utilities
//!
//! - [`json`] — a minimal JSON value model, writer and parser (replaces
//!   `serde`/`serde_json`).
//! - [`fx`] — an FxHash-style fast hasher and map/set aliases (replaces
//!   `rustc-hash`).
//! - [`rng`] — a small deterministic PRNG (replaces `rand` for synthetic
//!   data generation).
//!
//! ## Overhead
//!
//! Enabled-path cost per record is one relaxed atomic load (the enabled
//! flag) plus 1–3 relaxed `fetch_add`s; handle lookup is done once per call
//! site (cached in a `OnceLock` by the [`counter!`]/[`span!`] macros).
//! Disabled-path cost is the single relaxed load. Nothing allocates after
//! handle creation, so instrumentation is cheap enough to leave on.

pub mod fx;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod plan;
pub mod prof;
pub mod rng;
pub mod slo;
pub mod span;
pub mod trace;
pub mod trace_store;

pub use journal::{global_journal, Event, EventJournal, Level};
pub use json::Json;
pub use metrics::{
    global, render_prometheus, Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry,
    MetricsSnapshot,
};
pub use plan::{JoinAlgo, PlanStep, PlanTrace, QueryPlan};
pub use prof::{profiler, ProfileSnapshot, Profiler, TagId};
pub use rng::Rng;
pub use slo::{BurnReport, SloConfig, SloMonitor, SloObjective};
pub use span::Span;
pub use trace::{PatternLookupStats, QuestionTrace, StageTiming, TraceAnswer, TraceCandidate, TraceTriple};
pub use trace_store::{
    RecordOutcome, Retention, TraceStore, TraceStoreConfig, TraceStoreStats,
};
