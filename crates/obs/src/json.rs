//! Minimal JSON value model, writer and parser, replacing the
//! `serde`/`serde_json` dependency so the workspace builds offline.
//!
//! Reports and traces build [`Json`] values explicitly; tests parse them
//! back with [`Json::parse`]. Object members keep insertion order so report
//! output is stable and diffable. The parser accepts exactly RFC-8259 JSON
//! (no comments, no trailing commas).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Members in insertion order; lookup is linear (objects here are small).
    Obj(Vec<(String, Json)>),
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object under construction.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a member to an object (panics on non-objects — construction bug).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Member of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array, if present.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            flat => flat.write(out),
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Compact single-line rendering (`to_string()` comes from this impl).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a number the way serde_json does: integers without a fraction,
/// everything else via the shortest roundtrip float rendering.
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the least-bad
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates fold to the replacement character;
                            // traces never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::obj()
            .set("name", "trace")
            .set("count", 3u64)
            .set("ratio", Json::Num(0.5))
            .set("ok", true)
            .set("none", Json::Null)
            .set("items", Json::Arr(vec![Json::from(1u64), Json::from("two")]));
        for rendered in [doc.to_string(), doc.to_pretty()] {
            let parsed = Json::parse(&rendered).unwrap();
            assert_eq!(parsed, doc, "{rendered}");
        }
    }

    #[test]
    fn escapes_and_unescapes() {
        let doc = Json::Str("line\none \"two\" \\ tab\t\u{1}".into());
        let rendered = doc.to_string();
        assert!(rendered.contains("\\n"));
        assert!(rendered.contains("\\u0001"));
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(55.0).to_string(), "55");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
    }

    #[test]
    fn accessors_navigate() {
        let doc = Json::parse(r#"{"counts":{"total":55},"results":[{"id":1}]}"#).unwrap();
        assert_eq!(doc.get("counts").unwrap().get("total").unwrap().as_u64(), Some(55));
        assert_eq!(
            doc.get("results").unwrap().idx(0).unwrap().get("id").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(doc.get("results").unwrap().as_array().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_numbers_with_exponents() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5E-1").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn nonfinite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
