//! Per-question pipeline traces.
//!
//! A [`QuestionTrace`] is the structured record of everything the QA
//! pipeline did for one question: the extracted triple patterns (§2.1 of
//! the paper), the candidate mappings per slot (§2.2), how many SPARQL
//! queries were built / executed / survived (§2.3), pattern-store hit/miss
//! counts, and per-stage wall-clock durations. It serializes to JSON via
//! [`to_json`](QuestionTrace::to_json) and renders the human-readable
//! walkthrough via [`render`](QuestionTrace::render) — the pipeline's
//! `explain()` is defined as exactly that rendering, so the explanation and
//! the trace cannot drift apart.

use std::fmt::Write as _;

use crate::json::Json;
use crate::plan::QueryPlan;

/// One timed pipeline stage (monotonic-clock duration).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    pub name: String,
    pub nanos: u64,
}

/// Pattern-store lookup outcomes observed while mapping one question.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternLookupStats {
    pub phrase_hits: u64,
    pub phrase_misses: u64,
    pub word_hits: u64,
    pub word_misses: u64,
}

impl PatternLookupStats {
    pub fn total(&self) -> u64 {
        self.phrase_hits + self.phrase_misses + self.word_hits + self.word_misses
    }

    /// Fieldwise `self - earlier` (saturating) — attributes a shared
    /// store's cumulative counters to one pipeline stage by sampling before
    /// and after it.
    pub fn delta_since(&self, earlier: &PatternLookupStats) -> PatternLookupStats {
        PatternLookupStats {
            phrase_hits: self.phrase_hits.saturating_sub(earlier.phrase_hits),
            phrase_misses: self.phrase_misses.saturating_sub(earlier.phrase_misses),
            word_hits: self.word_hits.saturating_sub(earlier.word_hits),
            word_misses: self.word_misses.saturating_sub(earlier.word_misses),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("phrase_hits", self.phrase_hits)
            .set("phrase_misses", self.phrase_misses)
            .set("word_hits", self.word_hits)
            .set("word_misses", self.word_misses)
    }
}

/// One candidate mapping for a relation slot (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCandidate {
    /// Property local name (rendered as `dbont:<property>`).
    pub property: String,
    pub weight: f64,
    /// Which evidence source proposed it (pattern store, WordNet, ...).
    pub source: String,
}

/// One mapped triple pattern. `head` is the rendered pattern head — either
/// a complete line (`?x rdf:type dbont:Book`) when there are no candidates,
/// or the slot rendering (`[?x] —?— [Orhan Pamuk <iri>]`) followed by the
/// candidate list.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTriple {
    pub head: String,
    pub candidates: Vec<TraceCandidate>,
}

/// The selected answer, pre-rendered to text.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnswer {
    pub texts: Vec<String>,
    pub score: f64,
    pub sparql: String,
}

/// Structured record of one pipeline run over one question.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuestionTrace {
    pub question: String,
    /// Terminal stage name (`Answered`, `MappingFailed`, ...).
    pub stage: String,
    /// Question kind from §2.1 analysis (`None` when extraction failed).
    pub kind: Option<String>,
    /// Expected answer type from §2.1 analysis.
    pub expected: Option<String>,
    /// The §2.1 bucket rendering of the extracted triple patterns.
    pub extraction: Option<String>,
    /// Mapped triples with per-slot candidates (§2.2); empty when mapping
    /// failed or was never reached.
    pub triples: Vec<TraceTriple>,
    /// Candidate queries built by the query planner (§2.3).
    pub queries_built: u64,
    /// Planner strategy that built the queries (`beam`, `cartesian`);
    /// `None` when planning was never reached.
    pub planner: Option<String>,
    /// Assignment states the planner branched on (beam: frontier pops;
    /// cartesian: combinations materialized by the fold).
    pub plan_expanded: u64,
    /// Assignment states discarded without exploration (beam: frontier
    /// leftover once the top-k was proved; cartesian: final truncation).
    pub plan_pruned: u64,
    /// Complete ranked assignments emitted as queries (pre-dedup).
    pub plan_emitted: u64,
    /// Queries actually sent to the SPARQL engine.
    pub queries_executed: u64,
    /// Queries whose solutions survived execution + type checking.
    pub queries_survived: u64,
    /// Executed queries that failed to parse or evaluate (a batch where
    /// every candidate fails is distinguishable from one that merely found
    /// nothing).
    pub queries_failed: u64,
    /// Top ranked queries as `(score, sparql)`.
    pub top_queries: Vec<(f64, String)>,
    /// Pattern-store hit/miss counts observed during mapping.
    pub pattern_lookups: PatternLookupStats,
    /// Per-stage durations in pipeline order.
    pub stages: Vec<StageTiming>,
    pub answer: Option<TraceAnswer>,
    /// EXPLAIN ANALYZE plan traces of the queries executed for this
    /// question, in execution order. Populated only when the caller asked
    /// for an explained answer; empty otherwise (and omitted from the
    /// rendering when empty, so plain traces are unchanged).
    pub plans: Vec<QueryPlan>,
}

impl QuestionTrace {
    pub fn new(question: &str) -> Self {
        QuestionTrace { question: question.to_string(), ..Default::default() }
    }

    /// Appends a timed stage.
    pub fn add_stage(&mut self, name: &str, nanos: u64) {
        self.stages.push(StageTiming { name: name.to_string(), nanos });
    }

    /// Duration of a named stage, if it ran.
    pub fn stage_nanos(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.nanos)
    }

    /// Total traced wall-clock time across all stages.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Serializes the full trace as a JSON object.
    pub fn to_json(&self) -> Json {
        let opt = |v: &Option<String>| match v {
            Some(s) => Json::from(s.as_str()),
            None => Json::Null,
        };
        let triples = self
            .triples
            .iter()
            .map(|t| {
                Json::obj().set("head", t.head.as_str()).set(
                    "candidates",
                    Json::Arr(
                        t.candidates
                            .iter()
                            .map(|c| {
                                Json::obj()
                                    .set("property", c.property.as_str())
                                    .set("weight", Json::Num(c.weight))
                                    .set("source", c.source.as_str())
                            })
                            .collect(),
                    ),
                )
            })
            .collect();
        let top_queries = self
            .top_queries
            .iter()
            .map(|(score, sparql)| {
                Json::obj().set("score", Json::Num(*score)).set("sparql", sparql.as_str())
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|s| Json::obj().set("name", s.name.as_str()).set("nanos", s.nanos))
            .collect();
        let answer = match &self.answer {
            Some(a) => Json::obj()
                .set("texts", Json::Arr(a.texts.iter().map(|t| Json::from(t.as_str())).collect()))
                .set("score", Json::Num(a.score))
                .set("sparql", a.sparql.as_str()),
            None => Json::Null,
        };
        let mut obj = Json::obj()
            .set("question", self.question.as_str())
            .set("stage", self.stage.as_str())
            .set("kind", opt(&self.kind))
            .set("expected", opt(&self.expected))
            .set("extraction", opt(&self.extraction))
            .set("triples", Json::Arr(triples))
            .set("queries_built", self.queries_built)
            .set("planner", opt(&self.planner))
            .set("plan_expanded", self.plan_expanded)
            .set("plan_pruned", self.plan_pruned)
            .set("plan_emitted", self.plan_emitted)
            .set("queries_executed", self.queries_executed)
            .set("queries_survived", self.queries_survived)
            .set("queries_failed", self.queries_failed)
            .set("top_queries", Json::Arr(top_queries))
            .set("pattern_lookups", self.pattern_lookups.to_json())
            .set("stages", Json::Arr(stages))
            .set("answer", answer);
        if !self.plans.is_empty() {
            obj = obj
                .set("plans", Json::Arr(self.plans.iter().map(QueryPlan::to_json).collect()));
        }
        obj
    }

    /// Renders the human-readable §2 walkthrough — the pipeline's
    /// `Response::explain` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Question: {}", self.question);
        match (&self.kind, &self.extraction) {
            (Some(kind), Some(buckets)) => {
                let _ = writeln!(out, "\n§2.1 Triple pattern extraction ({kind}):");
                out.push_str(buckets);
                if let Some(expected) = &self.expected {
                    let _ = writeln!(out, "Expected answer type: {expected}");
                }
            }
            _ => {
                let _ = writeln!(
                    out,
                    "\n§2.1 Triple pattern extraction: FAILED — question structure not covered"
                );
            }
        }
        if !self.triples.is_empty() {
            let _ = writeln!(out, "\n§2.2 Entity & property mapping:");
            for t in &self.triples {
                if t.candidates.is_empty() {
                    let _ = writeln!(out, "  {}", t.head);
                } else {
                    let _ = writeln!(out, "  {}, candidates:", t.head);
                    for c in t.candidates.iter().take(6) {
                        let _ = writeln!(
                            out,
                            "     dbont:{:<18} w={:<7.1} {}",
                            c.property, c.weight, c.source
                        );
                    }
                }
            }
        } else if self.kind.is_some() {
            let _ = writeln!(out, "\n§2.2 Entity & property mapping: FAILED");
        }
        if self.queries_built > 0 {
            let _ = writeln!(out, "\n§2.3 Candidate queries ({}):", self.queries_built);
            if let Some(planner) = &self.planner {
                let _ = writeln!(
                    out,
                    "  planner {planner}: {} expanded, {} pruned, {} emitted",
                    self.plan_expanded, self.plan_pruned, self.plan_emitted
                );
            }
            for (score, sparql) in self.top_queries.iter().take(5) {
                let _ = writeln!(out, "  [{score:>8.1}] {sparql}");
            }
        }
        match &self.answer {
            Some(a) => {
                let _ = writeln!(out, "\nAnswer (score {:.1}):", a.score);
                for text in &a.texts {
                    let _ = writeln!(out, "  • {text}");
                }
                let _ = writeln!(out, "  via {}", a.sparql);
            }
            None => {
                let _ = writeln!(out, "\nNo answer — stage {}", self.stage);
            }
        }
        if !self.plans.is_empty() {
            let _ = writeln!(out, "\nQuery plans (EXPLAIN ANALYZE):");
            for p in &self.plans {
                let _ = writeln!(out, "  {}", p.sparql);
                for line in p.trace.render().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "\nTimings (queries: {} built, {} executed, {} survived, {} failed; pattern lookups: {}):",
                self.queries_built,
                self.queries_executed,
                self.queries_survived,
                self.queries_failed,
                self.pattern_lookups.total()
            );
            for s in &self.stages {
                let _ = writeln!(out, "  {:<12} {:>9.1} µs", s.name, s.nanos as f64 / 1_000.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QuestionTrace {
        let mut t = QuestionTrace::new("Which book is written by Orhan Pamuk?");
        t.stage = "Answered".to_string();
        t.kind = Some("Which".to_string());
        t.expected = Some("Resource".to_string());
        t.extraction = Some("  ?x rdf:type Book\n  ?x writtenBy Orhan_Pamuk\n".to_string());
        t.triples = vec![
            TraceTriple { head: "?x rdf:type dbont:Book".to_string(), candidates: Vec::new() },
            TraceTriple {
                head: "[?x] —?— [Orhan Pamuk <http://ex.org/Orhan_Pamuk>]".to_string(),
                candidates: vec![
                    TraceCandidate {
                        property: "author".to_string(),
                        weight: 120.0,
                        source: "Pattern".to_string(),
                    },
                    TraceCandidate {
                        property: "creator".to_string(),
                        weight: 3.5,
                        source: "WordNet".to_string(),
                    },
                ],
            },
        ];
        t.queries_built = 4;
        t.planner = Some("beam".to_string());
        t.plan_expanded = 3;
        t.plan_pruned = 2;
        t.plan_emitted = 4;
        t.queries_executed = 4;
        t.queries_survived = 1;
        t.queries_failed = 1;
        t.top_queries =
            vec![(120.0, "SELECT ?x WHERE { ?x <author> <Orhan_Pamuk> . }".to_string())];
        t.pattern_lookups = PatternLookupStats { phrase_hits: 1, word_hits: 2, ..Default::default() };
        t.add_stage("extract", 41_000);
        t.add_stage("map", 380_000);
        t.add_stage("answer", 912_000);
        t.answer = Some(TraceAnswer {
            texts: vec!["Snow".to_string()],
            score: 120.0,
            sparql: "SELECT ?x WHERE { ?x <author> <Orhan_Pamuk> . }".to_string(),
        });
        t
    }

    #[test]
    fn render_walks_every_stage() {
        let text = sample().render();
        for marker in [
            "§2.1",
            "rdf:type",
            "§2.2",
            "dbont:author",
            "§2.3",
            "planner beam: 3 expanded, 2 pruned, 4 emitted",
            "Answer",
            "Snow",
            "Timings",
        ] {
            assert!(text.contains(marker), "missing {marker:?} in:\n{text}");
        }
    }

    #[test]
    fn render_reports_failures() {
        let mut t = QuestionTrace::new("What is the highest mountain?");
        t.stage = "ExtractionFailed".to_string();
        let text = t.render();
        assert!(text.contains("FAILED"));
        assert!(text.contains("No answer — stage ExtractionFailed"));

        let mut t = QuestionTrace::new("Is Frank Herbert still alive?");
        t.stage = "MappingFailed".to_string();
        t.kind = Some("Polar".to_string());
        t.extraction = Some("  Frank_Herbert alive ?\n".to_string());
        let text = t.render();
        assert!(text.contains("§2.2 Entity & property mapping: FAILED"));
        assert!(text.contains("MappingFailed"));
    }

    #[test]
    fn json_round_trips_structure() {
        let t = sample();
        let json = t.to_json();
        let parsed = Json::parse(&json.to_pretty()).expect("valid JSON");
        assert_eq!(parsed.get("question").and_then(Json::as_str), Some(t.question.as_str()));
        assert_eq!(parsed.get("stage").and_then(Json::as_str), Some("Answered"));
        assert_eq!(parsed.get("queries_built").and_then(Json::as_u64), Some(4));
        assert_eq!(parsed.get("planner").and_then(Json::as_str), Some("beam"));
        assert_eq!(parsed.get("plan_expanded").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("plan_pruned").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("plan_emitted").and_then(Json::as_u64), Some(4));
        assert_eq!(parsed.get("queries_survived").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("queries_failed").and_then(Json::as_u64), Some(1));
        let triples = parsed.get("triples").and_then(Json::as_array).unwrap();
        assert_eq!(triples.len(), 2);
        let cands = triples[1].get("candidates").and_then(Json::as_array).unwrap();
        assert_eq!(cands[0].get("property").and_then(Json::as_str), Some("author"));
        let lookups = parsed.get("pattern_lookups").unwrap();
        assert_eq!(lookups.get("phrase_hits").and_then(Json::as_u64), Some(1));
        let stages = parsed.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[1].get("name").and_then(Json::as_str), Some("map"));
        let answer = parsed.get("answer").unwrap();
        assert_eq!(answer.get("texts").and_then(Json::as_array).unwrap().len(), 1);
    }

    #[test]
    fn stage_accessors() {
        let t = sample();
        assert_eq!(t.stage_nanos("map"), Some(380_000));
        assert_eq!(t.stage_nanos("missing"), None);
        assert_eq!(t.total_nanos(), 41_000 + 380_000 + 912_000);
        assert_eq!(t.pattern_lookups.total(), 3);
    }

    #[test]
    fn plans_appear_only_when_collected() {
        use crate::plan::{PlanStep, PlanTrace};
        let plain = sample();
        assert!(!plain.render().contains("Query plans"));
        assert!(!plain.to_json().to_string().contains("\"plans\""));

        let mut explained = sample();
        explained.plans.push(QueryPlan {
            sparql: "SELECT ?x WHERE { ?x <author> <Orhan_Pamuk> . }".to_string(),
            trace: PlanTrace {
                steps: vec![PlanStep {
                    pattern: "?x <author> <Orhan_Pamuk> .".to_string(),
                    pattern_index: 0,
                    position: 0,
                    estimate: 1,
                    score: 1.0,
                    rows_scanned: 1,
                    join_algo: crate::plan::JoinAlgo::Nested,
                    bindings_emitted: 1,
                    nanos: 99,
                    limit_pushdown: false,
                }],
                cache_hit: false,
                misestimates: 0,
            },
        });
        let text = explained.render();
        assert!(text.contains("Query plans (EXPLAIN ANALYZE):"), "{text}");
        assert!(text.contains("plan: 1 step, 1 rows scanned"), "{text}");
        let json = explained.to_json().to_string();
        assert!(json.contains("\"plans\""), "{json}");
        assert!(json.contains("\"estimate\":1"), "{json}");
    }

    #[test]
    fn unanswered_trace_serializes_nulls() {
        let mut t = QuestionTrace::new("gibberish");
        t.stage = "ExtractionFailed".to_string();
        let json = t.to_json().to_string();
        assert!(json.contains("\"kind\":null"), "{json}");
        assert!(json.contains("\"answer\":null"), "{json}");
    }
}
