//! RAII stage timers.
//!
//! A [`Span`] reads the monotonic clock when created and records the
//! elapsed nanoseconds into its histogram when dropped. When the owning
//! registry is disabled the clock is never read at all — the guard is inert.
//!
//! Spans created by the [`span!`](crate::span) macro additionally carry an
//! interned profiler tag: while the [`prof`](crate::prof) sampler is
//! enabled, the tag rides the calling thread's stack for the span's
//! lifetime, so stage timers double as profiling coverage. The push is
//! gated on the profiler's own flag — one relaxed load, no allocation when
//! off.

use std::time::Instant;

use crate::metrics::Histogram;
use crate::prof::{self, StackGuard, TagId};

/// RAII timer: records its own lifetime (nanoseconds) into a histogram on
/// drop. Obtain one via [`span!`](crate::span) or
/// [`MetricsRegistry::span`](crate::MetricsRegistry::span).
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    histogram: Histogram,
    /// Profiler tag-stack guard; pops (restores the saved depth) when the
    /// span drops — declared after `histogram` so the pop happens after the
    /// duration is recorded, keeping pop order identical to record order.
    _prof: Option<StackGuard>,
}

impl Span {
    /// Starts timing into `histogram` (inert if its registry is disabled).
    pub fn from_handle(histogram: Histogram) -> Self {
        let start = if histogram.is_enabled() { Some(Instant::now()) } else { None };
        Span { start, histogram, _prof: None }
    }

    /// Starts timing and pushes `tag` on the profiler's thread stack while
    /// the sampler is enabled. The [`span!`](crate::span) macro resolves
    /// both handles once per call site and comes through here.
    pub fn from_handle_tagged(histogram: Histogram, tag: TagId) -> Self {
        let prof = prof::push(tag);
        let start = if histogram.is_enabled() { Some(Instant::now()) } else { None };
        Span { start, histogram, _prof: prof }
    }

    /// Nanoseconds elapsed so far (0 when inert).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }

    /// Stops the timer, records, and returns the elapsed nanoseconds.
    /// Equivalent to dropping, but hands back the measurement.
    pub fn finish(mut self) -> u64 {
        let nanos = self.elapsed_nanos();
        if self.start.take().is_some() {
            self.histogram.record(nanos);
        }
        nanos
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::MetricsRegistry;

    #[test]
    fn span_records_on_drop() {
        let r = MetricsRegistry::new();
        {
            let _g = r.span("stage.x");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = r.histogram("stage.x").summary();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000_000, "recorded {} ns", s.max);
    }

    #[test]
    fn finish_returns_measurement_and_records_once() {
        let r = MetricsRegistry::new();
        let g = r.span("stage.y");
        let nanos = g.finish();
        let s = r.histogram("stage.y").summary();
        assert_eq!(s.count, 1);
        assert!(s.max <= nanos.max(1));
    }

    #[test]
    fn disabled_span_is_inert() {
        let r = MetricsRegistry::disabled();
        let g = r.span("stage.z");
        assert_eq!(g.elapsed_nanos(), 0);
        assert_eq!(g.finish(), 0);
        drop(r.span("stage.z"));
        r.set_enabled(true);
        assert_eq!(r.histogram("stage.z").summary().count, 0);
    }
}
