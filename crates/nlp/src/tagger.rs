//! POS tagger: lexicon lookup + morphology back-off + context repair rules.
//!
//! The stand-in for Stanford CoreNLP's tagger. It is deterministic and
//! purpose-built for questions: the context rules encode exactly the
//! ambiguities that matter for downstream triple extraction (WDT vs WP,
//! VBD vs VBN, proper-noun runs).

use crate::lemma::lemmatize;
use crate::lexicon;
use crate::tokens::{PosTag, Token};

/// Tags a tokenized sentence, producing [`Token`]s with POS and lemma.
pub fn tag(words: &[String]) -> Vec<Token> {
    let mut tags: Vec<PosTag> = words.iter().enumerate().map(|(i, w)| initial_tag(w, i)).collect();
    apply_context_rules(words, &mut tags);
    words
        .iter()
        .zip(tags)
        .enumerate()
        .map(|(index, (word, pos))| Token {
            text: word.clone(),
            lemma: lemmatize(word, pos),
            pos,
            index,
        })
        .collect()
}

/// Tokenizes and tags a raw sentence in one step.
pub fn tag_sentence(sentence: &str) -> Vec<Token> {
    tag(&crate::tokenize::tokenize(sentence))
}

fn initial_tag(word: &str, index: usize) -> PosTag {
    if word.chars().all(|c| c.is_ascii_punctuation()) && !word.is_empty() {
        if word == "'s" {
            return PosTag::Pos;
        }
        return PosTag::Punct;
    }
    if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return PosTag::Cd;
    }
    let lower = word.to_lowercase();
    if let Some(tag) = lexicon::lookup(&lower) {
        // Capitalized mid-sentence words keep proper-noun readings even when
        // the lexicon knows the lower-cased word (e.g. "Snow", "Gary").
        if index > 0 && starts_uppercase(word) && !tag.is_wh() && open_class(tag) {
            return PosTag::Nnp;
        }
        return tag;
    }
    // Unknown word: shape and suffix heuristics.
    if starts_uppercase(word) && index > 0 {
        return PosTag::Nnp;
    }
    morphological_guess(&lower, index)
}

fn open_class(tag: PosTag) -> bool {
    tag.is_noun() || tag.is_verb() || tag.is_adjective()
}

fn starts_uppercase(word: &str) -> bool {
    word.chars().next().is_some_and(char::is_uppercase)
}

fn morphological_guess(lower: &str, index: usize) -> PosTag {
    if lower.ends_with("ly") {
        return PosTag::Rb;
    }
    if lower.ends_with("ing") && lower.len() > 4 {
        return PosTag::Vbg;
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return PosTag::Vbd;
    }
    if lower.ends_with("est") && lower.len() > 4 {
        return PosTag::Jjs;
    }
    if (lower.ends_with("ous") || lower.ends_with("ful") || lower.ends_with("ive")
        || lower.ends_with("al"))
        && lower.len() > 4
    {
        return PosTag::Jj;
    }
    if lower.ends_with('s') && !lower.ends_with("ss") && lower.len() > 3 {
        return PosTag::Nns;
    }
    // Sentence-initial unknown (likely a name at position 0 of a statement).
    if index == 0 {
        return PosTag::Nnp;
    }
    PosTag::Nn
}

fn apply_context_rules(words: &[String], tags: &mut [PosTag]) {
    let lower: Vec<String> = words.iter().map(|w| w.to_lowercase()).collect();
    let n = tags.len();

    for i in 0..n {
        // Rule 1: "which"/"what" directly before a noun phrase is WDT;
        // standalone "what" is WP.
        if (lower[i] == "which" || lower[i] == "what") && i + 1 < n {
            let next_is_nominal = tags[i + 1].is_noun()
                || tags[i + 1].is_adjective()
                || (tags[i + 1] == PosTag::Nnp);
            tags[i] = if next_is_nominal { PosTag::Wdt } else { PosTag::Wp };
        }
        // Rule 2: a VBD directly or one-adverb after a be-form is a passive
        // participle (VBN): "is written", "was originally built".
        if tags[i] == PosTag::Vbd {
            let prev = previous_content(i, tags);
            if let Some(p) = prev {
                if lexicon::is_be_form(&lower[p]) || lower[p] == "been" {
                    tags[i] = PosTag::Vbn;
                }
            }
        }
        // Rule 3: a VBN with no be/have auxiliary anywhere before it in the
        // clause acts as a simple past (VBD): "Orhan Pamuk wrote ..." is
        // already VBD, but "Who directed Titanic?" needs directed→VBD.
        if tags[i] == PosTag::Vbn {
            let has_aux = (0..i).any(|j| {
                lexicon::is_be_form(&lower[j])
                    || lexicon::is_have_form(&lower[j])
                    || lower[j] == "been"
            });
            // Participles directly after a noun form reduced relatives
            // ("books written by X") and stay VBN.
            let after_noun = i > 0 && tags[i - 1].is_noun();
            if !has_aux && !after_noun {
                tags[i] = PosTag::Vbd;
            }
        }
        // Rule 4: base verb after do-aux or "to": "did ... die", "to write".
        if i > 0 && (tags[i] == PosTag::Nn || tags[i] == PosTag::Vbz) {
            let prior_do = (0..i).any(|j| lexicon::is_do_form(&lower[j]));
            if prior_do && lexicon::lookup(&lower[i]) == Some(PosTag::Vb) {
                tags[i] = PosTag::Vb;
            }
        }
        // Rule 5: "how" + adjective/adverb stays WRB but flags the adjective
        // reading of the next token ("How tall", "How many").
        if lower[i] == "how" && i + 1 < n && tags[i + 1] == PosTag::Nn
            && lexicon::lookup(&lower[i + 1]).is_some_and(|t| t.is_adjective()) {
                tags[i + 1] = PosTag::Jj;
            }
        // Rule 6: "many" after "how" is JJ (quantity adjective).
        if lower[i] == "many" && i > 0 && lower[i - 1] == "how" {
            tags[i] = PosTag::Jj;
        }
        // Rule 7: determiner + unknown-noun repair: a word tagged as a verb
        // directly after a determiner is a noun ("the play", "a star").
        if i > 0 && matches!(tags[i - 1], PosTag::Dt | PosTag::Wdt | PosTag::PrpPoss)
            && matches!(tags[i], PosTag::Vb | PosTag::Vbp)
        {
            tags[i] = PosTag::Nn;
        }
    }
}

fn previous_content(i: usize, tags: &[PosTag]) -> Option<usize> {
    (0..i).rev().find(|&j| tags[j] != PosTag::Rb && tags[j] != PosTag::Punct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags_of(sentence: &str) -> Vec<(String, PosTag)> {
        tag_sentence(sentence).into_iter().map(|t| (t.text, t.pos)).collect()
    }

    fn tag_seq(sentence: &str) -> Vec<PosTag> {
        tag_sentence(sentence).into_iter().map(|t| t.pos).collect()
    }

    #[test]
    fn figure1_sentence() {
        // Paper Figure 1: "Which book is written by Orhan Pamuk"
        let tagged = tags_of("Which book is written by Orhan Pamuk?");
        let expect = [
            ("Which", PosTag::Wdt),
            ("book", PosTag::Nn),
            ("is", PosTag::Vbz),
            ("written", PosTag::Vbn),
            ("by", PosTag::In),
            ("Orhan", PosTag::Nnp),
            ("Pamuk", PosTag::Nnp),
            ("?", PosTag::Punct),
        ];
        for ((word, tag), (ew, et)) in tagged.iter().zip(expect.iter()) {
            assert_eq!(word, ew);
            assert_eq!(tag, et, "word {word}");
        }
    }

    #[test]
    fn what_standalone_is_wp() {
        let tagged = tags_of("What is the height of Michael Jordan?");
        assert_eq!(tagged[0].1, PosTag::Wp);
        assert_eq!(tagged[3].1, PosTag::Nn); // height
    }

    #[test]
    fn which_before_noun_is_wdt() {
        assert_eq!(tag_seq("Which country borders France?")[0], PosTag::Wdt);
    }

    #[test]
    fn how_tall_adjective() {
        let tagged = tags_of("How tall is Michael Jordan?");
        assert_eq!(tagged[0].1, PosTag::Wrb);
        assert_eq!(tagged[1].1, PosTag::Jj);
    }

    #[test]
    fn active_past_not_participle() {
        let tagged = tags_of("Who directed Titanic?");
        assert_eq!(tagged[1].1, PosTag::Vbd);
    }

    #[test]
    fn passive_participle_after_be() {
        let tagged = tags_of("The book was written by him");
        assert_eq!(tagged[3].1, PosTag::Vbn);
    }

    #[test]
    fn do_support_base_verb() {
        let tagged = tags_of("Where did Abraham Lincoln die?");
        assert_eq!(tagged[0].1, PosTag::Wrb);
        assert_eq!(tagged[1].1, PosTag::Vbd); // did
        let die = tagged.iter().find(|(w, _)| w == "die").unwrap();
        assert_eq!(die.1, PosTag::Vb);
    }

    #[test]
    fn unknown_capitalized_is_nnp() {
        let tagged = tags_of("Who wrote Zorba?");
        let zorba = tagged.iter().find(|(w, _)| w == "Zorba").unwrap();
        assert_eq!(zorba.1, PosTag::Nnp);
    }

    #[test]
    fn capitalized_common_word_midsentence_is_nnp() {
        // "Snow" is a common noun, but capitalized mid-sentence it is a title.
        let tagged = tags_of("Who wrote Snow?");
        let snow = tagged.iter().find(|(w, _)| w == "Snow").unwrap();
        assert_eq!(snow.1, PosTag::Nnp);
    }

    #[test]
    fn reduced_relative_participle_stays_vbn() {
        let tagged = tags_of("Give me all books written by Orhan Pamuk.");
        let written = tagged.iter().find(|(w, _)| w == "written").unwrap();
        assert_eq!(written.1, PosTag::Vbn);
    }

    #[test]
    fn how_many_quantity() {
        let tagged = tags_of("How many people live in Turkey?");
        assert_eq!(tagged[1].1, PosTag::Jj); // many
        assert_eq!(tagged[2].1, PosTag::Nns); // people
        let live = tagged.iter().find(|(w, _)| w == "live").unwrap();
        assert!(live.1.is_verb());
    }

    #[test]
    fn numbers_are_cd() {
        let tagged = tags_of("Is 42 the answer?");
        assert_eq!(tagged[1].1, PosTag::Cd);
    }

    #[test]
    fn lemmas_are_attached() {
        let tokens = tag_sentence("Which book is written by Orhan Pamuk?");
        let written = tokens.iter().find(|t| t.text == "written").unwrap();
        assert_eq!(written.lemma, "write");
        let book = tokens.iter().find(|t| t.text == "book").unwrap();
        assert_eq!(book.lemma, "book");
    }

    #[test]
    fn determiner_verb_repair() {
        let tagged = tags_of("What is the play about?");
        let play = tagged.iter().find(|(w, _)| w == "play").unwrap();
        assert_eq!(play.1, PosTag::Nn);
    }

    #[test]
    fn still_alive_polar_question() {
        let tagged = tags_of("Is Frank Herbert still alive?");
        assert_eq!(tagged[0].1, PosTag::Vbz);
        let still = tagged.iter().find(|(w, _)| w == "still").unwrap();
        assert_eq!(still.1, PosTag::Rb);
        let alive = tagged.iter().find(|(w, _)| w == "alive").unwrap();
        assert_eq!(alive.1, PosTag::Jj);
    }
}
