//! Rule-based English lemmatizer.
//!
//! Combines an irregular-form table (verbs the question register actually
//! uses, plus common irregular plurals) with standard suffix-stripping rules.
//! Lemmas feed the string-similarity property matcher and the relational
//! pattern normalizer, so consistency matters more than linguistic
//! completeness: the same surface form must always map to the same lemma.

use crate::tokens::PosTag;

/// Irregular verb forms: (inflected, lemma).
const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("is", "be"),
    ("are", "be"),
    ("was", "be"),
    ("were", "be"),
    ("am", "be"),
    ("been", "be"),
    ("being", "be"),
    ("has", "have"),
    ("had", "have"),
    ("having", "have"),
    ("does", "do"),
    ("did", "do"),
    ("done", "do"),
    ("wrote", "write"),
    ("written", "write"),
    ("writes", "write"),
    ("born", "bear"),
    ("bore", "bear"),
    ("borne", "bear"),
    ("died", "die"),
    ("dying", "die"),
    ("dies", "die"),
    ("won", "win"),
    ("made", "make"),
    ("took", "take"),
    ("taken", "take"),
    ("gave", "give"),
    ("given", "give"),
    ("found", "find"),
    ("founded", "found"),
    ("began", "begin"),
    ("begun", "begin"),
    ("led", "lead"),
    ("grew", "grow"),
    ("grown", "grow"),
    ("flew", "fly"),
    ("flown", "fly"),
    ("ran", "run"),
    ("held", "hold"),
    ("spoke", "speak"),
    ("spoken", "speak"),
    ("sang", "sing"),
    ("sung", "sing"),
    ("came", "come"),
    ("went", "go"),
    ("gone", "go"),
    ("got", "get"),
    ("gotten", "get"),
    ("saw", "see"),
    ("seen", "see"),
    ("met", "meet"),
    ("left", "leave"),
    ("built", "build"),
    ("bought", "buy"),
    ("brought", "bring"),
    ("thought", "think"),
    ("taught", "teach"),
    ("caught", "catch"),
    ("sold", "sell"),
    ("told", "tell"),
    ("said", "say"),
    ("paid", "pay"),
    ("knew", "know"),
    ("known", "know"),
    ("drew", "draw"),
    ("drawn", "draw"),
    ("shot", "shoot"),
    ("lay", "lie"),
    ("lain", "lie"),
    ("lies", "lie"),
];

/// Irregular noun plurals: (plural, singular).
const IRREGULAR_NOUNS: &[(&str, &str)] = &[
    ("people", "person"),
    ("men", "man"),
    ("women", "woman"),
    ("children", "child"),
    ("wives", "wife"),
    ("lives", "life"),
    ("countries", "country"),
    ("cities", "city"),
    ("companies", "company"),
    ("movies", "movie"),
    ("series", "series"),
    ("species", "species"),
];

/// Words ending in `-ss`/`-us`/`-is` that look plural but are not.
const FALSE_PLURALS: &[&str] =
    &["his", "this", "is", "was", "does", "has", "its", "tennis", "paris", "chess", "alias"];

/// Lemmatizes one lower-cased word given its POS tag.
pub fn lemmatize(word: &str, pos: PosTag) -> String {
    let lower = word.to_lowercase();
    if pos.is_verb() || pos == PosTag::Md {
        if let Some(&(_, lemma)) = IRREGULAR_VERBS.iter().find(|(w, _)| *w == lower) {
            return lemma.to_string();
        }
        return lemmatize_regular_verb(&lower);
    }
    if pos.is_noun() {
        if let Some(&(_, lemma)) = IRREGULAR_NOUNS.iter().find(|(w, _)| *w == lower) {
            return lemma.to_string();
        }
        if matches!(pos, PosTag::Nns | PosTag::Nnps) {
            return singularize(&lower);
        }
        return lower;
    }
    if pos.is_adjective() {
        return lemmatize_adjective(&lower);
    }
    lower
}

fn lemmatize_regular_verb(word: &str) -> String {
    // -ies → -y (carries → carry)
    if let Some(stem) = word.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    // -es after sibilant (watches → watch); otherwise -s (writes → write)
    if let Some(stem) = word.strip_suffix("es") {
        if stem.ends_with("ch") || stem.ends_with("sh") || stem.ends_with('x') || stem.ends_with('s')
        {
            return stem.to_string();
        }
    }
    if let Some(stem) = word.strip_suffix('s') {
        if !stem.is_empty() && !stem.ends_with('s') && !stem.ends_with('i') {
            return stem.to_string();
        }
    }
    // -ied → -y (married → marry)
    if let Some(stem) = word.strip_suffix("ied") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    // doubled consonant + ed (starred → star, planned → plan)
    if let Some(stem) = word.strip_suffix("ed") {
        if stem.len() >= 3 {
            let chars: Vec<char> = stem.chars().collect();
            let n = chars.len();
            if chars[n - 1] == chars[n - 2] && !"aeiou".contains(chars[n - 1]) && chars[n - 1] != 'l'
            {
                return stem[..stem.len() - 1].to_string();
            }
            // -ated/-ired/-osed... : 'e'-final stems (created → create,
            // located → locate). Heuristic: consonant + e restoration when
            // the stem ends in a pattern that requires 'e'.
            if ends_needs_e(stem) {
                return format!("{stem}e");
            }
            return stem.to_string();
        }
    }
    // -ing forms
    if let Some(stem) = word.strip_suffix("ing") {
        if stem.len() >= 3 {
            let chars: Vec<char> = stem.chars().collect();
            let n = chars.len();
            if chars[n - 1] == chars[n - 2] && !"aeiou".contains(chars[n - 1]) && chars[n - 1] != 'l'
            {
                return stem[..stem.len() - 1].to_string();
            }
            if ends_needs_e(stem) {
                return format!("{stem}e");
            }
            return stem.to_string();
        }
    }
    word.to_string()
}

/// Heuristic for restoring a dropped final `e` after suffix stripping:
/// stems ending in consonant+`at`, `it`, `iv`, `os`, `ac`, `uc`, `in` with a
/// single trailing consonant that commonly require `e`.
fn ends_needs_e(stem: &str) -> bool {
    const E_RESTORING: &[&str] = &[
        "at", "iv", "os", "uc", "ac", "ir", "ar", "or", "ut", "it", "id", "ov", "ag", "iz",
        "rit", "as", "us",
    ];
    E_RESTORING.iter().any(|suf| stem.ends_with(suf)) && stem.len() >= 3
}

fn singularize(word: &str) -> String {
    if FALSE_PLURALS.contains(&word) || !word.ends_with('s') {
        return word.to_string();
    }
    if let Some(stem) = word.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = word.strip_suffix("es") {
        if stem.ends_with("ch") || stem.ends_with("sh") || stem.ends_with('x') || stem.ends_with('s')
        {
            return stem.to_string();
        }
    }
    if let Some(stem) = word.strip_suffix('s') {
        if !stem.is_empty() && !stem.ends_with('s') {
            return stem.to_string();
        }
    }
    word.to_string()
}

fn lemmatize_adjective(word: &str) -> String {
    // taller → tall, tallest → tall; bigger → big, biggest → big
    for suffix in ["est", "er"] {
        if let Some(stem) = word.strip_suffix(suffix) {
            if stem.len() >= 3 {
                let chars: Vec<char> = stem.chars().collect();
                let n = chars.len();
                if n >= 2
                    && chars[n - 1] == chars[n - 2]
                    && !"aeioul".contains(chars[n - 1])
                {
                    return stem[..stem.len() - 1].to_string();
                }
                if let Some(base) = stem.strip_suffix('i') {
                    return format!("{base}y");
                }
                return stem.to_string();
            }
        }
    }
    word.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_verbs() {
        assert_eq!(lemmatize("written", PosTag::Vbn), "write");
        assert_eq!(lemmatize("wrote", PosTag::Vbd), "write");
        assert_eq!(lemmatize("was", PosTag::Vbd), "be");
        assert_eq!(lemmatize("born", PosTag::Vbn), "bear");
        assert_eq!(lemmatize("died", PosTag::Vbd), "die");
        assert_eq!(lemmatize("founded", PosTag::Vbd), "found");
        assert_eq!(lemmatize("won", PosTag::Vbd), "win");
    }

    #[test]
    fn regular_verbs() {
        assert_eq!(lemmatize("directs", PosTag::Vbz), "direct");
        assert_eq!(lemmatize("directed", PosTag::Vbd), "direct");
        assert_eq!(lemmatize("starred", PosTag::Vbd), "star");
        assert_eq!(lemmatize("married", PosTag::Vbd), "marry");
        assert_eq!(lemmatize("carries", PosTag::Vbz), "carry");
        assert_eq!(lemmatize("created", PosTag::Vbn), "create");
        assert_eq!(lemmatize("located", PosTag::Vbn), "locate");
        assert_eq!(lemmatize("watches", PosTag::Vbz), "watch");
        assert_eq!(lemmatize("living", PosTag::Vbg), "live");
        assert_eq!(lemmatize("developed", PosTag::Vbd), "develop");
    }

    #[test]
    fn noun_plurals() {
        assert_eq!(lemmatize("books", PosTag::Nns), "book");
        assert_eq!(lemmatize("cities", PosTag::Nns), "city");
        assert_eq!(lemmatize("people", PosTag::Nns), "person");
        assert_eq!(lemmatize("children", PosTag::Nns), "child");
        assert_eq!(lemmatize("wives", PosTag::Nns), "wife");
        assert_eq!(lemmatize("churches", PosTag::Nns), "church");
        assert_eq!(lemmatize("movies", PosTag::Nns), "movie");
    }

    #[test]
    fn singular_nouns_pass_through() {
        assert_eq!(lemmatize("book", PosTag::Nn), "book");
        assert_eq!(lemmatize("tennis", PosTag::Nn), "tennis");
        assert_eq!(lemmatize("Paris", PosTag::Nnp), "paris");
    }

    #[test]
    fn adjectives() {
        assert_eq!(lemmatize("taller", PosTag::Jjr), "tall");
        assert_eq!(lemmatize("tallest", PosTag::Jjs), "tall");
        assert_eq!(lemmatize("bigger", PosTag::Jjr), "big");
        assert_eq!(lemmatize("happiest", PosTag::Jjs), "happy");
        assert_eq!(lemmatize("high", PosTag::Jj), "high");
    }

    #[test]
    fn other_pos_just_lowercases() {
        assert_eq!(lemmatize("By", PosTag::In), "by");
        assert_eq!(lemmatize("Which", PosTag::Wdt), "which");
    }

    #[test]
    fn lemma_is_deterministic_for_repeated_calls() {
        for _ in 0..3 {
            assert_eq!(lemmatize("written", PosTag::Vbn), "write");
        }
    }
}
