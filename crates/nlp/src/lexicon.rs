//! Embedded POS lexicon.
//!
//! A compact word list covering the interrogative-English register the
//! system processes: closed-class words exhaustively, plus the open-class
//! vocabulary that question sets and the synthetic corpus use. Unknown words
//! fall through to the tagger's morphology rules.

use relpat_obs::fx::FxHashMap;
use std::sync::OnceLock;

use crate::tokens::PosTag;

/// Returns the primary (context-free) tag of a lower-cased word.
pub fn lookup(word: &str) -> Option<PosTag> {
    table().get(word).copied()
}

/// True if the word is a form of "be".
pub fn is_be_form(word: &str) -> bool {
    matches!(word, "is" | "are" | "was" | "were" | "am" | "be" | "been" | "being")
}

/// True if the word is a form of "do" (the question auxiliary).
pub fn is_do_form(word: &str) -> bool {
    matches!(word, "do" | "does" | "did")
}

/// True if the word is a form of "have".
pub fn is_have_form(word: &str) -> bool {
    matches!(word, "have" | "has" | "had")
}

fn table() -> &'static FxHashMap<&'static str, PosTag> {
    static TABLE: OnceLock<FxHashMap<&'static str, PosTag>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut m = FxHashMap::default();
        let sets: &[(&[&str], PosTag)] = &[
            // Closed classes first; later duplicates do not overwrite, so
            // keep the most important reading earliest.
            (
                &["the", "a", "an", "all", "every", "each", "some", "any", "no", "another",
                  "both", "either", "neither"],
                PosTag::Dt,
            ),
            (&["which"], PosTag::Wdt),
            (&["who", "whom", "what"], PosTag::Wp),
            (&["whose"], PosTag::WpPoss),
            (&["where", "when", "why", "how"], PosTag::Wrb),
            (
                &["of", "in", "by", "from", "at", "on", "for", "with", "about", "into",
                  "through", "between", "against", "during", "before", "after", "under", "than",
                  "over", "near", "since", "until", "as"],
                PosTag::In,
            ),
            (&["to"], PosTag::To),
            (&["and", "or", "but", "nor"], PosTag::Cc),
            (
                &["i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us",
                  "them"],
                PosTag::Prp,
            ),
            (&["my", "your", "his", "its", "our", "their"], PosTag::PrpPoss),
            (&["there"], PosTag::Ex),
            (&["'s"], PosTag::Pos),
            (
                &["can", "could", "will", "would", "shall", "should", "may", "might", "must"],
                PosTag::Md,
            ),
            // be / do / have forms
            (&["is", "has", "does"], PosTag::Vbz),
            (&["are", "am", "do", "have"], PosTag::Vbp),
            (&["was", "were", "did", "had"], PosTag::Vbd),
            (&["be"], PosTag::Vb),
            (&["been", "done"], PosTag::Vbn),
            (&["being", "having", "doing"], PosTag::Vbg),
            // Adverbs common in questions
            (
                &["still", "currently", "now", "also", "not", "n't", "many", "much", "most",
                  "more", "first", "last", "originally", "officially"],
                PosTag::Rb,
            ),
            // Base verbs (after "did"/"does"/to)
            (
                &["write", "direct", "star", "marry", "die", "live", "locate", "create",
                  "develop", "found", "design", "discover", "win", "play", "flow", "border",
                  "produce", "publish", "compose", "sing", "act", "work", "study", "lead",
                  "own", "run", "give", "start", "begin", "end", "take", "make", "bear",
                  "cross", "join", "leave", "record", "release", "invent", "paint", "build",
                  "establish", "head", "govern", "rule", "speak"],
                PosTag::Vb,
            ),
            // Past/participle forms (VBN preferred; the tagger converts to
            // VBD in active contexts)
            (
                &["written", "directed", "starred", "married", "born", "located", "created",
                  "developed", "founded", "designed", "discovered", "won", "played",
                  "produced", "published", "composed", "sung", "acted", "led", "owned",
                  "given", "taken", "made", "recorded", "released", "invented", "painted",
                  "built", "established", "governed", "ruled", "spoken", "crossed", "joined",
                  "headed"],
                PosTag::Vbn,
            ),
            (
                &["wrote", "died", "lived", "sang", "spoke", "began", "started", "ended",
                  "flowed", "worked", "studied", "ran", "gave", "took", "left"],
                PosTag::Vbd,
            ),
            (
                &["writes", "directs", "stars", "marries", "dies", "lives", "flows",
                  "borders", "runs", "leads", "owns", "plays", "speaks", "crosses"],
                PosTag::Vbz,
            ),
            // Nouns (singular)
            (
                &["book", "novel", "author", "writer", "poet", "president", "mayor", "wife",
                  "husband", "spouse", "height", "population", "capital", "city", "country",
                  "river", "mountain", "film", "movie", "director", "actor", "actress",
                  "company", "university", "album", "band", "song", "game", "person",
                  "place", "date", "year", "birthday", "death", "birth", "currency",
                  "language", "area", "inhabitant", "employee", "headquarters", "creator",
                  "designer", "founder", "developer", "owner", "leader", "state",
                  "continent", "lake", "island", "airline", "airport", "museum", "painting",
                  "player", "team", "organization", "organisation", "party", "school",
                  "child", "daughter", "son", "mother", "father", "brother", "sister",
                  "name", "kind", "type", "number", "amount", "elevation", "length",
                  "depth", "size", "abbreviation", "website", "anthem", "flag", "mascot",
                  "prize", "award", "location", "border", "region", "profession", "job",
                  "title", "genre", "currency", "religion", "festival", "war", "battle",
                  "king", "queen", "emperor", "chancellor", "minister", "governor",
                  "singer", "musician", "artist", "scientist", "physicist", "chemist",
                  "philosopher", "inventor", "architect", "engineer", "astronaut",
                  "magazine", "newspaper", "sea", "ocean", "desert", "bridge", "tower",
                  "castle", "palace", "cathedral", "church", "stadium", "video"],
                PosTag::Nn,
            ),
            // Nouns (plural)
            (
                &["books", "novels", "authors", "writers", "films", "movies", "cities",
                  "countries", "rivers", "mountains", "companies", "albums", "songs",
                  "games", "people", "inhabitants", "employees", "children", "languages",
                  "states", "lakes", "islands", "museums", "paintings", "players", "teams",
                  "organizations", "members", "daughters", "sons", "awards", "prizes",
                  "borders", "wives", "husbands", "actors", "actresses", "presidents",
                  "capitals", "professions", "religions", "wars", "kings", "queens",
                  "singers", "musicians", "artists", "scientists", "bridges", "towers",
                  "stadiums", "years"],
                PosTag::Nns,
            ),
            // Adjectives
            (
                &["tall", "high", "big", "large", "long", "deep", "old", "young", "famous",
                  "alive", "dead", "official", "populous", "wide", "heavy", "rich", "poor",
                  "new", "small", "short", "great", "national", "major", "total",
                  "german", "french", "turkish", "american", "british", "italian",
                  "spanish", "russian", "japanese", "chinese", "european"],
                PosTag::Jj,
            ),
            (&["taller", "higher", "bigger", "larger", "longer", "older", "younger"], PosTag::Jjr),
            (
                &["tallest", "highest", "biggest", "largest", "longest", "oldest",
                  "youngest", "deepest", "richest"],
                PosTag::Jjs,
            ),
        ];
        for (words, tag) in sets {
            for w in *words {
                // First entry wins: closed-class readings take priority.
                m.entry(*w).or_insert(*tag);
            }
        }
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_lookup() {
        assert_eq!(lookup("which"), Some(PosTag::Wdt));
        assert_eq!(lookup("who"), Some(PosTag::Wp));
        assert_eq!(lookup("by"), Some(PosTag::In));
        assert_eq!(lookup("the"), Some(PosTag::Dt));
        assert_eq!(lookup("'s"), Some(PosTag::Pos));
    }

    #[test]
    fn verb_forms() {
        assert_eq!(lookup("written"), Some(PosTag::Vbn));
        assert_eq!(lookup("wrote"), Some(PosTag::Vbd));
        assert_eq!(lookup("is"), Some(PosTag::Vbz));
        assert_eq!(lookup("die"), Some(PosTag::Vb));
    }

    #[test]
    fn ambiguous_words_resolve_to_priority_reading() {
        // "found" is both VB(base: establish) and VBD(find); the base
        // reading comes first in the table.
        assert_eq!(lookup("found"), Some(PosTag::Vb));
        // "star" noun vs verb: verb listed first.
        assert_eq!(lookup("star"), Some(PosTag::Vb));
    }

    #[test]
    fn unknown_word_misses() {
        assert_eq!(lookup("pamuk"), None);
        assert_eq!(lookup("zzzz"), None);
    }

    #[test]
    fn aux_class_predicates() {
        assert!(is_be_form("was"));
        assert!(!is_be_form("did"));
        assert!(is_do_form("did"));
        assert!(is_have_form("has"));
    }

    #[test]
    fn nouns_and_adjectives() {
        assert_eq!(lookup("book"), Some(PosTag::Nn));
        assert_eq!(lookup("books"), Some(PosTag::Nns));
        assert_eq!(lookup("tall"), Some(PosTag::Jj));
        assert_eq!(lookup("tallest"), Some(PosTag::Jjs));
        assert_eq!(lookup("people"), Some(PosTag::Nns));
    }
}
