//! Typed dependency graphs (Stanford-dependencies style).

use std::fmt;

use crate::tokens::Token;

/// Typed dependency relations — the collapsed Stanford-dependencies subset
/// the paper's triple extraction consumes. Prepositions are collapsed into
/// the relation (`prep_of(height, Jordan)`), matching the representation the
/// paper's Figure 1 derives from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DepRel {
    /// Determiner: `det(book, Which)`
    Det,
    /// Noun compound modifier: `nn(Pamuk, Orhan)`
    Nn,
    /// Adjectival modifier: `amod(people, many)`
    Amod,
    /// Numeric modifier
    Num,
    /// Possession modifier: `poss(wife, Obama)`
    Poss,
    /// Nominal subject (active)
    Nsubj,
    /// Nominal subject (passive): `nsubjpass(written, book)`
    Nsubjpass,
    /// Direct object
    Dobj,
    /// Indirect object: `iobj(give, me)`
    Iobj,
    /// Copula: `cop(height, is)`
    Cop,
    /// Auxiliary: `aux(die, did)`
    Aux,
    /// Passive auxiliary: `auxpass(written, is)`
    Auxpass,
    /// Passive agent (collapsed `by`): `agent(written, Pamuk)`
    Agent,
    /// Collapsed preposition: `prep_of`, `prep_in`, ...
    Prep(String),
    /// Adverbial modifier: `advmod(die, Where)`
    Advmod,
    /// Participial modifier (reduced relative): `partmod(books, written)`
    Partmod,
    /// Unclassified dependency (fallback for unhandled structure)
    Dep,
}

impl fmt::Display for DepRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepRel::Det => f.write_str("det"),
            DepRel::Nn => f.write_str("nn"),
            DepRel::Amod => f.write_str("amod"),
            DepRel::Num => f.write_str("num"),
            DepRel::Poss => f.write_str("poss"),
            DepRel::Nsubj => f.write_str("nsubj"),
            DepRel::Nsubjpass => f.write_str("nsubjpass"),
            DepRel::Dobj => f.write_str("dobj"),
            DepRel::Iobj => f.write_str("iobj"),
            DepRel::Cop => f.write_str("cop"),
            DepRel::Aux => f.write_str("aux"),
            DepRel::Auxpass => f.write_str("auxpass"),
            DepRel::Agent => f.write_str("agent"),
            DepRel::Prep(p) => write!(f, "prep_{p}"),
            DepRel::Advmod => f.write_str("advmod"),
            DepRel::Partmod => f.write_str("partmod"),
            DepRel::Dep => f.write_str("dep"),
        }
    }
}

/// One typed dependency edge (head → dependent).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub head: usize,
    pub dependent: usize,
    pub rel: DepRel,
}

/// A dependency parse of one sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct DepGraph {
    pub tokens: Vec<Token>,
    pub edges: Vec<Edge>,
    /// Index of the root token, if the parser committed to a structure.
    pub root: Option<usize>,
}

impl DepGraph {
    /// The token at `index`.
    pub fn token(&self, index: usize) -> &Token {
        &self.tokens[index]
    }

    /// Children of a head with their relations, in token order.
    pub fn children(&self, head: usize) -> Vec<(usize, &DepRel)> {
        let mut out: Vec<(usize, &DepRel)> = self
            .edges
            .iter()
            .filter(|e| e.head == head)
            .map(|e| (e.dependent, &e.rel))
            .collect();
        out.sort_by_key(|(i, _)| *i);
        out
    }

    /// First child of `head` with relation `rel`.
    pub fn child_with(&self, head: usize, rel: &DepRel) -> Option<usize> {
        self.edges
            .iter()
            .find(|e| e.head == head && &e.rel == rel)
            .map(|e| e.dependent)
    }

    /// First child matching a predicate on the relation.
    pub fn child_where<F: Fn(&DepRel) -> bool>(&self, head: usize, pred: F) -> Option<usize> {
        self.edges
            .iter()
            .find(|e| e.head == head && pred(&e.rel))
            .map(|e| e.dependent)
    }

    /// The head and relation of a dependent, if attached.
    pub fn head_of(&self, dependent: usize) -> Option<(usize, &DepRel)> {
        self.edges
            .iter()
            .find(|e| e.dependent == dependent)
            .map(|e| (e.head, &e.rel))
    }

    /// All token indices in the subtree rooted at `head` (inclusive), sorted.
    pub fn subtree(&self, head: usize) -> Vec<usize> {
        let mut out = vec![head];
        let mut stack = vec![head];
        while let Some(h) = stack.pop() {
            for e in self.edges.iter().filter(|e| e.head == h) {
                if !out.contains(&e.dependent) {
                    out.push(e.dependent);
                    stack.push(e.dependent);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Surface text of a subtree, in token order — used to reconstruct
    /// multi-word entity mentions ("The Museum of Innocence").
    pub fn subtree_text(&self, head: usize) -> String {
        self.subtree(head)
            .into_iter()
            .map(|i| self.tokens[i].text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Surface text of a subtree restricted to name-forming relations
    /// (`nn`, `det`, `prep_of` chains) — drops modifiers like relative
    /// clauses so "books written by X" yields "books".
    pub fn phrase_text(&self, head: usize) -> String {
        let mut keep = vec![head];
        let mut stack = vec![head];
        while let Some(h) = stack.pop() {
            for e in self.edges.iter().filter(|e| e.head == h) {
                let name_forming = matches!(
                    e.rel,
                    DepRel::Nn | DepRel::Num | DepRel::Poss
                ) || matches!(&e.rel, DepRel::Prep(p) if p == "of");
                if name_forming && !keep.contains(&e.dependent) {
                    keep.push(e.dependent);
                    stack.push(e.dependent);
                }
            }
        }
        keep.sort_unstable();
        // Re-insert the connecting "of" tokens that sit between kept spans.
        let mut words: Vec<&str> = Vec::new();
        for (pos, &i) in keep.iter().enumerate() {
            if pos > 0 {
                let prev = keep[pos - 1];
                if i == prev + 2 && self.tokens[i - 1].lemma == "of" {
                    words.push(&self.tokens[i - 1].text);
                }
            }
            words.push(&self.tokens[i].text);
        }
        words.join(" ")
    }

    /// Renders the parse as an indented tree (the shape of the paper's
    /// Figure 1).
    pub fn to_tree_string(&self) -> String {
        let mut out = String::new();
        match self.root {
            Some(root) => {
                out.push_str(&format!("{} (root)\n", self.tokens[root]));
                self.render_children(root, 1, &mut out);
            }
            None => out.push_str("(no parse)\n"),
        }
        out
    }

    fn render_children(&self, head: usize, depth: usize, out: &mut String) {
        for (child, rel) in self.children(head) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("└─ {rel} ─ {}\n", self.tokens[child]));
            self.render_children(child, depth + 1, out);
        }
    }

    /// Lists the edges in `rel(head, dependent)` notation, one per line —
    /// the textual form Stanford tools print.
    pub fn to_relations_string(&self) -> String {
        let mut out = String::new();
        for e in &self.edges {
            out.push_str(&format!(
                "{}({}-{}, {}-{})\n",
                e.rel,
                self.tokens[e.head].text,
                e.head + 1,
                self.tokens[e.dependent].text,
                e.dependent + 1
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::PosTag;

    fn tok(text: &str, pos: PosTag, index: usize) -> Token {
        Token { text: text.into(), lemma: text.to_lowercase(), pos, index }
    }

    fn figure1_graph() -> DepGraph {
        // Which book is written by Orhan Pamuk
        let tokens = vec![
            tok("Which", PosTag::Wdt, 0),
            tok("book", PosTag::Nn, 1),
            tok("is", PosTag::Vbz, 2),
            tok("written", PosTag::Vbn, 3),
            tok("by", PosTag::In, 4),
            tok("Orhan", PosTag::Nnp, 5),
            tok("Pamuk", PosTag::Nnp, 6),
        ];
        let edges = vec![
            Edge { head: 1, dependent: 0, rel: DepRel::Det },
            Edge { head: 3, dependent: 1, rel: DepRel::Nsubjpass },
            Edge { head: 3, dependent: 2, rel: DepRel::Auxpass },
            Edge { head: 3, dependent: 6, rel: DepRel::Agent },
            Edge { head: 6, dependent: 5, rel: DepRel::Nn },
        ];
        DepGraph { tokens, edges, root: Some(3) }
    }

    #[test]
    fn children_sorted_by_index() {
        let g = figure1_graph();
        let kids: Vec<usize> = g.children(3).into_iter().map(|(i, _)| i).collect();
        assert_eq!(kids, vec![1, 2, 6]);
    }

    #[test]
    fn child_with_and_head_of() {
        let g = figure1_graph();
        assert_eq!(g.child_with(3, &DepRel::Agent), Some(6));
        assert_eq!(g.child_with(3, &DepRel::Dobj), None);
        let (head, rel) = g.head_of(1).unwrap();
        assert_eq!(head, 3);
        assert_eq!(rel, &DepRel::Nsubjpass);
    }

    #[test]
    fn subtree_and_text() {
        let g = figure1_graph();
        assert_eq!(g.subtree(6), vec![5, 6]);
        assert_eq!(g.subtree_text(6), "Orhan Pamuk");
        // root + nsubjpass(book) + its det(Which) + auxpass(is) + agent(Pamuk) + nn(Orhan)
        assert_eq!(g.subtree(3).len(), 6);
    }

    #[test]
    fn phrase_text_keeps_name_parts_only() {
        let g = figure1_graph();
        // book's subtree includes det(Which); phrase_text drops it.
        assert_eq!(g.phrase_text(1), "book");
        assert_eq!(g.phrase_text(6), "Orhan Pamuk");
    }

    #[test]
    fn tree_rendering_contains_relations() {
        let g = figure1_graph();
        let tree = g.to_tree_string();
        assert!(tree.contains("written/VBN (root)"));
        assert!(tree.contains("nsubjpass"));
        assert!(tree.contains("agent"));
        assert!(tree.contains("nn"));
    }

    #[test]
    fn relations_string_one_per_line() {
        let g = figure1_graph();
        let rels = g.to_relations_string();
        assert!(rels.contains("nsubjpass(written-4, book-2)"));
        assert_eq!(rels.lines().count(), g.edges.len());
    }

    #[test]
    fn prep_rel_display() {
        assert_eq!(DepRel::Prep("of".into()).to_string(), "prep_of");
        assert_eq!(DepRel::Nsubjpass.to_string(), "nsubjpass");
    }
}
