//! Rule-based dependency parser for interrogative English.
//!
//! A deterministic cascade purpose-built for the question register:
//!
//! 1. chunk noun phrases and build their internal edges (`det`, `nn`,
//!    `amod`, `num`, `poss`);
//! 2. classify verb tokens (be/do auxiliaries, modals, content verbs,
//!    reduced-relative participles);
//! 3. pick the clause structure (content-verb clause, copular clause,
//!    bare copula) and attach subjects, objects, agents and adverbs;
//! 4. collapse prepositions into `prep_X` edges (`of` attaches to the
//!    preceding noun, everything else to the clause head).
//!
//! Sentences outside the covered archetypes fall back to a flat parse with
//! `dep` edges and no committed root — downstream triple extraction rejects
//! those, which is exactly the paper's "question not attempted" bucket and
//! the source of its low recall.

use crate::graph::{DepGraph, DepRel, Edge};
use crate::lexicon;
use crate::tokens::{PosTag, Token};

/// Parses a tagged sentence into a dependency graph.
pub fn parse(tokens: Vec<Token>) -> DepGraph {
    Parser::new(tokens).run()
}

/// Tokenizes, tags and parses a raw sentence.
pub fn parse_sentence(sentence: &str) -> DepGraph {
    parse(crate::tagger::tag_sentence(sentence))
}

/// A noun-phrase chunk over `[start, end]` with a designated head.
#[derive(Debug, Clone, PartialEq)]
struct Chunk {
    start: usize,
    end: usize,
    head: usize,
}

struct Parser {
    tokens: Vec<Token>,
    edges: Vec<Edge>,
    chunks: Vec<Chunk>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, edges: Vec::new(), chunks: Vec::new() }
    }

    fn pos(&self, i: usize) -> PosTag {
        self.tokens[i].pos
    }

    fn lower(&self, i: usize) -> String {
        self.tokens[i].lower()
    }

    fn attach(&mut self, head: usize, dependent: usize, rel: DepRel) {
        // One head per dependent: first attachment wins.
        if self.edges.iter().any(|e| e.dependent == dependent) || head == dependent {
            return;
        }
        self.edges.push(Edge { head, dependent, rel });
    }

    fn run(mut self) -> DepGraph {
        self.chunks = self.chunk_nps();
        self.build_np_internal_edges();

        let verbs = self.verb_analysis();
        let root = match verbs.main {
            Some(main) => {
                self.attach_verbal_clause(main, &verbs);
                Some(main)
            }
            None => self.attach_copular_clause(&verbs),
        };

        if let Some(root) = root {
            self.attach_partmods(&verbs);
            self.attach_preps(root, &verbs);
            self.attach_adverbs(root);
            self.attach_leftovers(root);
        }

        DepGraph { tokens: self.tokens, edges: self.edges, root }
    }

    /// Maximal noun-phrase chunks. A chunk is
    /// `(DT|WDT|PRP$)? (JJ|CD|NN.*|POS)* NN.*` with head = last noun, or a
    /// standalone pronoun (`who`, `me`).
    fn chunk_nps(&self) -> Vec<Chunk> {
        let n = self.tokens.len();
        let mut chunks = Vec::new();
        let mut i = 0;
        while i < n {
            let tag = self.pos(i);
            if matches!(tag, PosTag::Wp | PosTag::Prp) {
                chunks.push(Chunk { start: i, end: i, head: i });
                i += 1;
                continue;
            }
            let starts_np = matches!(tag, PosTag::Dt | PosTag::Wdt | PosTag::PrpPoss)
                || tag.is_adjective()
                || tag == PosTag::Cd
                || tag.is_noun();
            if !starts_np {
                i += 1;
                continue;
            }
            let start = i;
            let mut last_noun = None;
            while i < n {
                let t = self.pos(i);
                let continues = matches!(t, PosTag::Dt | PosTag::Wdt | PosTag::PrpPoss)
                    || t.is_adjective()
                    || t == PosTag::Cd
                    || t.is_noun()
                    || (t == PosTag::Pos && last_noun.is_some());
                if !continues {
                    break;
                }
                // A determiner mid-chunk starts a new NP ("all the books"
                // keeps one chunk since both are at the front), and an
                // adjective after a noun is a predicate, not a modifier
                // ("Is Ankara bigger ..."), so both end the chunk.
                if (matches!(t, PosTag::Dt | PosTag::Wdt) || t.is_adjective())
                    && last_noun.is_some()
                {
                    break;
                }
                if t.is_noun() {
                    last_noun = Some(i);
                }
                i += 1;
            }
            match last_noun {
                Some(head) => chunks.push(Chunk { start, end: i - 1, head }),
                None => {
                    // Determiner/adjective run with no noun (e.g. "How tall"):
                    // not an NP; rewind past it token by token.
                    i = start + 1;
                }
            }
        }
        chunks
    }

    fn build_np_internal_edges(&mut self) {
        let chunks = self.chunks.clone();
        for c in &chunks {
            for i in c.start..=c.end {
                if i == c.head {
                    continue;
                }
                match self.pos(i) {
                    PosTag::Dt | PosTag::Wdt => self.attach(c.head, i, DepRel::Det),
                    PosTag::PrpPoss => self.attach(c.head, i, DepRel::Poss),
                    PosTag::Cd => self.attach(c.head, i, DepRel::Num),
                    PosTag::Pos => {} // the clitic hangs off the possessor below
                    t if t.is_adjective() => self.attach(c.head, i, DepRel::Amod),
                    t if t.is_noun() => {
                        // A noun followed by 's is a possessor; otherwise a
                        // compound modifier.
                        if i < c.end && self.pos(i + 1) == PosTag::Pos {
                            self.attach(c.head, i, DepRel::Poss);
                        } else {
                            self.attach(c.head, i, DepRel::Nn);
                        }
                    }
                    _ => {}
                }
            }
            // Attach the possessive clitic to its possessor.
            for i in c.start..=c.end {
                if self.pos(i) == PosTag::Pos && i > c.start {
                    self.attach(i - 1, i, DepRel::Dep);
                }
            }
        }
    }

    fn chunk_containing(&self, i: usize) -> Option<&Chunk> {
        self.chunks.iter().find(|c| c.start <= i && i <= c.end)
    }

    fn chunk_heads(&self) -> Vec<usize> {
        self.chunks.iter().map(|c| c.head).collect()
    }

    fn verb_analysis(&self) -> VerbAnalysis {
        let mut be = Vec::new();
        let mut do_aux = Vec::new();
        let mut modals = Vec::new();
        let mut content = Vec::new();
        for i in 0..self.tokens.len() {
            if self.chunk_containing(i).is_some() {
                continue;
            }
            let tag = self.pos(i);
            let word = self.lower(i);
            if lexicon::is_be_form(&word) {
                be.push(i);
            } else if lexicon::is_do_form(&word) {
                do_aux.push(i);
            } else if tag == PosTag::Md {
                modals.push(i);
            } else if tag.is_verb() {
                content.push(i);
            }
        }

        // Reduced-relative participles: a VBN directly after an NP with no
        // be-form in between ("books written by X", "a film directed by Y").
        let mut partmods = Vec::new();
        let mut mains: Vec<usize> = Vec::new();
        for &v in &content {
            let is_partmod = self.pos(v) == PosTag::Vbn
                && v > 0
                && self
                    .chunk_containing(v - 1)
                    .map(|c| c.end == v - 1)
                    .unwrap_or(false)
                && !be.iter().any(|&b| b < v);
            if is_partmod {
                partmods.push(v);
            } else {
                mains.push(v);
            }
        }
        let main = mains.last().copied();
        VerbAnalysis { be, do_aux, modals, content, partmods, main }
    }

    /// Clause with a content verb: attach auxiliaries, subject, objects.
    fn attach_verbal_clause(&mut self, main: usize, verbs: &VerbAnalysis) {
        let passive = self.pos(main) == PosTag::Vbn
            && verbs.be.iter().any(|&b| b < main);

        for &b in &verbs.be {
            if b < main {
                let rel = if passive { DepRel::Auxpass } else { DepRel::Aux };
                self.attach(main, b, rel);
            }
        }
        for &d in &verbs.do_aux {
            if d < main {
                self.attach(main, d, DepRel::Aux);
            }
        }
        for &m in &verbs.modals {
            if m < main {
                self.attach(main, m, DepRel::Aux);
            }
        }

        // NPs before/after the verb (heads only, excluding partmod NPs'
        // internal structure — heads are fine).
        let heads = self.chunk_heads();
        let before: Vec<usize> = heads.iter().copied().filter(|&h| h < main).collect();
        let after: Vec<usize> = heads.iter().copied().filter(|&h| h > main).collect();

        let has_do = verbs.do_aux.iter().any(|&d| d < main);
        if passive {
            // "Which book is written by X": subject = NP nearest before.
            if let Some(&subj) = before.last() {
                self.attach(main, subj, DepRel::Nsubjpass);
            }
        } else if has_do && before.len() >= 2 {
            // "Which films did Spielberg direct?": fronted object + subject.
            let subj = *before.last().unwrap();
            self.attach(main, subj, DepRel::Nsubj);
            let fronted = before[before.len() - 2];
            self.attach(main, fronted, DepRel::Dobj);
        } else if let Some(&subj) = before.last() {
            self.attach(main, subj, DepRel::Nsubj);
        }

        // Direct object: first NP after the verb not introduced by a
        // preposition and not owned by a partmod participle.
        for &obj in &after {
            let chunk_start = self.chunk_containing(obj).map(|c| c.start).unwrap_or(obj);
            let preceded_by_prep = chunk_start > 0
                && matches!(self.pos(chunk_start - 1), PosTag::In | PosTag::To);
            let preceded_by_partmod =
                verbs.partmods.iter().any(|&p| p > main && p < chunk_start);
            if !preceded_by_prep && !preceded_by_partmod {
                // "Give me all books": pronoun right after the verb is iobj
                // when another NP follows.
                if self.pos(obj) == PosTag::Prp && after.len() > 1 {
                    self.attach(main, obj, DepRel::Iobj);
                    continue;
                }
                self.attach(main, obj, DepRel::Dobj);
                break;
            }
            if preceded_by_prep || preceded_by_partmod {
                continue;
            }
        }
    }

    /// Copular clause (no content verb): root is the predicate nominal or
    /// adjective, with `cop` + `nsubj` children.
    fn attach_copular_clause(&mut self, verbs: &VerbAnalysis) -> Option<usize> {
        let &be = verbs.be.first()?;
        let heads = self.chunk_heads();

        // "How tall is E?" — fronted predicate adjective.
        let fronted_adj = (0..be).find(|&i| {
            self.pos(i).is_adjective() && self.chunk_containing(i).is_none()
        });
        if let Some(adj) = fronted_adj {
            let subj = heads.iter().copied().find(|&h| h > be)?;
            self.attach(adj, be, DepRel::Cop);
            self.attach(adj, subj, DepRel::Nsubj);
            return Some(adj);
        }

        let before: Vec<usize> = heads.iter().copied().filter(|&h| h < be).collect();
        let after: Vec<usize> = heads.iter().copied().filter(|&h| h > be).collect();

        if be == 0 || before.is_empty() {
            // Polar copular: "Is Frank Herbert still alive?",
            // "Is Ankara the capital of Turkey?"
            let subj = *after.first()?;
            // Predicate: trailing adjective or a second NP.
            let pred_adj = ((be + 1)..self.tokens.len()).find(|&i| {
                self.pos(i).is_adjective() && self.chunk_containing(i).is_none()
            });
            if let Some(adj) = pred_adj {
                self.attach(adj, be, DepRel::Cop);
                self.attach(adj, subj, DepRel::Nsubj);
                return Some(adj);
            }
            if after.len() >= 2 {
                let pred = after[1];
                self.attach(pred, be, DepRel::Cop);
                self.attach(pred, subj, DepRel::Nsubj);
                return Some(pred);
            }
            // "Is there X?" and friends: no structure we can commit to.
            return None;
        }

        // "What is the height of E?" / "Who is the mayor of Berlin?"
        let subj = *before.last().unwrap();
        if let Some(&pred) = after.first() {
            self.attach(pred, be, DepRel::Cop);
            self.attach(pred, subj, DepRel::Nsubj);
            return Some(pred);
        }
        // "Where is Berlin?" — no predicate; root the copula itself.
        self.attach(be, subj, DepRel::Nsubj);
        Some(be)
    }

    /// Reduced relatives: `partmod(books, written)`.
    fn attach_partmods(&mut self, verbs: &VerbAnalysis) {
        for &p in &verbs.partmods {
            if let Some(c) = self.chunk_containing(p - 1) {
                let head = c.head;
                self.attach(head, p, DepRel::Partmod);
            }
        }
    }

    /// Collapses prepositions into `prep_X` / `agent` edges.
    fn attach_preps(&mut self, root: usize, verbs: &VerbAnalysis) {
        let n = self.tokens.len();
        for i in 0..n {
            if !matches!(self.pos(i), PosTag::In | PosTag::To)
                || self.chunk_containing(i).is_some()
            {
                continue;
            }
            let word = self.lower(i);
            // Object of the preposition: head of the chunk starting right after.
            let Some(pobj) = self
                .chunks
                .iter()
                .find(|c| c.start == i + 1 || (c.start == i + 2 && self.pos(i + 1) == PosTag::Dt))
                .map(|c| c.head)
            else {
                continue;
            };
            // Governor: the closest participle/verb/noun to the left.
            let governor = self.prep_governor(i, verbs, root);
            let is_passive_by = word == "by"
                && verbs
                    .content
                    .iter()
                    .chain(verbs.partmods.iter())
                    .any(|&v| v < i && self.pos(v) == PosTag::Vbn);
            if is_passive_by {
                // agent() attaches to the participle.
                let participle = (0..i)
                    .rev()
                    .find(|&v| self.pos(v) == PosTag::Vbn && self.chunk_containing(v).is_none());
                if let Some(part) = participle {
                    self.attach(part, pobj, DepRel::Agent);
                    continue;
                }
            }
            self.attach(governor, pobj, DepRel::Prep(word));
        }
    }

    /// Where a preposition attaches: `of` to the immediately preceding noun;
    /// others to the nearest verb on the left, else the clause root.
    fn prep_governor(&self, prep: usize, verbs: &VerbAnalysis, root: usize) -> usize {
        let word = self.lower(prep);
        if word == "of" && prep > 0 {
            if let Some(c) = self.chunk_containing(prep - 1) {
                return c.head;
            }
        }
        let verb_left = verbs
            .content
            .iter()
            .chain(verbs.partmods.iter())
            .copied()
            .filter(|&v| v < prep)
            .max();
        verb_left.unwrap_or(root)
    }

    /// Adverbs and wh-adverbs attach to the clause root (`advmod`), except
    /// "How" before an adjective/quantifier, which attaches to that word.
    fn attach_adverbs(&mut self, root: usize) {
        let n = self.tokens.len();
        for i in 0..n {
            match self.pos(i) {
                PosTag::Wrb => {
                    if i + 1 < n
                        && (self.pos(i + 1).is_adjective() || self.pos(i + 1) == PosTag::Rb)
                    {
                        self.attach(i + 1, i, DepRel::Advmod);
                    } else {
                        self.attach(root, i, DepRel::Advmod);
                    }
                }
                PosTag::Rb => {
                    self.attach(root, i, DepRel::Advmod);
                }
                _ => {}
            }
        }
    }

    /// Any token still unattached (and not the root / punctuation) hangs off
    /// the root with a `dep` edge so the graph stays connected.
    fn attach_leftovers(&mut self, root: usize) {
        let n = self.tokens.len();
        for i in 0..n {
            if i == root || self.pos(i) == PosTag::Punct {
                continue;
            }
            if self.edges.iter().any(|e| e.dependent == i) {
                continue;
            }
            self.attach(root, i, DepRel::Dep);
        }
    }
}

struct VerbAnalysis {
    be: Vec<usize>,
    do_aux: Vec<usize>,
    modals: Vec<usize>,
    content: Vec<usize>,
    partmods: Vec<usize>,
    main: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(g: &DepGraph, head: &str, dep: &str) -> Option<DepRel> {
        let h = g.tokens.iter().position(|t| t.text == head)?;
        let d = g.tokens.iter().position(|t| t.text == dep)?;
        g.edges.iter().find(|e| e.head == h && e.dependent == d).map(|e| e.rel.clone())
    }

    fn root_text(g: &DepGraph) -> &str {
        &g.tokens[g.root.unwrap()].text
    }

    #[test]
    fn figure1_which_book_is_written_by_orhan_pamuk() {
        let g = parse_sentence("Which book is written by Orhan Pamuk?");
        assert_eq!(root_text(&g), "written");
        assert_eq!(rel(&g, "book", "Which"), Some(DepRel::Det));
        assert_eq!(rel(&g, "written", "book"), Some(DepRel::Nsubjpass));
        assert_eq!(rel(&g, "written", "is"), Some(DepRel::Auxpass));
        assert_eq!(rel(&g, "written", "Pamuk"), Some(DepRel::Agent));
        assert_eq!(rel(&g, "Pamuk", "Orhan"), Some(DepRel::Nn));
    }

    #[test]
    fn what_is_the_height_of_michael_jordan() {
        let g = parse_sentence("What is the height of Michael Jordan?");
        assert_eq!(root_text(&g), "height");
        assert_eq!(rel(&g, "height", "is"), Some(DepRel::Cop));
        assert_eq!(rel(&g, "height", "What"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "height", "the"), Some(DepRel::Det));
        assert_eq!(rel(&g, "height", "Jordan"), Some(DepRel::Prep("of".into())));
        assert_eq!(rel(&g, "Jordan", "Michael"), Some(DepRel::Nn));
    }

    #[test]
    fn how_tall_is_michael_jordan() {
        let g = parse_sentence("How tall is Michael Jordan?");
        assert_eq!(root_text(&g), "tall");
        assert_eq!(rel(&g, "tall", "is"), Some(DepRel::Cop));
        assert_eq!(rel(&g, "tall", "Jordan"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "tall", "How"), Some(DepRel::Advmod));
    }

    #[test]
    fn where_did_abraham_lincoln_die() {
        let g = parse_sentence("Where did Abraham Lincoln die?");
        assert_eq!(root_text(&g), "die");
        assert_eq!(rel(&g, "die", "did"), Some(DepRel::Aux));
        assert_eq!(rel(&g, "die", "Lincoln"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "die", "Where"), Some(DepRel::Advmod));
        assert_eq!(rel(&g, "Lincoln", "Abraham"), Some(DepRel::Nn));
    }

    #[test]
    fn who_directed_titanic() {
        let g = parse_sentence("Who directed Titanic?");
        assert_eq!(root_text(&g), "directed");
        assert_eq!(rel(&g, "directed", "Who"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "directed", "Titanic"), Some(DepRel::Dobj));
    }

    #[test]
    fn who_is_the_mayor_of_berlin() {
        let g = parse_sentence("Who is the mayor of Berlin?");
        assert_eq!(root_text(&g), "mayor");
        assert_eq!(rel(&g, "mayor", "Who"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "mayor", "is"), Some(DepRel::Cop));
        assert_eq!(rel(&g, "mayor", "Berlin"), Some(DepRel::Prep("of".into())));
    }

    #[test]
    fn when_was_einstein_born() {
        let g = parse_sentence("When was Albert Einstein born?");
        assert_eq!(root_text(&g), "born");
        assert_eq!(rel(&g, "born", "was"), Some(DepRel::Auxpass));
        assert_eq!(rel(&g, "born", "Einstein"), Some(DepRel::Nsubjpass));
        assert_eq!(rel(&g, "born", "When"), Some(DepRel::Advmod));
    }

    #[test]
    fn which_films_did_spielberg_direct() {
        let g = parse_sentence("Which films did Spielberg direct?");
        assert_eq!(root_text(&g), "direct");
        assert_eq!(rel(&g, "direct", "Spielberg"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "direct", "films"), Some(DepRel::Dobj));
        assert_eq!(rel(&g, "films", "Which"), Some(DepRel::Det));
    }

    #[test]
    fn give_me_all_books_written_by_orhan_pamuk() {
        let g = parse_sentence("Give me all books written by Orhan Pamuk.");
        assert_eq!(root_text(&g), "Give");
        assert_eq!(rel(&g, "Give", "me"), Some(DepRel::Iobj));
        assert_eq!(rel(&g, "Give", "books"), Some(DepRel::Dobj));
        assert_eq!(rel(&g, "books", "written"), Some(DepRel::Partmod));
        assert_eq!(rel(&g, "written", "Pamuk"), Some(DepRel::Agent));
    }

    #[test]
    fn is_frank_herbert_still_alive() {
        let g = parse_sentence("Is Frank Herbert still alive?");
        assert_eq!(root_text(&g), "alive");
        assert_eq!(rel(&g, "alive", "Is"), Some(DepRel::Cop));
        assert_eq!(rel(&g, "alive", "Herbert"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "alive", "still"), Some(DepRel::Advmod));
    }

    #[test]
    fn how_many_people_live_in_turkey() {
        let g = parse_sentence("How many people live in Turkey?");
        assert_eq!(root_text(&g), "live");
        assert_eq!(rel(&g, "live", "people"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "people", "many"), Some(DepRel::Amod));
        assert_eq!(rel(&g, "many", "How"), Some(DepRel::Advmod));
        assert_eq!(rel(&g, "live", "Turkey"), Some(DepRel::Prep("in".into())));
    }

    #[test]
    fn in_which_city_was_x_born() {
        let g = parse_sentence("In which city was Ludwig van Beethoven born?");
        assert_eq!(root_text(&g), "born");
        assert_eq!(rel(&g, "born", "Beethoven"), Some(DepRel::Nsubjpass));
        assert_eq!(rel(&g, "born", "city"), Some(DepRel::Prep("in".into())));
        assert_eq!(rel(&g, "city", "which"), Some(DepRel::Det));
    }

    #[test]
    fn multiword_title_with_of() {
        let g = parse_sentence("Who wrote The Museum of Innocence?");
        assert_eq!(root_text(&g), "wrote");
        assert_eq!(rel(&g, "wrote", "Who"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "wrote", "Museum"), Some(DepRel::Dobj));
        assert_eq!(rel(&g, "Museum", "Innocence"), Some(DepRel::Prep("of".into())));
        // Mention reconstruction keeps the 'of' chain.
        let museum = g.tokens.iter().position(|t| t.text == "Museum").unwrap();
        assert_eq!(g.phrase_text(museum), "Museum of Innocence");
    }

    #[test]
    fn possessive_subject() {
        let g = parse_sentence("Who is Obama's wife?");
        assert_eq!(root_text(&g), "wife");
        assert_eq!(rel(&g, "wife", "Obama"), Some(DepRel::Poss));
        assert_eq!(rel(&g, "wife", "Who"), Some(DepRel::Nsubj));
    }

    #[test]
    fn polar_copular_with_predicate_np() {
        let g = parse_sentence("Is Ankara the capital of Turkey?");
        assert_eq!(root_text(&g), "capital");
        assert_eq!(rel(&g, "capital", "Ankara"), Some(DepRel::Nsubj));
        assert_eq!(rel(&g, "capital", "Is"), Some(DepRel::Cop));
        assert_eq!(rel(&g, "capital", "Turkey"), Some(DepRel::Prep("of".into())));
    }

    #[test]
    fn graph_is_connected_to_root() {
        let g = parse_sentence("Which book is written by Orhan Pamuk?");
        let root = g.root.unwrap();
        let covered = g.subtree(root);
        for (i, t) in g.tokens.iter().enumerate() {
            if t.pos != PosTag::Punct {
                assert!(covered.contains(&i), "token {} unattached", t.text);
            }
        }
    }

    #[test]
    fn unparseable_sentence_has_no_root() {
        // Bare NP with no verb at all.
        let g = parse_sentence("The red book");
        assert_eq!(g.root, None);
    }

    #[test]
    fn every_token_has_at_most_one_head() {
        let g = parse_sentence("Give me all books written by Orhan Pamuk.");
        for i in 0..g.tokens.len() {
            let heads = g.edges.iter().filter(|e| e.dependent == i).count();
            assert!(heads <= 1, "token {} has {} heads", g.tokens[i].text, heads);
        }
    }
}
