//! # relpat-nlp — NLP substrate for interrogative English
//!
//! The stand-in for Stanford CoreNLP used by the paper: a tokenizer,
//! rule-based lemmatizer, lexicon + morphology POS tagger, and a
//! deterministic rule-cascade dependency parser that emits collapsed
//! Stanford-style typed dependencies (`nsubjpass`, `agent`, `prep_of`, ...).
//!
//! The parser intentionally covers the question archetypes the paper's
//! examples exercise; sentences outside that coverage get no committed root,
//! which downstream triple extraction reports as "not attempted" — the same
//! behaviour (and recall profile) the paper describes.
//!
//! ```
//! use relpat_nlp::parse_sentence;
//!
//! let graph = parse_sentence("Which book is written by Orhan Pamuk?");
//! let root = graph.root.unwrap();
//! assert_eq!(graph.token(root).text, "written");
//! println!("{}", graph.to_tree_string());
//! ```

mod depparse;
mod graph;
mod lemma;
mod lexicon;
mod tagger;
mod tokenize;
mod tokens;

pub use depparse::{parse, parse_sentence};
pub use graph::{DepGraph, DepRel, Edge};
pub use lemma::lemmatize;
pub use lexicon::{is_be_form, is_do_form, is_have_form, lookup as lexicon_lookup};
pub use tagger::{tag, tag_sentence};
pub use tokenize::tokenize;
pub use tokens::{PosTag, Token};
