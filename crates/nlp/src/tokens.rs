//! Tokens and the Penn-Treebank-style POS tagset.

use std::fmt;

/// Part-of-speech tags — the Penn Treebank subset that question analysis
/// needs (the same tagset Stanford CoreNLP emits, which the paper consumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Determiner (`the`, `a`, `all`, `every`)
    Dt,
    /// Wh-determiner (`which`, `what` before a noun)
    Wdt,
    /// Wh-pronoun (`who`, `what`, `whom`)
    Wp,
    /// Possessive wh-pronoun (`whose`)
    WpPoss,
    /// Wh-adverb (`where`, `when`, `why`, `how`)
    Wrb,
    /// Noun, singular (`book`)
    Nn,
    /// Noun, plural (`books`)
    Nns,
    /// Proper noun, singular (`Pamuk`)
    Nnp,
    /// Proper noun, plural
    Nnps,
    /// Verb, base form (`write`)
    Vb,
    /// Verb, past tense (`wrote`)
    Vbd,
    /// Verb, gerund (`writing`)
    Vbg,
    /// Verb, past participle (`written`)
    Vbn,
    /// Verb, non-3rd-person singular present (`write`)
    Vbp,
    /// Verb, 3rd-person singular present (`writes`)
    Vbz,
    /// Modal (`can`, `will`, `did` is tagged VBD but acts as aux)
    Md,
    /// Adjective (`tall`)
    Jj,
    /// Adjective, comparative (`taller`)
    Jjr,
    /// Adjective, superlative (`tallest`)
    Jjs,
    /// Adverb (`still`)
    Rb,
    /// Cardinal number (`42`)
    Cd,
    /// Preposition / subordinating conjunction (`by`, `of`, `in`)
    In,
    /// `to`
    To,
    /// Personal pronoun (`me`, `it`)
    Prp,
    /// Possessive pronoun (`his`)
    PrpPoss,
    /// Coordinating conjunction (`and`)
    Cc,
    /// Existential `there`
    Ex,
    /// Possessive ending (`'s`)
    Pos,
    /// Sentence-final punctuation
    Punct,
    /// Anything unrecognized
    Other,
}

impl PosTag {
    /// True for any noun tag.
    pub fn is_noun(self) -> bool {
        matches!(self, PosTag::Nn | PosTag::Nns | PosTag::Nnp | PosTag::Nnps)
    }

    /// True for proper-noun tags.
    pub fn is_proper_noun(self) -> bool {
        matches!(self, PosTag::Nnp | PosTag::Nnps)
    }

    /// True for any verb tag (excluding modals).
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            PosTag::Vb | PosTag::Vbd | PosTag::Vbg | PosTag::Vbn | PosTag::Vbp | PosTag::Vbz
        )
    }

    /// True for any adjective tag.
    pub fn is_adjective(self) -> bool {
        matches!(self, PosTag::Jj | PosTag::Jjr | PosTag::Jjs)
    }

    /// True for wh-question tags.
    pub fn is_wh(self) -> bool {
        matches!(self, PosTag::Wdt | PosTag::Wp | PosTag::WpPoss | PosTag::Wrb)
    }

    /// The conventional Penn Treebank label.
    pub fn label(self) -> &'static str {
        match self {
            PosTag::Dt => "DT",
            PosTag::Wdt => "WDT",
            PosTag::Wp => "WP",
            PosTag::WpPoss => "WP$",
            PosTag::Wrb => "WRB",
            PosTag::Nn => "NN",
            PosTag::Nns => "NNS",
            PosTag::Nnp => "NNP",
            PosTag::Nnps => "NNPS",
            PosTag::Vb => "VB",
            PosTag::Vbd => "VBD",
            PosTag::Vbg => "VBG",
            PosTag::Vbn => "VBN",
            PosTag::Vbp => "VBP",
            PosTag::Vbz => "VBZ",
            PosTag::Md => "MD",
            PosTag::Jj => "JJ",
            PosTag::Jjr => "JJR",
            PosTag::Jjs => "JJS",
            PosTag::Rb => "RB",
            PosTag::Cd => "CD",
            PosTag::In => "IN",
            PosTag::To => "TO",
            PosTag::Prp => "PRP",
            PosTag::PrpPoss => "PRP$",
            PosTag::Cc => "CC",
            PosTag::Ex => "EX",
            PosTag::Pos => "POS",
            PosTag::Punct => ".",
            PosTag::Other => "XX",
        }
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A token with its surface form, lemma and POS tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form as written.
    pub text: String,
    /// Lemma (dictionary form), lower-cased.
    pub lemma: String,
    /// Part-of-speech tag.
    pub pos: PosTag,
    /// Zero-based position in the sentence.
    pub index: usize,
}

impl Token {
    /// Lower-cased surface form.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.text, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_class_predicates() {
        assert!(PosTag::Nnp.is_noun());
        assert!(PosTag::Nnp.is_proper_noun());
        assert!(!PosTag::Nn.is_proper_noun());
        assert!(PosTag::Vbn.is_verb());
        assert!(!PosTag::Md.is_verb());
        assert!(PosTag::Jjr.is_adjective());
        assert!(PosTag::Wdt.is_wh());
        assert!(!PosTag::Dt.is_wh());
    }

    #[test]
    fn labels_match_ptb() {
        assert_eq!(PosTag::Wdt.label(), "WDT");
        assert_eq!(PosTag::WpPoss.label(), "WP$");
        assert_eq!(PosTag::Punct.label(), ".");
    }

    #[test]
    fn token_display() {
        let t = Token { text: "written".into(), lemma: "write".into(), pos: PosTag::Vbn, index: 3 };
        assert_eq!(t.to_string(), "written/VBN");
        assert_eq!(t.lower(), "written");
    }
}
