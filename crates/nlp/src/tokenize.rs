//! Sentence tokenizer.
//!
//! Splits on whitespace, detaches terminal punctuation (`?`, `.`, `!`, `,`)
//! and the possessive clitic `'s`, and keeps hyphenated words and numbers
//! (including decimals) intact.

/// Splits a sentence into raw word strings.
pub fn tokenize(sentence: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for raw in sentence.split_whitespace() {
        let mut word = raw;
        // Strip leading punctuation/quotes.
        while let Some(c) = word.chars().next() {
            if matches!(c, '"' | '\'' | '(' | '[' | '“' | '‘') {
                word = &word[c.len_utf8()..];
            } else {
                break;
            }
        }
        // Peel trailing punctuation into separate tokens (stacked, so we
        // collect then reverse).
        let mut trailing: Vec<String> = Vec::new();
        while let Some(c) = word.chars().last() {
            if matches!(c, '?' | '.' | '!' | ',' | ';' | ':') {
                // Keep a final '.' that is part of an abbreviation-like token
                // containing other dots (e.g. "U.S."): only peel when the
                // remainder has no dot or the char is not '.'.
                if c == '.' && word[..word.len() - 1].contains('.') {
                    break;
                }
                trailing.push(c.to_string());
                word = &word[..word.len() - c.len_utf8()];
            } else if matches!(c, '"' | '\'' | ')' | ']' | '”' | '’') {
                // Closing quotes/brackets are dropped, not emitted as tokens.
                word = &word[..word.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        if let Some(stem) = word.strip_suffix("'s").or_else(|| word.strip_suffix("’s")) {
            if !stem.is_empty() {
                out.push(stem.to_string());
                out.push("'s".to_string());
                word = "";
            }
        }
        if !word.is_empty() {
            out.push(word.to_string());
        }
        out.extend(trailing.into_iter().rev());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_words_and_question_mark() {
        assert_eq!(
            tokenize("Which book is written by Orhan Pamuk?"),
            vec!["Which", "book", "is", "written", "by", "Orhan", "Pamuk", "?"]
        );
    }

    #[test]
    fn detaches_possessive_clitic() {
        assert_eq!(tokenize("Who is Obama's wife?"), vec!["Who", "is", "Obama", "'s", "wife", "?"]);
    }

    #[test]
    fn keeps_hyphens_and_decimals() {
        assert_eq!(tokenize("a well-known 1.98 figure"), vec!["a", "well-known", "1.98", "figure"]);
    }

    #[test]
    fn strips_quotes_and_brackets() {
        assert_eq!(tokenize("\"Snow\" (novel)?"), vec!["Snow", "novel", "?"]);
    }

    #[test]
    fn keeps_abbreviation_dots() {
        assert_eq!(tokenize("the U.S. is big."), vec!["the", "U.S.", "is", "big", "."]);
    }

    #[test]
    fn comma_is_separate_token() {
        assert_eq!(tokenize("Ankara, Turkey"), vec!["Ankara", ",", "Turkey"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn stacked_trailing_punctuation_in_order() {
        assert_eq!(tokenize("really?!"), vec!["really", "?", "!"]);
    }
}
