//! Question-archetype sweep: the parser must produce the expected clause
//! structure for every covered QALD-style form, and must degrade gracefully
//! (no panic, no root commitment) outside coverage.

use relpat_nlp::{parse_sentence, DepRel, PosTag};
use relpat_obs::Rng;

/// Deterministic random string over `alphabet` with length in `min..=max`.
fn arb_string(rng: &mut Rng, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| alphabet[rng.gen_range(0usize..alphabet.len())] as char).collect()
}

/// Asserts the root token text of a parsed question.
fn assert_root(question: &str, expected: &str) {
    let g = parse_sentence(question);
    let root = g.root.unwrap_or_else(|| panic!("no root for {question:?}"));
    assert_eq!(g.token(root).text, expected, "{question}");
}

/// Finds the relation between two words, if any.
fn relation(question: &str, head: &str, dep: &str) -> Option<DepRel> {
    let g = parse_sentence(question);
    let h = g.tokens.iter().position(|t| t.text == head)?;
    let d = g.tokens.iter().position(|t| t.text == dep)?;
    g.edges.iter().find(|e| e.head == h && e.dependent == d).map(|e| e.rel.clone())
}

#[test]
fn passive_family() {
    assert_root("Which song is written by Michael Jackson?", "written");
    assert_root("Which game was developed by Vertex Systems?", "developed");
    assert_root("Which album was released by Thriller?", "released");
    assert_eq!(
        relation("Which city was founded by the Romans?", "founded", "city"),
        Some(DepRel::Nsubjpass)
    );
}

#[test]
fn active_wh_subject_family() {
    assert_root("Who founded Vertex Systems?", "founded");
    assert_root("Who composed Thriller?", "composed");
    assert_root("Who produced Avatar?", "produced");
    assert_eq!(relation("Who painted the tower?", "painted", "Who"), Some(DepRel::Nsubj));
}

#[test]
fn copular_of_family() {
    assert_root("What is the currency of Turkey?", "currency");
    assert_root("What is the official language of Germany?", "language");
    assert_root("Who is the leader of France?", "leader");
    assert_eq!(
        relation("What is the area of Turkey?", "area", "Turkey"),
        Some(DepRel::Prep("of".into()))
    );
}

#[test]
fn adverbial_wh_family() {
    assert_root("Where did Helen Fischer work?", "work");
    assert_root("When did the war start?", "start");
    for q in ["Where does Maria Santos live?", "When did Viktor Novak die?"] {
        let g = parse_sentence(q);
        assert!(g.root.is_some(), "{q}");
        let root = g.root.unwrap();
        assert!(
            g.children(root).iter().any(|(_, r)| **r == DepRel::Advmod),
            "{q}: no advmod"
        );
    }
}

#[test]
fn fronted_object_family() {
    assert_root("Which songs did Michael Jackson write?", "write");
    assert_root("Which games did Vertex Systems develop?", "develop");
    assert_eq!(
        relation("Which books did Frank Herbert write?", "write", "books"),
        Some(DepRel::Dobj)
    );
}

#[test]
fn imperative_family() {
    assert_root("Give me all songs written by Michael Jackson.", "Give");
    assert_root("Give me all games developed by Vertex Systems.", "Give");
    assert_eq!(
        relation("Give me all albums released by Thriller.", "albums", "released"),
        Some(DepRel::Partmod)
    );
}

#[test]
fn polar_family() {
    assert_root("Is Istanbul the largest city of Turkey?", "city");
    assert_root("Was Titanic directed by James Cameron?", "directed");
    assert_root("Is Michelle Obama still alive?", "alive");
}

#[test]
fn possessive_family() {
    assert_root("Who is Obama's wife?", "wife");
    assert_eq!(relation("Who is Obama's wife?", "wife", "Obama"), Some(DepRel::Poss));
    assert_root("What is Turkey's capital?", "capital");
    assert_eq!(relation("What is Turkey's capital?", "capital", "Turkey"), Some(DepRel::Poss));
}

#[test]
fn out_of_coverage_degrades_without_root_or_with_flat_parse() {
    // These must not panic; a root is allowed but not required.
    for q in [
        "Colorless green ideas sleep furiously and quietly together",
        "books books books books",
        "of by with from",
        "Who who who?",
        "",
        "?",
        "12345 67890",
    ] {
        let g = parse_sentence(q);
        // Connectivity invariant: every edge references valid tokens.
        for e in &g.edges {
            assert!(e.head < g.tokens.len());
            assert!(e.dependent < g.tokens.len());
        }
    }
}

#[test]
fn every_token_single_headed_across_archetypes() {
    for q in [
        "Which book is written by Orhan Pamuk?",
        "What is the height of Michael Jordan?",
        "Give me all films directed by James Cameron.",
        "How many people live in Turkey?",
        "Is Ankara the capital of Turkey?",
        "In which city was Ludwig van Beethoven born?",
    ] {
        let g = parse_sentence(q);
        for i in 0..g.tokens.len() {
            let heads = g.edges.iter().filter(|e| e.dependent == i).count();
            assert!(heads <= 1, "{q}: token {} has {heads} heads", g.tokens[i].text);
        }
        // No self-loops, no cycles reachable from root.
        for e in &g.edges {
            assert_ne!(e.head, e.dependent, "{q}: self loop");
        }
        if let Some(root) = g.root {
            // Root must not have a head.
            assert!(g.head_of(root).is_none(), "{q}: root has a head");
        }
    }
}

/// The parser must never panic and must keep its structural invariants on
/// arbitrary word soup. 128 seeded random cases, reproducible by index.
#[test]
fn parser_total_on_arbitrary_input() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xA11CE + case);
        let s = arb_string(
            &mut rng,
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 ,.?!'",
            0,
            80,
        );
        let g = parse_sentence(&s);
        for e in &g.edges {
            assert!(e.head < g.tokens.len());
            assert!(e.dependent < g.tokens.len());
            assert_ne!(e.head, e.dependent);
        }
        for i in 0..g.tokens.len() {
            let heads = g.edges.iter().filter(|e| e.dependent == i).count();
            assert!(heads <= 1);
        }
        if let Some(root) = g.root {
            assert!(root < g.tokens.len());
            assert!(g.head_of(root).is_none());
        }
    }
}

/// Tagging must be total and assign every token a tag with a lemma.
#[test]
fn tagger_total() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xB0B + case);
        let s = arb_string(
            &mut rng,
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz ",
            0,
            60,
        );
        let tokens = relpat_nlp::tag_sentence(&s);
        for t in &tokens {
            assert!(!t.lemma.is_empty());
            assert!(t.pos.label().len() <= 4);
        }
    }
}

/// Capitalized unknown mid-sentence words are proper nouns (the backbone
/// of entity mention detection).
#[test]
fn unknown_capitalized_is_nnp() {
    let consonants = b"bcdfgkpqvxz";
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xCAFE + case);
        let upper = (b'A' + rng.gen_range(0u32..26) as u8) as char;
        let tail = arb_string(&mut rng, consonants, 3, 8);
        let w = format!("{upper}{tail}");
        let s = format!("Who wrote {w}?");
        let tokens = relpat_nlp::tag_sentence(&s);
        let t = tokens.iter().find(|t| t.text == w).unwrap();
        assert_eq!(t.pos, PosTag::Nnp);
    }
}
