//! Integration tests for data-property pattern mining — the §5 research gap
//! the extended system closes — plus property-based invariants on the
//! pattern store and support-set tree.

use proptest::prelude::*;
use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_patterns::{
    extract_occurrences, generate_corpus, mine, CorpusConfig, Occurrence, PatternStore,
    PatternTree, Sentence,
};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

#[test]
fn data_corpus_is_superset_of_object_corpus() {
    let base = generate_corpus(kb(), &CorpusConfig::default());
    let with_data = generate_corpus(kb(), &CorpusConfig::with_data_properties());
    assert!(with_data.len() > base.len());
    // Data sentences verbalize literals.
    assert!(with_data.iter().any(|s| s.text.contains("meters tall")));
    assert!(with_data.iter().any(|s| s.text.contains("was born on")));
}

#[test]
fn height_pattern_mined_from_literal_sentences() {
    let mined = mine(kb(), &CorpusConfig::with_data_properties());
    let tall = mined.store.candidates_for_word("tall");
    assert!(
        tall.iter().any(|c| c.property == "height" && c.is_data),
        "{tall:?}"
    );
    // And via the full phrase.
    let phrase = mined.store.candidates_for_phrase("$v meter tall");
    assert!(phrase.iter().any(|c| c.property == "height" && c.is_data), "{phrase:?}");
}

#[test]
fn population_pattern_covers_value_before_entity_order() {
    // "{V} people live in {S}" puts the literal first.
    let mined = mine(kb(), &CorpusConfig::with_data_properties());
    let live = mined.store.candidates_for_word("live");
    assert!(
        live.iter().any(|c| c.property == "populationTotal" && c.is_data),
        "{live:?}"
    );
}

#[test]
fn date_patterns_supervised_against_date_literals() {
    let mined = mine(kb(), &CorpusConfig::with_data_properties());
    let bear = mined.store.candidates_for_word("bear");
    assert!(
        bear.iter().any(|c| c.property == "birthDate" && c.is_data),
        "{bear:?}"
    );
    // Object evidence for birthPlace must still top the *object* candidates
    // (data sentences may out-frequency it overall, since every person has a
    // birth date but not every corpus sentence names a place).
    let top_object = bear.iter().find(|c| !c.is_data).unwrap();
    assert_eq!(top_object.property, "birthPlace");
}

#[test]
fn object_only_corpus_yields_no_data_patterns() {
    let mined = mine(kb(), &CorpusConfig::default());
    for (pattern, candidates) in mined.store.patterns() {
        for c in candidates {
            assert!(!c.is_data, "unexpected data pattern {pattern:?} → {c:?}");
        }
    }
}

#[test]
fn handcrafted_sentence_with_unknown_value_is_ignored() {
    // A literal that matches no KB fact must produce no supervision.
    let corpus =
        vec![Sentence { text: "Michael Jordan is 9.99 meters tall.".to_string() }];
    let occ = extract_occurrences(kb(), &corpus);
    assert!(occ.iter().all(|o| !o.is_data), "{occ:?}");
}

#[test]
fn handcrafted_sentence_with_matching_value_is_supervised() {
    // 1.98 is the athlete's height fact in the KB.
    let corpus =
        vec![Sentence { text: "Michael Jordan is 1.98 meters tall.".to_string() }];
    let occ = extract_occurrences(kb(), &corpus);
    assert!(
        occ.iter().any(|o| o.is_data && o.property == "height"),
        "{occ:?}"
    );
}

// ------------------------------------------------------------- proptests

fn arb_occurrence() -> impl Strategy<Value = Occurrence> {
    (
        prop_oneof![
            Just("die in"),
            Just("bear in"),
            Just("write by"),
            Just("$v meter tall"),
        ],
        prop_oneof![
            Just("deathPlace"),
            Just("birthPlace"),
            Just("author"),
            Just("height"),
        ],
        any::<bool>(),
        any::<bool>(),
        0u32..50,
    )
        .prop_map(|(pattern, property, inverse, is_data, pair)| Occurrence {
            pattern: pattern.to_string(),
            property: property.to_string(),
            inverse,
            is_data,
            pair: (
                relpat_rdf::Iri::new(format!("http://e/{pair}a")),
                relpat_rdf::Iri::new(format!("http://e/{pair}b")),
            ),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Store invariant: word-index frequencies are sums over the phrase
    /// index, and every candidate list is sorted by descending frequency.
    #[test]
    fn store_frequencies_consistent(occs in prop::collection::vec(arb_occurrence(), 0..80)) {
        let store = PatternStore::from_occurrences(&occs);
        for (_, candidates) in store.patterns() {
            for w in candidates.windows(2) {
                prop_assert!(w[0].freq >= w[1].freq);
            }
            let total: u64 = candidates.iter().map(|c| c.freq).sum();
            prop_assert!(total as usize <= occs.len());
        }
        // Phrase totals equal occurrence totals.
        let phrase_total: u64 = store
            .patterns()
            .flat_map(|(_, cs)| cs.iter().map(|c| c.freq))
            .sum();
        prop_assert_eq!(phrase_total as usize, occs.len());
    }

    /// Tree invariant: support size never exceeds insert count, and
    /// subsumption at overlap 1.0 is antisymmetric for distinct supports.
    #[test]
    fn tree_support_and_subsumption(pairs in prop::collection::vec((0u32..20, any::<bool>()), 1..60)) {
        let mut tree = PatternTree::new();
        for (pair, which) in &pairs {
            tree.insert(if *which { "die in" } else { "bear in" }, *pair);
        }
        for pattern in ["die in", "bear in"] {
            if let Some(s) = tree.support(pattern) {
                prop_assert!(s.len() <= pairs.len());
            }
        }
        if tree.support("die in").is_some() && tree.support("bear in").is_some() {
            use relpat_patterns::Subsumption::*;
            let ab = tree.subsumption("die in", "bear in", 1.0);
            let ba = tree.subsumption("bear in", "die in", 1.0);
            match (ab, ba) {
                (Equivalent, Equivalent) | (Independent, Independent) => {}
                (SubsumedBy, Subsumes) | (Subsumes, SubsumedBy) => {}
                other => prop_assert!(false, "inconsistent subsumption {other:?}"),
            }
        }
    }
}
