//! Integration tests for data-property pattern mining — the §5 research gap
//! the extended system closes — plus property-based invariants on the
//! pattern store and support-set tree.

use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_obs::Rng;
use relpat_patterns::{
    extract_occurrences, generate_corpus, mine, CorpusConfig, Occurrence, PatternStore,
    PatternTree, Sentence,
};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

#[test]
fn data_corpus_is_superset_of_object_corpus() {
    let base = generate_corpus(kb(), &CorpusConfig::default());
    let with_data = generate_corpus(kb(), &CorpusConfig::with_data_properties());
    assert!(with_data.len() > base.len());
    // Data sentences verbalize literals.
    assert!(with_data.iter().any(|s| s.text.contains("meters tall")));
    assert!(with_data.iter().any(|s| s.text.contains("was born on")));
}

#[test]
fn height_pattern_mined_from_literal_sentences() {
    let mined = mine(kb(), &CorpusConfig::with_data_properties());
    let tall = mined.store.candidates_for_word("tall");
    assert!(
        tall.iter().any(|c| c.property == "height" && c.is_data),
        "{tall:?}"
    );
    // And via the full phrase.
    let phrase = mined.store.candidates_for_phrase("$v meter tall");
    assert!(phrase.iter().any(|c| c.property == "height" && c.is_data), "{phrase:?}");
}

#[test]
fn population_pattern_covers_value_before_entity_order() {
    // "{V} people live in {S}" puts the literal first.
    let mined = mine(kb(), &CorpusConfig::with_data_properties());
    let live = mined.store.candidates_for_word("live");
    assert!(
        live.iter().any(|c| c.property == "populationTotal" && c.is_data),
        "{live:?}"
    );
}

#[test]
fn date_patterns_supervised_against_date_literals() {
    let mined = mine(kb(), &CorpusConfig::with_data_properties());
    let bear = mined.store.candidates_for_word("bear");
    assert!(
        bear.iter().any(|c| c.property == "birthDate" && c.is_data),
        "{bear:?}"
    );
    // Object evidence for birthPlace must still top the *object* candidates
    // (data sentences may out-frequency it overall, since every person has a
    // birth date but not every corpus sentence names a place).
    let top_object = bear.iter().find(|c| !c.is_data).unwrap();
    assert_eq!(top_object.property, "birthPlace");
}

#[test]
fn object_only_corpus_yields_no_data_patterns() {
    let mined = mine(kb(), &CorpusConfig::default());
    for (pattern, candidates) in mined.store.patterns() {
        for c in candidates {
            assert!(!c.is_data, "unexpected data pattern {pattern:?} → {c:?}");
        }
    }
}

#[test]
fn handcrafted_sentence_with_unknown_value_is_ignored() {
    // A literal that matches no KB fact must produce no supervision.
    let corpus =
        vec![Sentence { text: "Michael Jordan is 9.99 meters tall.".to_string() }];
    let occ = extract_occurrences(kb(), &corpus);
    assert!(occ.iter().all(|o| !o.is_data), "{occ:?}");
}

#[test]
fn handcrafted_sentence_with_matching_value_is_supervised() {
    // 1.98 is the athlete's height fact in the KB.
    let corpus =
        vec![Sentence { text: "Michael Jordan is 1.98 meters tall.".to_string() }];
    let occ = extract_occurrences(kb(), &corpus);
    assert!(
        occ.iter().any(|o| o.is_data && o.property == "height"),
        "{occ:?}"
    );
}

// --------------------------------------------- randomized invariant sweeps
// (Formerly proptest; now seeded deterministic cases via `relpat_obs::Rng`.)

fn arb_occurrence(rng: &mut Rng) -> Occurrence {
    let patterns = ["die in", "bear in", "write by", "$v meter tall"];
    let properties = ["deathPlace", "birthPlace", "author", "height"];
    let pair = rng.gen_range(0u32..50);
    Occurrence {
        pattern: patterns[rng.gen_range(0usize..patterns.len())].to_string(),
        property: properties[rng.gen_range(0usize..properties.len())].to_string(),
        inverse: rng.gen_bool(0.5),
        is_data: rng.gen_bool(0.5),
        pair: (
            relpat_rdf::Iri::new(format!("http://e/{pair}a")),
            relpat_rdf::Iri::new(format!("http://e/{pair}b")),
        ),
    }
}

/// Store invariant: word-index frequencies are sums over the phrase
/// index, and every candidate list is sorted by descending frequency.
#[test]
fn store_frequencies_consistent() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x57_0e + case);
        let n = rng.gen_range(0usize..80);
        let occs: Vec<Occurrence> = (0..n).map(|_| arb_occurrence(&mut rng)).collect();
        let store = PatternStore::from_occurrences(&occs);
        for (_, candidates) in store.patterns() {
            for w in candidates.windows(2) {
                assert!(w[0].freq >= w[1].freq);
            }
            let total: u64 = candidates.iter().map(|c| c.freq).sum();
            assert!(total as usize <= occs.len());
        }
        // Phrase totals equal occurrence totals.
        let phrase_total: u64 = store
            .patterns()
            .flat_map(|(_, cs)| cs.iter().map(|c| c.freq))
            .sum();
        assert_eq!(phrase_total as usize, occs.len());
    }
}

/// Tree invariant: support size never exceeds insert count, and
/// subsumption at overlap 1.0 is antisymmetric for distinct supports.
#[test]
fn tree_support_and_subsumption() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x7e_ee + case);
        let n = rng.gen_range(1usize..60);
        let pairs: Vec<(u32, bool)> =
            (0..n).map(|_| (rng.gen_range(0u32..20), rng.gen_bool(0.5))).collect();
        let mut tree = PatternTree::new();
        for (pair, which) in &pairs {
            tree.insert(if *which { "die in" } else { "bear in" }, *pair);
        }
        for pattern in ["die in", "bear in"] {
            if let Some(s) = tree.support(pattern) {
                assert!(s.len() <= pairs.len());
            }
        }
        if tree.support("die in").is_some() && tree.support("bear in").is_some() {
            use relpat_patterns::Subsumption::*;
            let ab = tree.subsumption("die in", "bear in", 1.0);
            let ba = tree.subsumption("bear in", "die in", 1.0);
            match (ab, ba) {
                (Equivalent, Equivalent) | (Independent, Independent) => {}
                (SubsumedBy, Subsumes) | (Subsumes, SubsumedBy) => {}
                other => panic!("inconsistent subsumption {other:?}"),
            }
        }
    }
}
