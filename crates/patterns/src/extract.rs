//! Pattern extraction: mention detection, normalization, distant supervision.
//!
//! Follows PATTY's first stage (paper §2.2.3): find sentences containing two
//! knowledge-base entities, lift the connecting text as a *relational
//! pattern*, normalize it, and label it with every property that holds
//! between the pair in the KB (distant supervision). Ambiguous mentions
//! contribute through every reading that matches a fact, which is exactly
//! how noisy patterns (and PATTY's `born in` / `deathPlace` artifact) arise.

use relpat_kb::{normalize_label, KnowledgeBase};
use relpat_nlp::{tag, tokenize, PosTag};
use relpat_rdf::vocab::dbont;
use relpat_rdf::{Iri, Term};
use relpat_obs::fx::FxHashMap;

use crate::corpus::Sentence;

/// One supervised pattern occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    /// Normalized pattern text, e.g. `"bear in"`, `"capital of"`; data
    /// patterns mark the literal position with `$v` (`"$v meter tall"`).
    pub pattern: String,
    /// Property local name the pair supports (`birthPlace`).
    pub property: String,
    /// True when the textual order is object-then-subject relative to the
    /// RDF fact (`{O} wrote {S}` → the `author` fact runs S→O in RDF).
    pub inverse: bool,
    /// True for data-property patterns (entity–literal, not entity–entity).
    pub is_data: bool,
    /// The supporting entity pair, in textual order (for data patterns the
    /// second element is the subject again; support sets still distinguish
    /// facts).
    pub pair: (Iri, Iri),
}

/// An entity mention in a token stream.
#[derive(Debug, Clone)]
struct Mention {
    start: usize,
    end: usize, // exclusive
    entities: Vec<Iri>,
}

/// Detects KB-entity mentions by longest-match label lookup.
pub struct MentionDetector<'kb> {
    kb: &'kb KnowledgeBase,
    max_label_tokens: usize,
}

impl<'kb> MentionDetector<'kb> {
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        let max_label_tokens = kb
            .labels_iter()
            .map(|(l, _)| l.split_whitespace().count() + 1) // +1 for articles
            .max()
            .unwrap_or(1);
        MentionDetector { kb, max_label_tokens }
    }

    /// Finds non-overlapping mentions, longest-first greedy left-to-right.
    fn detect(&self, tokens: &[String]) -> Vec<Mention> {
        let mut mentions = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut found = None;
            let max_j = (i + self.max_label_tokens).min(tokens.len());
            for j in (i + 1..=max_j).rev() {
                let span = tokens[i..j].join(" ");
                let normalized = normalize_label(&span);
                if normalized.is_empty() {
                    continue;
                }
                let hits = self.kb.entities_with_label(&normalized);
                if !hits.is_empty() {
                    found = Some(Mention { start: i, end: j, entities: hits.to_vec() });
                    break;
                }
            }
            match found {
                Some(m) => {
                    i = m.end;
                    mentions.push(m);
                }
                None => i += 1,
            }
        }
        mentions
    }
}

/// Normalizes the connecting text of a pattern: lemmatize, drop
/// determiners/adverbs/auxiliaries/punctuation, keep content words and
/// prepositions. `"was born in"` → `"bear in"`, `"is the capital of"` →
/// `"capital of"`.
pub fn normalize_pattern(words: &[String]) -> String {
    let tagged = tag(words);
    let mut kept: Vec<String> = Vec::new();
    for t in &tagged {
        let lower = t.lower();
        // Auxiliaries and light "have" carry no relational content; keeping
        // "have" would make it the strongest word of patterns like
        // "has a population of", polluting the word index.
        if relpat_nlp::is_be_form(&lower)
            || relpat_nlp::is_do_form(&lower)
            || relpat_nlp::is_have_form(&lower)
        {
            continue;
        }
        match t.pos {
            PosTag::Dt | PosTag::Rb | PosTag::Punct | PosTag::Md | PosTag::Pos
            | PosTag::Prp | PosTag::PrpPoss => {}
            _ => kept.push(t.lemma.clone()),
        }
    }
    kept.join(" ")
}

/// Extracts supervised pattern occurrences from a corpus.
pub fn extract_occurrences(kb: &KnowledgeBase, corpus: &[Sentence]) -> Vec<Occurrence> {
    let detector = MentionDetector::new(kb);
    let mut out = Vec::new();
    // Cache predicate terms to avoid re-making them per sentence.
    let props: Vec<(String, Term)> = kb
        .ontology
        .object_properties
        .iter()
        .map(|p| (p.name.to_string(), Term::iri(dbont::iri(p.name))))
        .collect();

    let data_props: Vec<(String, Term)> = kb
        .ontology
        .data_properties
        .iter()
        .map(|p| (p.name.to_string(), Term::iri(dbont::iri(p.name))))
        .collect();

    for sentence in corpus {
        let tokens = tokenize(&sentence.text);
        let mentions = detector.detect(&tokens);
        // Consider consecutive mention pairs only (PATTY's shortest-path
        // restriction; our sentences have exactly two mentions anyway).
        for window in mentions.windows(2) {
            let (m1, m2) = (&window[0], &window[1]);
            if m2.start <= m1.end {
                continue;
            }
            let between = &tokens[m1.end..m2.start];
            if between.is_empty() || between.len() > 6 {
                continue;
            }
            let pattern = normalize_pattern(between);
            if pattern.is_empty() {
                continue;
            }
            for e1 in &m1.entities {
                for e2 in &m2.entities {
                    let t1 = Term::Iri(e1.clone());
                    let t2 = Term::Iri(e2.clone());
                    for (name, pred) in &props {
                        // Forward: textual (e1, e2) matches RDF (e1 p e2).
                        if !kb.graph.triples_matching(Some(&t1), Some(pred), Some(&t2)).is_empty()
                        {
                            out.push(Occurrence {
                                pattern: pattern.clone(),
                                property: name.clone(),
                                inverse: false,
                                is_data: false,
                                pair: (e1.clone(), e2.clone()),
                            });
                        }
                        if !kb.graph.triples_matching(Some(&t2), Some(pred), Some(&t1)).is_empty()
                        {
                            out.push(Occurrence {
                                pattern: pattern.clone(),
                                property: name.clone(),
                                inverse: true,
                                is_data: false,
                                pair: (e1.clone(), e2.clone()),
                            });
                        }
                    }
                }
            }
        }

        // Data patterns: one entity mention + one literal-looking token.
        extract_data_occurrences(kb, &tokens, &mentions, &data_props, &mut out);
    }
    out
}

/// A token that could be a literal value: number or ISO date.
fn is_literal_token(token: &str) -> bool {
    token.parse::<f64>().is_ok()
        || (token.len() == 10 && token.as_bytes()[4] == b'-' && token.as_bytes()[7] == b'-')
}

/// Lifts entity–literal patterns: the connecting text plus up to three
/// normalized context words after the value, with the value position marked
/// `$v` (`"X is 1.98 meters tall"` → `"$v meter tall"`). Supervised against
/// data-property facts whose lexical form equals the token.
fn extract_data_occurrences(
    kb: &KnowledgeBase,
    tokens: &[String],
    mentions: &[Mention],
    data_props: &[(String, Term)],
    out: &mut Vec<Occurrence>,
) {
    for m in mentions {
        for (li, token) in tokens.iter().enumerate() {
            if (m.start..m.end).contains(&li) || !is_literal_token(token) {
                continue;
            }
            let pattern = if li >= m.end {
                if li - m.end > 6 {
                    continue;
                }
                let prefix = normalize_pattern(&tokens[m.end..li]);
                let tail_end = (li + 4).min(tokens.len());
                let suffix = normalize_pattern(&tokens[li + 1..tail_end]);
                join_data_pattern(&prefix, &suffix)
            } else {
                if m.start - li > 6 {
                    continue;
                }
                let between = normalize_pattern(&tokens[li + 1..m.start]);
                if between.is_empty() {
                    continue;
                }
                format!("$v {between}")
            };
            if pattern == "$v" {
                continue;
            }
            for entity in &m.entities {
                let subject = Term::Iri(entity.clone());
                for (name, pred) in data_props {
                    let matches = kb
                        .graph
                        .triples_matching(Some(&subject), Some(pred), None)
                        .into_iter()
                        .any(|t| {
                            t.object
                                .as_literal()
                                .is_some_and(|l| l.lexical_form() == token)
                        });
                    if matches {
                        out.push(Occurrence {
                            pattern: pattern.clone(),
                            property: name.clone(),
                            inverse: false,
                            is_data: true,
                            pair: (entity.clone(), entity.clone()),
                        });
                    }
                }
            }
        }
    }
}

fn join_data_pattern(prefix: &str, suffix: &str) -> String {
    match (prefix.is_empty(), suffix.is_empty()) {
        (true, true) => "$v".to_string(),
        (true, false) => format!("$v {suffix}"),
        (false, true) => format!("{prefix} $v"),
        (false, false) => format!("{prefix} $v {suffix}"),
    }
}

/// Convenience: dense ids for entity pairs (used by the support-set
/// prefix tree).
#[derive(Debug, Default)]
pub struct PairInterner {
    ids: FxHashMap<(Iri, Iri), u32>,
}

impl PairInterner {
    pub fn intern(&mut self, pair: &(Iri, Iri)) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(pair.clone()).or_insert(next)
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusConfig};
    use relpat_kb::{generate, KbConfig};

    fn kb() -> KnowledgeBase {
        generate(&KbConfig::tiny())
    }

    #[test]
    fn normalization_examples() {
        let norm = |s: &str| normalize_pattern(&tokenize(s));
        assert_eq!(norm("was born in"), "bear in");
        assert_eq!(norm("is the capital of"), "capital of");
        assert_eq!(norm("died at"), "die at");
        assert_eq!(norm("is married to"), "marry to");
        assert_eq!(norm("wrote"), "write");
        assert_eq!(norm("is a book by"), "book by");
        assert_eq!(norm("was directed by"), "direct by");
    }

    #[test]
    fn mention_detection_finds_paper_entities() {
        let kb = kb();
        let detector = MentionDetector::new(&kb);
        let tokens = tokenize("Snow was written by Orhan Pamuk.");
        let mentions = detector.detect(&tokens);
        assert_eq!(mentions.len(), 2);
        assert_eq!(mentions[0].entities.len(), 1);
        assert!(mentions[1].entities[0].as_str().ends_with("Orhan_Pamuk"));
    }

    #[test]
    fn mention_detection_handles_articles_and_multiword() {
        let kb = kb();
        let detector = MentionDetector::new(&kb);
        let tokens = tokenize("Orhan Pamuk wrote The Museum of Innocence.");
        let mentions = detector.detect(&tokens);
        assert_eq!(mentions.len(), 2);
        assert_eq!(mentions[1].end - mentions[1].start, 4);
    }

    #[test]
    fn ambiguous_mention_lists_all_candidates() {
        let kb = kb();
        let detector = MentionDetector::new(&kb);
        let tokens = tokenize("Michael Jordan lives here.");
        let mentions = detector.detect(&tokens);
        assert_eq!(mentions[0].entities.len(), 2);
    }

    #[test]
    fn distant_supervision_labels_author_patterns() {
        let kb = kb();
        let corpus = vec![Sentence { text: "Snow was written by Orhan Pamuk.".into() }];
        let occ = extract_occurrences(&kb, &corpus);
        assert!(
            occ.iter().any(|o| o.property == "author" && o.pattern == "write by" && !o.inverse),
            "got {occ:?}"
        );
    }

    #[test]
    fn inverse_direction_detected() {
        let kb = kb();
        let corpus = vec![Sentence { text: "Orhan Pamuk wrote Snow.".into() }];
        let occ = extract_occurrences(&kb, &corpus);
        // Textual order (Pamuk, Snow) but the fact is Snow→author→Pamuk.
        assert!(occ.iter().any(|o| o.property == "author" && o.inverse));
    }

    #[test]
    fn full_corpus_extraction_yields_many_occurrences() {
        let kb = kb();
        let corpus = generate_corpus(&kb, &CorpusConfig::default());
        let occ = extract_occurrences(&kb, &corpus);
        assert!(occ.len() > 200, "only {} occurrences", occ.len());
        // Core paper pattern: "die in" supports deathPlace.
        assert!(occ.iter().any(|o| o.pattern == "die in" && o.property == "deathPlace"));
        // And the noise: some "bear in/at" occurrence supports deathPlace
        // (possible because of injected confusions or co-located facts) —
        // at minimum birthPlace support must dominate.
        let bear_birth =
            occ.iter().filter(|o| o.pattern.starts_with("bear") && o.property == "birthPlace").count();
        assert!(bear_birth > 0);
    }

    #[test]
    fn pair_interner_is_stable() {
        let mut pi = PairInterner::default();
        let a = (Iri::new("http://e/a"), Iri::new("http://e/b"));
        let b = (Iri::new("http://e/b"), Iri::new("http://e/a"));
        assert_eq!(pi.intern(&a), 0);
        assert_eq!(pi.intern(&b), 1);
        assert_eq!(pi.intern(&a), 0);
        assert_eq!(pi.len(), 2);
    }
}
