//! The relational pattern store the QA pipeline queries (paper §2.2.3).
//!
//! Aggregates supervised occurrences into two indexes:
//!
//! - **phrase index**: full normalized pattern → properties with frequency
//!   (`"bear in"` → `{birthPlace: 812, deathPlace: 13, residence: 9}`);
//! - **word index**: single content word → properties with frequency,
//!   aggregated over every pattern containing the word — this is the
//!   paper's "the word *die* may occur in many forms in pattern texts; we
//!   count all occurrences and assign it as a frequency value".

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use relpat_obs::fx::FxHashMap;
use relpat_obs::PatternLookupStats;

use crate::extract::Occurrence;

/// A property candidate with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyFreq {
    /// Property local name (`deathPlace`).
    pub property: String,
    /// True when the pattern's textual direction is the inverse of the RDF
    /// fact direction.
    pub inverse: bool,
    /// True for data-property patterns (mined from entity–literal text).
    pub is_data: bool,
    /// Number of supporting occurrences.
    pub freq: u64,
}

/// Immutable pattern store built from extraction output.
///
/// Lookups keep running hit/miss tallies (relaxed atomics, so `&self`
/// lookups stay lock-free); [`lookup_stats`](Self::lookup_stats) exposes
/// them and the QA pipeline samples deltas around the mapping stage to
/// attribute lookups to individual question traces.
#[derive(Debug, Default)]
pub struct PatternStore {
    phrase_index: FxHashMap<String, Vec<PropertyFreq>>,
    word_index: FxHashMap<String, Vec<PropertyFreq>>,
    pattern_count: usize,
    phrase_hits: AtomicU64,
    phrase_misses: AtomicU64,
    word_hits: AtomicU64,
    word_misses: AtomicU64,
}

impl PatternStore {
    /// Aggregates occurrences into the store.
    pub fn from_occurrences(occurrences: &[Occurrence]) -> Self {
        let mut phrase: FxHashMap<String, FxHashMap<(String, bool, bool), u64>> =
            FxHashMap::default();
        for o in occurrences {
            *phrase
                .entry(o.pattern.clone())
                .or_default()
                .entry((o.property.clone(), o.inverse, o.is_data))
                .or_insert(0) += 1;
        }

        let mut word: FxHashMap<String, FxHashMap<(String, bool, bool), u64>> =
            FxHashMap::default();
        for (pattern, props) in &phrase {
            for token in pattern.split_whitespace() {
                if is_function_word(token) || token == "$v" {
                    continue;
                }
                let entry = word.entry(token.to_string()).or_default();
                for (key, freq) in props {
                    *entry.entry(key.clone()).or_insert(0) += freq;
                }
            }
        }

        let pattern_count = phrase.len();
        PatternStore {
            phrase_index: phrase.into_iter().map(|(k, v)| (k, sorted(v))).collect(),
            word_index: word.into_iter().map(|(k, v)| (k, sorted(v))).collect(),
            pattern_count,
            ..PatternStore::default()
        }
    }

    /// Property candidates for a full normalized pattern, most frequent
    /// first.
    pub fn candidates_for_phrase(&self, pattern: &str) -> &[PropertyFreq] {
        match self.phrase_index.get(pattern) {
            Some(v) => {
                self.phrase_hits.fetch_add(1, Relaxed);
                v.as_slice()
            }
            None => {
                self.phrase_misses.fetch_add(1, Relaxed);
                &[]
            }
        }
    }

    /// Property candidates for a single (lemmatized) word, most frequent
    /// first — the lookup the paper's predicate mapping uses.
    pub fn candidates_for_word(&self, word: &str) -> &[PropertyFreq] {
        match self.word_index.get(word) {
            Some(v) => {
                self.word_hits.fetch_add(1, Relaxed);
                v.as_slice()
            }
            None => {
                self.word_misses.fetch_add(1, Relaxed);
                &[]
            }
        }
    }

    /// Cumulative hit/miss counts over this store's lifetime.
    pub fn lookup_stats(&self) -> PatternLookupStats {
        PatternLookupStats {
            phrase_hits: self.phrase_hits.load(Relaxed),
            phrase_misses: self.phrase_misses.load(Relaxed),
            word_hits: self.word_hits.load(Relaxed),
            word_misses: self.word_misses.load(Relaxed),
        }
    }

    /// Number of distinct normalized patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// All normalized patterns (for taxonomy construction and reports).
    pub fn patterns(&self) -> impl Iterator<Item = (&str, &[PropertyFreq])> {
        self.phrase_index.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

fn sorted(map: FxHashMap<(String, bool, bool), u64>) -> Vec<PropertyFreq> {
    let mut v: Vec<PropertyFreq> = map
        .into_iter()
        .map(|((property, inverse, is_data), freq)| PropertyFreq {
            property,
            inverse,
            is_data,
            freq,
        })
        .collect();
    v.sort_by(|a, b| b.freq.cmp(&a.freq).then_with(|| a.property.cmp(&b.property)));
    v
}

/// Prepositions and connector words do not identify a relation on their own.
fn is_function_word(word: &str) -> bool {
    matches!(
        word,
        "of" | "in" | "at" | "by" | "to" | "from" | "on" | "for" | "with" | "as" | "through"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::Iri;

    fn occ(pattern: &str, property: &str, inverse: bool, n: usize) -> Vec<Occurrence> {
        (0..n)
            .map(|i| Occurrence {
                pattern: pattern.to_string(),
                property: property.to_string(),
                inverse,
                is_data: false,
                pair: (Iri::new(format!("http://e/{i}a")), Iri::new(format!("http://e/{i}b"))),
            })
            .collect()
    }

    fn paper_store() -> PatternStore {
        // Paper §2.2.3: "die" maps to deathPlace (high), birthPlace and
        // residence (low) because of corpus noise.
        let mut all = Vec::new();
        all.extend(occ("die in", "deathPlace", false, 40));
        all.extend(occ("die at", "deathPlace", false, 12));
        all.extend(occ("die in", "birthPlace", false, 3));
        all.extend(occ("die in", "residence", false, 2));
        all.extend(occ("bear in", "birthPlace", false, 50));
        all.extend(occ("bear in", "deathPlace", false, 4));
        all.extend(occ("write by", "author", false, 30));
        all.extend(occ("write", "author", true, 25));
        PatternStore::from_occurrences(&all)
    }

    #[test]
    fn phrase_lookup_ranks_by_frequency() {
        let store = paper_store();
        let cands = store.candidates_for_phrase("die in");
        assert_eq!(cands[0].property, "deathPlace");
        assert_eq!(cands[0].freq, 40);
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn word_lookup_aggregates_across_patterns() {
        let store = paper_store();
        let cands = store.candidates_for_word("die");
        // deathPlace: 40 + 12 = 52 across "die in"/"die at".
        assert_eq!(cands[0].property, "deathPlace");
        assert_eq!(cands[0].freq, 52);
        // The paper's ranking claim: deathPlace > birthPlace, residence.
        let freq_of = |p: &str| cands.iter().find(|c| c.property == p).map(|c| c.freq);
        assert!(freq_of("deathPlace") > freq_of("birthPlace"));
        assert!(freq_of("birthPlace") >= freq_of("residence"));
    }

    #[test]
    fn direction_is_preserved_distinctly() {
        let store = paper_store();
        let cands = store.candidates_for_word("write");
        assert!(cands.iter().any(|c| c.property == "author" && !c.inverse));
        assert!(cands.iter().any(|c| c.property == "author" && c.inverse));
    }

    #[test]
    fn function_words_not_indexed() {
        let store = paper_store();
        assert!(store.candidates_for_word("in").is_empty());
        assert!(store.candidates_for_word("by").is_empty());
    }

    #[test]
    fn unknown_lookups_are_empty() {
        let store = paper_store();
        assert!(store.candidates_for_phrase("fly over").is_empty());
        assert!(store.candidates_for_word("zzz").is_empty());
    }

    #[test]
    fn lookup_stats_count_hits_and_misses() {
        let store = paper_store();
        assert_eq!(store.lookup_stats(), PatternLookupStats::default());
        store.candidates_for_phrase("die in");
        store.candidates_for_phrase("fly over");
        store.candidates_for_word("die");
        store.candidates_for_word("die");
        store.candidates_for_word("zzz");
        let s = store.lookup_stats();
        assert_eq!(s.phrase_hits, 1);
        assert_eq!(s.phrase_misses, 1);
        assert_eq!(s.word_hits, 2);
        assert_eq!(s.word_misses, 1);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn pattern_count_counts_distinct_patterns() {
        let store = paper_store();
        // die in, die at, bear in, write by, write
        assert_eq!(store.pattern_count(), 5);
        assert_eq!(store.patterns().count(), 5);
    }
}
