//! # relpat-patterns — PATTY-style relational pattern mining
//!
//! Reimplements the PATTY machinery the paper relies on (§2.2.3): a corpus
//! (synthesized from knowledge-base facts, since NYT/Wikipedia cannot be
//! shipped), mention detection, pattern normalization, distant supervision,
//! frequency-ranked pattern→property indexes, and the support-set prefix
//! tree from which the subsumption taxonomy is computed.
//!
//! ```no_run
//! use relpat_kb::{generate, KbConfig};
//! use relpat_patterns::{mine, CorpusConfig};
//!
//! let kb = generate(&KbConfig::tiny());
//! let mined = mine(&kb, &CorpusConfig::default());
//! let candidates = mined.store.candidates_for_word("die");
//! assert_eq!(candidates[0].property, "deathPlace");
//! ```

mod corpus;
mod extract;
mod store;
mod tree;

pub use corpus::{generate_corpus, templates_for, CorpusConfig, Sentence};
pub use extract::{extract_occurrences, normalize_pattern, MentionDetector, Occurrence, PairInterner};
pub use store::{PatternStore, PropertyFreq};
pub use tree::{PatternTree, Subsumption};

use relpat_kb::KnowledgeBase;

/// Everything the mining pipeline produces.
pub struct Mined {
    pub store: PatternStore,
    pub tree: PatternTree,
    /// Number of corpus sentences processed.
    pub sentences: usize,
    /// Number of supervised occurrences extracted.
    pub occurrences: usize,
}

/// Runs the full mining pipeline: synthesize corpus → detect mentions →
/// lift + normalize patterns → distant supervision → indexes + taxonomy.
pub fn mine(kb: &KnowledgeBase, config: &CorpusConfig) -> Mined {
    let sentences = generate_corpus(kb, config);
    let occurrences = extract_occurrences(kb, &sentences);
    let store = PatternStore::from_occurrences(&occurrences);
    let mut interner = PairInterner::default();
    let mut tree = PatternTree::new();
    for o in &occurrences {
        let pair = interner.intern(&o.pair);
        tree.insert(&o.pattern, pair);
    }
    Mined { store, tree, sentences: sentences.len(), occurrences: occurrences.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, KbConfig};

    #[test]
    fn end_to_end_mining_matches_paper_claims() {
        let kb = generate(&KbConfig::tiny());
        let mined = mine(&kb, &CorpusConfig::default());
        assert!(mined.sentences > 200);
        assert!(mined.occurrences > 200);
        assert!(mined.store.pattern_count() > 20);

        // §2.2.3: "die" ranks deathPlace above birthPlace/residence.
        let die = mined.store.candidates_for_word("die");
        assert!(!die.is_empty());
        assert_eq!(die[0].property, "deathPlace");

        // "bear" (lemma of born) ranks birthPlace first, but noise gives it
        // deathPlace company — the paper's PATTY criticism.
        let bear = mined.store.candidates_for_word("bear");
        assert_eq!(bear[0].property, "birthPlace");

        // "write" supports author (books) and writer (songs).
        let write = mined.store.candidates_for_word("write");
        let props: Vec<&str> = write.iter().map(|c| c.property.as_str()).collect();
        assert!(props.contains(&"author"));
        assert!(props.contains(&"writer"));

        // Tree indexes every pattern in the store.
        assert_eq!(mined.tree.len(), mined.store.pattern_count());
    }

    #[test]
    fn capital_pattern_maps_inverse() {
        let kb = generate(&KbConfig::tiny());
        let mined = mine(&kb, &CorpusConfig::default());
        // "{O} is the capital of {S}" puts the city first: textual order is
        // inverse of the capital fact (Country → City).
        let caps = mined.store.candidates_for_phrase("capital of");
        assert!(caps.iter().any(|c| c.property == "capital" && c.inverse));
    }
}
