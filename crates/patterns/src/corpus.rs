//! Synthetic corpus generator.
//!
//! PATTY mined its patterns from the New York Times archive and Wikipedia.
//! We cannot ship those corpora, so we synthesize one with the same
//! *structural* property: sentences that verbalize facts between typed
//! entity pairs, phrased many different ways, with a controlled amount of
//! noise (the paper highlights PATTY's `born in` pattern leaking into the
//! `deathPlace` relation — our noise injection reproduces exactly that
//! class of error).

use relpat_obs::Rng;
use relpat_kb::KnowledgeBase;
use relpat_rdf::vocab::{dbont, res};
use relpat_rdf::Term;

/// Configuration for corpus synthesis.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    pub seed: u64,
    /// How many surface realizations to sample per fact (upper bound).
    pub max_realizations: usize,
    /// Probability that a fact is verbalized with a template of a
    /// *confusable* property (PATTY-style noise).
    pub noise_rate: f64,
    /// Also verbalize data-property facts ("X is 1.98 meters tall"), so the
    /// miner can learn data-property patterns — the capability the paper's
    /// §5 lists as an open research gap.
    pub include_data_properties: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            max_realizations: 3,
            noise_rate: 0.06,
            include_data_properties: false,
        }
    }
}

impl CorpusConfig {
    /// Corpus including data-property sentences ("X is 1.98 meters tall") —
    /// the paper's §5 research gap, used by the extended system.
    pub fn with_data_properties() -> Self {
        CorpusConfig { include_data_properties: true, ..CorpusConfig::default() }
    }
}

/// One corpus sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    pub text: String,
}

/// Surface templates per object property. `{S}` is the RDF subject's label,
/// `{O}` the object's. Phrasing diversity is the whole point: the extractor
/// must map "born in", "born at", "passed away in" etc. onto properties by
/// distant supervision, not by knowing the template list.
pub fn templates_for(property: &str) -> &'static [&'static str] {
    match property {
        "author" => &[
            "{O} wrote {S}",
            "{S} was written by {O}",
            "{S} is a book by {O}",
            "{O} is the author of {S}",
            "{O} penned {S}",
        ],
        "writer" => &["{O} wrote the song {S}", "{S} was written by {O}"],
        "director" => &[
            "{O} directed {S}",
            "{S} was directed by {O}",
            "{S} is a film by {O}",
            "{O} is the director of {S}",
        ],
        "starring" => &["{S} stars {O}", "{O} starred in {S}", "{O} appeared in {S}"],
        "producer" => &["{O} produced {S}", "{S} was produced by {O}"],
        "musicComposer" => &["{O} composed {S}", "{S} was composed by {O}"],
        "artist" => &["{O} released the album {S}", "{S} is an album by {O}"],
        "birthPlace" => &[
            "{S} was born in {O}",
            "{S} was born at {O}",
            "{S} is a native of {O}",
        ],
        "deathPlace" => &[
            "{S} died in {O}",
            "{S} died at {O}",
            "{S} passed away in {O}",
        ],
        "residence" => &["{S} lives in {O}", "{S} resides in {O}"],
        "spouse" => &[
            "{S} married {O}",
            "{S} is married to {O}",
            "{O} is the spouse of {S}",
            "{S} wed {O}",
        ],
        "child" => &["{O} is the child of {S}", "{S} is the parent of {O}"],
        "capital" => &["{O} is the capital of {S}", "{O} is the capital city of {S}"],
        "country" => &[
            "{S} is located in {O}",
            "{S} is a city in {O}",
            "{S} lies in {O}",
        ],
        "largestCity" => &["{O} is the largest city of {S}"],
        "officialLanguage" => &[
            "{O} is the official language of {S}",
            "{O} is spoken in {S}",
        ],
        "currency" => &["{O} is the currency of {S}"],
        "leaderName" => &[
            "{O} is the leader of {S}",
            "{O} leads {S}",
            "{O} is the president of {S}",
        ],
        "mayor" => &["{O} is the mayor of {S}", "{O} governs {S}"],
        "location" => &["{S} is located in {O}"],
        "headquarter" => &["{S} is headquartered in {O}", "{S} is based in {O}"],
        "foundedBy" => &["{S} was founded by {O}", "{O} founded {S}", "{O} established {S}"],
        "keyPerson" => &["{O} runs {S}"],
        "developer" => &["{S} was developed by {O}", "{O} developed {S}"],
        "publisher" => &["{S} was published by {O}"],
        "crosses" => &["{S} crosses {O}", "{S} spans {O}"],
        "mouthCountry" => &["{S} flows through {O}", "{S} runs through {O}"],
        "bandMember" => &["{O} is a member of {S}", "{O} plays in {S}"],
        "almaMater" => &["{S} studied at {O}", "{S} graduated from {O}"],
        _ => &[],
    }
}

/// Surface templates for data properties: `{S}` is the subject's label,
/// `{V}` the literal value. Only used when
/// [`CorpusConfig::include_data_properties`] is set.
pub fn data_templates_for(property: &str) -> &'static [&'static str] {
    match property {
        "height" => &["{S} is {V} meters tall", "{S} stands {V} meters tall"],
        "populationTotal" => &[
            "{S} has a population of {V}",
            "{S} has {V} inhabitants",
            "{V} people live in {S}",
        ],
        "birthDate" => &["{S} was born on {V}"],
        "deathDate" => &["{S} died on {V}", "{S} passed away on {V}"],
        "numberOfPages" => &["{S} has {V} pages", "{S} runs to {V} pages"],
        "numberOfEmployees" => &["{S} employs {V} people", "{S} has {V} employees"],
        "elevation" => &["{S} rises {V} meters", "{S} is {V} meters high"],
        "length" => &["{S} is {V} kilometers long"],
        "depth" => &["{S} is {V} meters deep"],
        "areaTotal" => &["{S} covers {V} square kilometers"],
        "foundingDate" => &["{S} was founded on {V}"],
        "releaseDate" => &["{S} was released on {V}", "{S} came out on {V}"],
        _ => &[],
    }
}

/// Properties whose surface forms plausibly get confused in a noisy corpus:
/// when noise fires, a fact of the keyed property is verbalized with a
/// template of one of the listed properties. `born in` showing up for
/// `deathPlace` is the paper's own example; `lives in` for `birthPlace`
/// models people being described as living where they were born.
fn confusable(property: &str) -> &'static [&'static str] {
    match property {
        "birthPlace" => &["deathPlace", "residence"],
        "deathPlace" => &["birthPlace"],
        "residence" => &["birthPlace", "deathPlace"],
        "author" => &["writer"],
        "director" => &["producer"],
        _ => &[],
    }
}

/// Synthesizes the corpus from every object-property fact in the KB.
pub fn generate_corpus(kb: &KnowledgeBase, config: &CorpusConfig) -> Vec<Sentence> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    for prop_def in &kb.ontology.object_properties {
        let templates = templates_for(prop_def.name);
        if templates.is_empty() {
            continue;
        }
        let pred = Term::iri(dbont::iri(prop_def.name));
        for triple in kb.graph.triples_matching(None, Some(&pred), None) {
            let (Term::Iri(s), Term::Iri(o)) = (&triple.subject, &triple.object) else {
                continue;
            };
            if !s.as_str().starts_with(res::NS) || !o.as_str().starts_with(res::NS) {
                continue;
            }
            let (Some(s_label), Some(o_label)) = (kb.label_of(s), kb.label_of(o)) else {
                continue;
            };
            let n = rng.gen_range(1..=config.max_realizations);
            for _ in 0..n {
                // Noise: verbalize with a confusable property's template.
                let confusions = confusable(prop_def.name);
                let source_templates = if !confusions.is_empty() && rng.gen_bool(config.noise_rate)
                {
                    let pick = confusions[rng.gen_range(0..confusions.len())];
                    let t = templates_for(pick);
                    if t.is_empty() {
                        templates
                    } else {
                        t
                    }
                } else {
                    templates
                };
                let template = source_templates[rng.gen_range(0..source_templates.len())];
                let text = template.replace("{S}", s_label).replace("{O}", o_label);
                out.push(Sentence { text: format!("{text}.") });
            }
        }
    }
    if config.include_data_properties {
        for prop_def in &kb.ontology.data_properties {
            let templates = data_templates_for(prop_def.name);
            if templates.is_empty() {
                continue;
            }
            let pred = Term::iri(dbont::iri(prop_def.name));
            for triple in kb.graph.triples_matching(None, Some(&pred), None) {
                let (Term::Iri(s), Term::Literal(lit)) = (&triple.subject, &triple.object)
                else {
                    continue;
                };
                let Some(s_label) = kb.label_of(s) else { continue };
                let n = rng.gen_range(1..=config.max_realizations);
                for _ in 0..n {
                    let template = templates[rng.gen_range(0..templates.len())];
                    let text =
                        template.replace("{S}", s_label).replace("{V}", lit.lexical_form());
                    out.push(Sentence { text: format!("{text}.") });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, KbConfig};

    #[test]
    fn every_object_property_has_templates() {
        let kb = generate(&KbConfig::tiny());
        for p in &kb.ontology.object_properties {
            assert!(
                !templates_for(p.name).is_empty(),
                "no templates for {}",
                p.name
            );
        }
    }

    #[test]
    fn templates_have_both_slots() {
        for p in ["author", "birthPlace", "spouse", "capital"] {
            for t in templates_for(p) {
                assert!(t.contains("{S}") && t.contains("{O}"), "{t}");
            }
        }
    }

    #[test]
    fn corpus_is_deterministic_and_substantial() {
        let kb = generate(&KbConfig::tiny());
        let config = CorpusConfig::default();
        let a = generate_corpus(&kb, &config);
        let b = generate_corpus(&kb, &config);
        assert_eq!(a, b);
        assert!(a.len() > 200, "corpus too small: {}", a.len());
    }

    #[test]
    fn corpus_mentions_paper_entities() {
        let kb = generate(&KbConfig::tiny());
        let corpus = generate_corpus(&kb, &CorpusConfig::default());
        assert!(corpus.iter().any(|s| s.text.contains("Orhan Pamuk")));
        assert!(corpus.iter().any(|s| s.text.contains("Abraham Lincoln")));
    }

    #[test]
    fn noise_rate_zero_eliminates_confusions() {
        let kb = generate(&KbConfig::tiny());
        let clean =
            generate_corpus(&kb, &CorpusConfig { noise_rate: 0.0, ..CorpusConfig::default() });
        // Michael Jackson died in Los Angeles; with zero noise no sentence
        // may claim he was born there.
        assert!(!clean
            .iter()
            .any(|s| s.text.contains("Michael Jackson was born in Los Angeles")));
    }

    #[test]
    fn unknown_property_has_no_templates() {
        assert!(templates_for("wikiPageWikiLink").is_empty());
    }
}
