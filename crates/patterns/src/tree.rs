//! Support-set prefix tree and pattern subsumption taxonomy.
//!
//! PATTY arranges patterns in a semantic taxonomy by comparing their
//! *support sets* (the entity pairs each pattern was observed with): pattern
//! A subsumes B when supp(B) ⊆ supp(A); mutual inclusion makes them
//! synonymous. A prefix tree over pattern tokens stores the support sets and
//! answers the set-intersection queries the subsumption computation needs
//! (paper §2.2.3's summary of Nakashole et al.).

use relpat_obs::fx::{FxHashMap, FxHashSet};

/// Relationship between two patterns' support sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsumption {
    /// supp(A) == supp(B): synonymous patterns.
    Equivalent,
    /// supp(A) ⊂ supp(B): B is the more general pattern.
    SubsumedBy,
    /// supp(B) ⊂ supp(A): A is the more general pattern.
    Subsumes,
    /// Overlapping or disjoint supports.
    Independent,
}

#[derive(Debug, Default)]
struct Node {
    children: FxHashMap<String, usize>,
    /// Support set of the pattern ending at this node (if any).
    support: Option<FxHashSet<u32>>,
}

/// Prefix tree over pattern token sequences with per-pattern support sets.
#[derive(Debug)]
pub struct PatternTree {
    nodes: Vec<Node>,
    /// Pattern string → terminal node, for direct lookups.
    terminals: FxHashMap<String, usize>,
}

impl Default for PatternTree {
    fn default() -> Self {
        PatternTree { nodes: vec![Node::default()], terminals: FxHashMap::default() }
    }
}

impl PatternTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one observation of `pattern` supported by entity-pair `pair`.
    pub fn insert(&mut self, pattern: &str, pair: u32) {
        let mut node = 0usize;
        for token in pattern.split_whitespace() {
            node = match self.nodes[node].children.get(token) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[node].children.insert(token.to_string(), n);
                    n
                }
            };
        }
        self.nodes[node].support.get_or_insert_with(FxHashSet::default).insert(pair);
        self.terminals.insert(pattern.to_string(), node);
    }

    /// The support set of a pattern.
    pub fn support(&self, pattern: &str) -> Option<&FxHashSet<u32>> {
        self.terminals.get(pattern).and_then(|&n| self.nodes[n].support.as_ref())
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.terminals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terminals.is_empty()
    }

    /// All stored patterns.
    pub fn patterns(&self) -> impl Iterator<Item = &str> {
        self.terminals.keys().map(String::as_str)
    }

    /// Size of the support intersection of two patterns.
    pub fn intersection_size(&self, a: &str, b: &str) -> usize {
        match (self.support(a), self.support(b)) {
            (Some(sa), Some(sb)) => {
                let (small, large) = if sa.len() <= sb.len() { (sa, sb) } else { (sb, sa) };
                small.iter().filter(|x| large.contains(x)).count()
            }
            _ => 0,
        }
    }

    /// Subsumption relation between two patterns, with a tolerance: a
    /// fraction `min_overlap` (e.g. 0.95) of the smaller support must lie in
    /// the larger one to count as inclusion — PATTY uses soft inclusion to
    /// survive noise.
    pub fn subsumption(&self, a: &str, b: &str, min_overlap: f64) -> Subsumption {
        let (Some(sa), Some(sb)) = (self.support(a), self.support(b)) else {
            return Subsumption::Independent;
        };
        let inter = self.intersection_size(a, b) as f64;
        let a_in_b = !sa.is_empty() && inter / sa.len() as f64 >= min_overlap;
        let b_in_a = !sb.is_empty() && inter / sb.len() as f64 >= min_overlap;
        match (a_in_b, b_in_a) {
            (true, true) => Subsumption::Equivalent,
            (true, false) => Subsumption::SubsumedBy,
            (false, true) => Subsumption::Subsumes,
            (false, false) => Subsumption::Independent,
        }
    }

    /// Groups patterns into synonym sets (mutual soft inclusion), the
    /// WordNet-of-relations structure PATTY produces.
    pub fn synonym_sets(&self, min_overlap: f64) -> Vec<Vec<String>> {
        let patterns: Vec<&str> = {
            let mut p: Vec<&str> = self.patterns().collect();
            p.sort_unstable();
            p
        };
        let mut assigned: FxHashSet<usize> = FxHashSet::default();
        let mut sets: Vec<Vec<String>> = Vec::new();
        for (i, &a) in patterns.iter().enumerate() {
            if assigned.contains(&i) {
                continue;
            }
            let mut set = vec![a.to_string()];
            assigned.insert(i);
            for (j, &b) in patterns.iter().enumerate().skip(i + 1) {
                if assigned.contains(&j) {
                    continue;
                }
                if self.subsumption(a, b, min_overlap) == Subsumption::Equivalent {
                    set.push(b.to_string());
                    assigned.insert(j);
                }
            }
            sets.push(set);
        }
        sets
    }

    /// Taxonomy edges `(specific, general)`: strict subsumptions between
    /// patterns, transitively reduced (only minimal generalizations kept).
    pub fn taxonomy_edges(&self, min_overlap: f64) -> Vec<(String, String)> {
        let patterns: Vec<&str> = {
            let mut p: Vec<&str> = self.patterns().collect();
            p.sort_unstable();
            p
        };
        let mut parents: FxHashMap<&str, Vec<&str>> = FxHashMap::default();
        for &a in &patterns {
            for &b in &patterns {
                if a != b && self.subsumption(a, b, min_overlap) == Subsumption::SubsumedBy {
                    parents.entry(a).or_default().push(b);
                }
            }
        }
        let mut edges = Vec::new();
        for (&child, ps) in &parents {
            for &p in ps {
                // Keep only minimal parents: no other parent q of child with
                // q strictly below p.
                let minimal = !ps.iter().any(|&q| {
                    q != p && self.subsumption(q, p, min_overlap) == Subsumption::SubsumedBy
                });
                if minimal {
                    edges.push((child.to_string(), p.to_string()));
                }
            }
        }
        edges.sort();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "person write book" examples: "write by" seen with every authored
    /// pair, "pen" with a strict subset, "compose" with a disjoint set.
    fn sample() -> PatternTree {
        let mut t = PatternTree::new();
        for pair in 0..10 {
            t.insert("write by", pair);
        }
        for pair in 0..4 {
            t.insert("pen by", pair);
        }
        for pair in 0..10 {
            t.insert("author of", pair);
        }
        for pair in 20..25 {
            t.insert("compose by", pair);
        }
        t
    }

    #[test]
    fn insert_and_support() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.support("write by").unwrap().len(), 10);
        assert_eq!(t.support("pen by").unwrap().len(), 4);
        assert!(t.support("fly to").is_none());
    }

    #[test]
    fn shared_prefix_does_not_merge_supports() {
        let mut t = PatternTree::new();
        t.insert("die in", 1);
        t.insert("die at", 2);
        // "die" alone is a prefix node, not a pattern.
        assert!(t.support("die").is_none());
        assert_eq!(t.support("die in").unwrap().len(), 1);
    }

    #[test]
    fn intersection_sizes() {
        let t = sample();
        assert_eq!(t.intersection_size("write by", "pen by"), 4);
        assert_eq!(t.intersection_size("write by", "compose by"), 0);
        assert_eq!(t.intersection_size("write by", "author of"), 10);
    }

    #[test]
    fn subsumption_relations() {
        let t = sample();
        assert_eq!(t.subsumption("pen by", "write by", 1.0), Subsumption::SubsumedBy);
        assert_eq!(t.subsumption("write by", "pen by", 1.0), Subsumption::Subsumes);
        assert_eq!(t.subsumption("write by", "author of", 1.0), Subsumption::Equivalent);
        assert_eq!(t.subsumption("write by", "compose by", 1.0), Subsumption::Independent);
    }

    #[test]
    fn synonym_sets_group_equivalents() {
        let t = sample();
        let sets = t.synonym_sets(0.95);
        let with_write = sets.iter().find(|s| s.contains(&"write by".to_string())).unwrap();
        assert!(with_write.contains(&"author of".to_string()));
        assert!(!with_write.contains(&"compose by".to_string()));
    }

    #[test]
    fn taxonomy_edges_point_to_minimal_parents() {
        let mut t = sample();
        // middle layer: "novel by" between "pen by" and "write by".
        for pair in 0..6 {
            t.insert("novel by", pair);
        }
        let edges = t.taxonomy_edges(1.0);
        // pen by → novel by (minimal), not pen by → write by (transitive).
        assert!(edges.contains(&("pen by".to_string(), "novel by".to_string())));
        assert!(!edges.contains(&("pen by".to_string(), "write by".to_string())));
    }

    #[test]
    fn soft_inclusion_tolerates_noise() {
        let mut t = PatternTree::new();
        for pair in 0..20 {
            t.insert("bear in", pair);
        }
        for pair in 0..19 {
            t.insert("native of", pair);
        }
        t.insert("native of", 99); // one noisy pair outside "bear in"
        assert_eq!(t.subsumption("native of", "bear in", 1.0), Subsumption::Independent);
        assert_eq!(t.subsumption("native of", "bear in", 0.9), Subsumption::Equivalent);
    }
}
