//! Planner equivalence gates (wired into ci.sh as `planning-equivalence`).
//!
//! 1. Seeded sweep: the beam planner's output must equal the exact top-k of
//!    the full cartesian product (the fixed `CartesianExhaustive` reference
//!    materializes everything and truncates on final scores only) across
//!    random weight matrices — including negative weights (the class that
//!    exposed the old mid-fold truncation bug), NaN weights, score ties
//!    (generation-order tie-break preserved), and all `preferred_inverse`
//!    orientations.
//! 2. Table-2 gate: the standard beam pipeline answers every QALD question
//!    bit-identically to the paper's cartesian + exhaustive-execution
//!    baseline, while building ≤ 51 and executing ≤ 31 queries (the paper's
//!    §2.3 run built 51 and executed 31).

use relpat_kb::{generate, qald_questions, KbConfig, KnowledgeBase};
use relpat_obs::Rng;
use relpat_patterns::{mine, CorpusConfig};
use relpat_qa::{
    build_queries_planned, extract, AnswerConfig, BuiltQuery, CandidateSource, MappedQuestion,
    MappedSlot, MappedTriple, Pipeline, PipelineConfig, PlannerStrategy, PropertyCandidate,
    QuestionAnalysis, ResolvedEntity,
};
use std::cmp::Ordering;
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

/// §2.1 analyses for the two query shapes (SELECT and ASK).
fn analyses() -> &'static (QuestionAnalysis, QuestionAnalysis) {
    static A: OnceLock<(QuestionAnalysis, QuestionAnalysis)> = OnceLock::new();
    A.get_or_init(|| {
        let select = extract(&relpat_nlp::parse_sentence("Which book is written by Orhan Pamuk?"))
            .expect("select analysis");
        let ask = extract(&relpat_nlp::parse_sentence("Is Ankara the capital of Turkey?"))
            .expect("ask analysis");
        (select, ask)
    })
}

/// Object properties of the tiny ontology the sweep draws candidates from.
const PROPERTY_POOL: [&str; 8] =
    ["author", "publisher", "director", "starring", "capital", "spouse", "writer", "deathPlace"];

/// A randomized weight: small integers (to force ties), negatives (the
/// truncation-bug class), occasionally NaN (0/0 pattern normalizations).
fn arb_weight(rng: &mut Rng) -> f64 {
    if rng.gen_bool(0.08) {
        f64::NAN
    } else {
        rng.gen_range(0u32..25) as f64 - 12.0
    }
}

fn arb_candidate(rng: &mut Rng) -> PropertyCandidate {
    PropertyCandidate {
        property: PROPERTY_POOL[rng.gen_range(0usize..PROPERTY_POOL.len())].to_string(),
        is_data: false,
        preferred_inverse: match rng.gen_range(0u32..3) {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        weight: arb_weight(rng),
        source: CandidateSource::RelationalPattern,
    }
}

/// A randomized mapped question: 1–3 relation triples, 1–6 candidates each,
/// pointing at the Orhan Pamuk entity.
fn arb_mapped(rng: &mut Rng) -> MappedQuestion {
    let pamuk = ResolvedEntity {
        iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
        label: "Orhan Pamuk".into(),
        score: 1.0,
    };
    let triples = (0..rng.gen_range(1usize..=3))
        .map(|_| MappedTriple::Relation {
            subject: MappedSlot::Var,
            object: MappedSlot::Entity(pamuk.clone()),
            candidates: (0..rng.gen_range(1usize..=6)).map(|_| arb_candidate(rng)).collect(),
        })
        .collect();
    MappedQuestion { triples }
}

/// Bit-exact query-list equality: same SPARQL text in the same order, and
/// scores identical under `total_cmp` (which distinguishes NaN payloads and
/// signed zeros — plain `==` would wave NaN-scored drift through).
fn assert_identical(beam: &[BuiltQuery], cartesian: &[BuiltQuery], context: &str) {
    assert_eq!(beam.len(), cartesian.len(), "{context}: lengths differ");
    for (i, (b, c)) in beam.iter().zip(cartesian.iter()).enumerate() {
        assert_eq!(b.sparql, c.sparql, "{context}: query {i} differs");
        assert_eq!(
            b.score.total_cmp(&c.score),
            Ordering::Equal,
            "{context}: query {i} score {} vs {}",
            b.score,
            c.score
        );
    }
}

#[test]
fn seeded_sweep_beam_equals_exact_topk_of_full_product() {
    let kb = kb();
    let (select, ask) = analyses();
    let mut nonempty = 0usize;
    let mut multi_set = 0usize;
    for case in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0xBEA5 + case);
        let mapped = arb_mapped(&mut rng);
        let analysis = if rng.gen_bool(0.3) { ask } else { select };
        let max = rng.gen_range(1usize..=60);
        let (beam, beam_stats) =
            build_queries_planned(kb, analysis, &mapped, max, PlannerStrategy::Beam);
        let (cart, cart_stats) =
            build_queries_planned(kb, analysis, &mapped, max, PlannerStrategy::CartesianExhaustive);
        let context = format!("case {case} max {max}");
        assert_identical(&beam, &cart, &context);
        assert!(beam.len() <= max, "{context}: cap violated");
        // The ranking is non-increasing under the total order.
        for w in beam.windows(2) {
            assert_ne!(w[0].score.total_cmp(&w[1].score), Ordering::Less, "{context}");
        }
        // Emission accounting agrees between the strategies (pre-dedup).
        assert_eq!(beam_stats.emitted, cart_stats.emitted, "{context}");
        if !beam.is_empty() {
            nonempty += 1;
            if mapped.triples.len() > 1 {
                multi_set += 1;
            }
        }
    }
    // The sweep must actually exercise the lattice, not vacuously compare
    // empty outputs (domain/range checks void some random readings).
    assert!(nonempty >= 100, "only {nonempty}/200 cases built queries");
    assert!(multi_set >= 20, "only {multi_set} multi-triple cases built queries");
}

#[test]
fn ties_preserve_generation_order_tie_break() {
    // All-equal weights: every assignment scores identically, so the output
    // order is pure tie-break. Both strategies must emit the lexicographic
    // generation order (earlier-listed candidates and orientations first).
    let kb = kb();
    let (select, _) = analyses();
    let pamuk = ResolvedEntity {
        iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
        label: "Orhan Pamuk".into(),
        score: 1.0,
    };
    let cand = |prop: &str| PropertyCandidate {
        property: prop.to_string(),
        is_data: false,
        preferred_inverse: Some(false),
        weight: 2.0,
        source: CandidateSource::RelationalPattern,
    };
    let mapped = MappedQuestion {
        triples: vec![
            MappedTriple::Relation {
                subject: MappedSlot::Var,
                object: MappedSlot::Entity(pamuk.clone()),
                candidates: vec![cand("author"), cand("publisher"), cand("director")],
            },
            MappedTriple::Relation {
                subject: MappedSlot::Var,
                object: MappedSlot::Entity(pamuk),
                candidates: vec![cand("author"), cand("publisher")],
            },
        ],
    };
    for max in [1, 2, 3, 5, 50] {
        let (beam, _) = build_queries_planned(kb, select, &mapped, max, PlannerStrategy::Beam);
        let (cart, _) =
            build_queries_planned(kb, select, &mapped, max, PlannerStrategy::CartesianExhaustive);
        assert_identical(&beam, &cart, &format!("tied max {max}"));
        assert!(!beam.is_empty());
        // First emitted assignment is the first-listed candidate pair.
        assert!(
            beam[0].sparql.matches("/author>").count() == 2,
            "tie-break must favor generation order: {}",
            beam[0].sparql
        );
    }
}

#[test]
fn table2_gate_identical_answers_with_fewer_queries() {
    let kb = generate(&KbConfig::tiny());
    let questions = qald_questions(&kb);
    let mined = mine(&kb, &CorpusConfig::default());
    let mut pipeline = Pipeline::with_pattern_store(&kb, mined.store, PipelineConfig::standard());

    let beam = relpat_eval::run_benchmark(&pipeline, &questions);

    // The paper's §2.3 baseline: full cartesian product, every candidate
    // executed (no ranked early termination).
    pipeline.set_config(PipelineConfig {
        planner: PlannerStrategy::CartesianExhaustive,
        answer: AnswerConfig { exhaustive: true, ..AnswerConfig::default() },
        ..PipelineConfig::standard()
    });
    let paper = relpat_eval::run_benchmark(&pipeline, &questions);

    // Bit-identical per-question outcomes: same stages, same answers, same
    // winning SPARQL, judged identically.
    assert_eq!(beam.results, paper.results, "beam changed an answer");
    assert_eq!(beam.counts, paper.counts);

    // Table-2 invariant of this reproduction.
    assert_eq!(beam.counts.total, 55);
    assert_eq!(beam.counts.answered, 21, "answered drifted");
    assert!(beam.counts.correct >= 19, "correct {} regressed", beam.counts.correct);

    // Strictly fewer-or-equal work than the exhaustive product, and within
    // the paper's Table-2 budget (51 built / 31 executed).
    let built = beam.stats.counter("queries.built");
    let executed = beam.stats.counter("queries.executed");
    assert_eq!(built, paper.stats.counter("queries.built"), "planners built different lists");
    assert!(executed < paper.stats.counter("queries.executed"), "early termination saved nothing");
    assert!(built <= 51, "built {built} > 51");
    assert!(executed <= 31, "executed {executed} > 31");

    // Planner accounting flows into the report counters.
    assert!(beam.stats.counter("qa.plan.expanded") > 0);
    assert_eq!(beam.stats.counter("qa.plan.emitted"), built);
}
