//! Profiler equivalence gate (wired into ci.sh as `profiler-equivalence`).
//!
//! The continuous profiler must be a pure observer: running the Table-2
//! benchmark with the sampler on at the serving rate must produce
//! bit-identical answers, stages, judgements, and pipeline counters to the
//! profile-off run. Anything else means the sampler perturbs the pipeline
//! (e.g. through shared state or a misplaced span side effect), which
//! would also invalidate every profile it captures.

use relpat_eval::run_benchmark;
use relpat_kb::{generate, qald_questions, KbConfig};
use relpat_obs::profiler;
use relpat_qa::Pipeline;

#[test]
fn table2_run_is_bit_identical_with_profiler_on() {
    let kb = generate(&KbConfig::default());
    let pipeline = Pipeline::new(&kb);
    let questions = qald_questions(&kb);

    // Warm pass absorbs one-time state (query cache, interned tags) so
    // both measured passes run from the same starting point.
    let _ = run_benchmark(&pipeline, &questions);

    assert!(!profiler().is_enabled(), "profiler must start disabled");
    let off = run_benchmark(&pipeline, &questions);

    // One Table-2 pass is only a few milliseconds — a handful of sampler
    // ticks. Loop profiled passes until the sampler has demonstrably
    // fired (bounded so a dead sampler still fails fast), checking every
    // pass for equivalence.
    profiler().enable(relpat_obs::prof::DEFAULT_HZ);
    let before = profiler().counters().0;
    let mut on = run_benchmark(&pipeline, &questions);
    let mut profiled_reported = on.stats.counter("prof.samples");
    for _ in 0..200 {
        if profiler().counters().0 > before && profiled_reported > 0 {
            break;
        }
        on = run_benchmark(&pipeline, &questions);
        profiled_reported = profiled_reported.max(on.stats.counter("prof.samples"));
        assert_eq!(off.results, on.results, "profiler changed per-question results");
    }
    let samples = profiler().counters().0 - before;
    profiler().disable();

    // The paper's headline numbers hold in both runs...
    assert_eq!(off.counts.answered, 21, "profile-off answered count drifted");
    assert_eq!(off.counts.correct, 20, "profile-off correct count drifted");
    // ...and the runs are equal question by question: same stage, same
    // judgement, same rendered answer, same winning SPARQL.
    assert_eq!(off.results, on.results, "profiler changed per-question results");
    // The aggregated pipeline counters agree except the profiler's own
    // sample counters (nonzero only in the on-run, by design).
    for (name, off_value) in &off.stats.counters {
        if name.starts_with("prof.") {
            continue;
        }
        assert_eq!(
            on.stats.counter(name),
            *off_value,
            "counter {name} differs between profile-off and profile-on runs"
        );
    }
    // The on-runs really were profiled — this gate must not vacuously
    // pass with a sampler that never fired.
    assert!(samples > 0, "sampler captured nothing across the profiled runs");
    assert!(profiled_reported > 0, "no report picked up the sampler activity");
    assert_eq!(off.stats.counter("prof.samples"), 0, "profile-off run reported samples");
}
