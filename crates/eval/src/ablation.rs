//! Ablation sweeps over the pipeline's design choices (DESIGN.md §5).
//!
//! Each ablation disables or perturbs one ingredient and re-runs the full
//! Table-2 benchmark, quantifying that ingredient's contribution:
//!
//! - **A1** relational patterns off (§2.2.3),
//! - **A2** WordNet similar-property expansion off (§2.2.1),
//! - **A3** expected-type checking off (§2.3.2 / Table 1),
//! - **A4** string-similarity threshold sweep (§2.2.1's scoring scheme),
//! - **A5** page-link-centrality disambiguation off (§2.2.5).

use relpat_kb::{KnowledgeBase, QaldQuestion};
use relpat_patterns::{mine, CorpusConfig};
use relpat_qa::{AnswerConfig, MappingConfig, Pipeline, PipelineConfig};

use crate::metrics::Counts;
use crate::runner::run_benchmark;

/// One ablation configuration.
#[derive(Debug, Clone)]
pub struct Ablation {
    pub name: &'static str,
    pub description: &'static str,
    pub config: PipelineConfig,
}

/// Outcome of one ablation run.
#[derive(Debug, Clone)]
pub struct AblationResult {
    pub name: String,
    pub description: String,
    pub counts: Counts,
}

fn base() -> PipelineConfig {
    PipelineConfig::standard()
}

/// The extended-system configuration (paper + §5/§6 future work). Evaluated
/// as "X1" alongside the ablations; note it re-mines nothing here — the
/// sweep shares one pattern store, so only the extension *handlers* differ.
fn extended() -> PipelineConfig {
    PipelineConfig::extended()
}

/// The standard ablation suite.
pub fn ablation_suite() -> Vec<Ablation> {
    let mut out = vec![
        Ablation { name: "full", description: "full system (paper configuration)", config: base() },
        Ablation {
            name: "A1-no-patterns",
            description: "relational patterns disabled",
            config: PipelineConfig {
                mapping: MappingConfig {
                    use_relational_patterns: false,
                    ..MappingConfig::default()
                },
                ..base()
            },
        },
        Ablation {
            name: "A2-no-wordnet",
            description: "WordNet similar-property expansion disabled",
            config: PipelineConfig {
                mapping: MappingConfig {
                    use_wordnet_expansion: false,
                    ..MappingConfig::default()
                },
                ..base()
            },
        },
        Ablation {
            name: "A3-no-typecheck",
            description: "expected answer type checking disabled",
            config: PipelineConfig {
                answer: AnswerConfig { use_type_check: false, ..AnswerConfig::default() },
                ..base()
            },
        },
        Ablation {
            name: "A5-no-centrality",
            description: "page-link centrality disambiguation disabled",
            config: PipelineConfig {
                mapping: MappingConfig { use_centrality: false, ..MappingConfig::default() },
                ..base()
            },
        },
    ];
    out.push(Ablation {
        name: "X1-extended",
        description: "paper system + §5/§6 future-work extensions",
        config: extended(),
    });
    for threshold in [0.5, 0.6, 0.7, 0.8, 0.9] {
        out.push(Ablation {
            name: match (threshold * 100.0) as u32 {
                50 => "A4-sim-0.50",
                60 => "A4-sim-0.60",
                70 => "A4-sim-0.70",
                80 => "A4-sim-0.80",
                _ => "A4-sim-0.90",
            },
            description: "string-similarity acceptance threshold sweep",
            config: PipelineConfig {
                mapping: MappingConfig {
                    string_sim_threshold: threshold,
                    ..MappingConfig::default()
                },
                ..base()
            },
        });
    }
    out
}

/// Runs every ablation. Mines the pattern store once and reuses it.
pub fn run_ablations(kb: &KnowledgeBase, questions: &[QaldQuestion]) -> Vec<AblationResult> {
    run_selected(kb, questions, &ablation_suite())
}

/// Runs a chosen subset of ablations.
pub fn run_selected(
    kb: &KnowledgeBase,
    questions: &[QaldQuestion],
    suite: &[Ablation],
) -> Vec<AblationResult> {
    // Mining is the expensive part; do it once and rebuild cheap pipelines
    // around the same store by re-mining? PatternStore is not clonable, so
    // keep one pipeline and swap configs.
    // Mine once with data-property sentences included: a superset store.
    // The paper-faithful configurations never look at data patterns (their
    // candidates are only consulted by the extension handlers), so sharing
    // the superset store keeps every row comparable while mining only once.
    let mined = mine(kb, &CorpusConfig::with_data_properties());
    let mut pipeline = Pipeline::with_pattern_store(kb, mined.store, PipelineConfig::standard());
    let mut out = Vec::with_capacity(suite.len());
    for ablation in suite {
        pipeline.set_config(ablation.config.clone());
        let report = run_benchmark(&pipeline, questions);
        out.push(AblationResult {
            name: ablation.name.to_string(),
            description: ablation.description.to_string(),
            counts: report.counts,
        });
    }
    out
}

/// Renders the ablation table.
pub fn ablation_table(results: &[AblationResult]) -> String {
    let mut out = String::new();
    out.push_str("| Ablation | Answered | Correct | Precision | Recall | F1 |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} % | {:.1} % | {:.1} % |\n",
            r.name,
            r.counts.answered,
            r.counts.correct,
            r.counts.precision() * 100.0,
            r.counts.recall() * 100.0,
            r.counts.f1() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, qald_questions, KbConfig};

    #[test]
    fn suite_has_expected_members() {
        let suite = ablation_suite();
        assert_eq!(suite.len(), 11);
        assert_eq!(suite[0].name, "full");
        assert!(suite.iter().any(|a| a.name == "A1-no-patterns"));
        assert!(suite.iter().filter(|a| a.name.starts_with("A4")).count() == 5);
    }

    #[test]
    fn key_ablations_degrade_or_preserve_quality() {
        let kb = generate(&KbConfig::tiny());
        let questions = qald_questions(&kb);
        let subset: Vec<Ablation> = ablation_suite()
            .into_iter()
            .filter(|a| matches!(a.name, "full" | "A1-no-patterns" | "A3-no-typecheck"))
            .collect();
        let results = run_selected(&kb, &questions, &subset);
        let full = &results[0].counts;
        let no_patterns = &results[1].counts;
        let no_typecheck = &results[2].counts;

        // Patterns drive recall: removing them must not increase coverage.
        assert!(no_patterns.answered <= full.answered);
        // Type checking protects precision: without it precision must not
        // improve while the same or more questions are answered.
        assert!(no_typecheck.answered >= full.answered);
        assert!(no_typecheck.precision() <= full.precision() + 1e-9);
    }

    #[test]
    fn table_renders_all_rows() {
        let results = vec![AblationResult {
            name: "full".into(),
            description: "d".into(),
            counts: Counts::new(55, 18, 15),
        }];
        let t = ablation_table(&results);
        assert!(t.contains("full"));
        assert!(t.contains("83.3 %"));
    }
}
