//! QALD benchmark runner: execute the pipeline over the evaluated subset,
//! judge answers against gold, aggregate Table-2 counts.

use relpat_kb::{evaluated_subset, KnowledgeBase, QaldQuestion};
use relpat_obs::{HistogramSummary, Json, MetricsRegistry};
use relpat_qa::{AnswerValue, Pipeline, Stage};
use relpat_rdf::Term;

use crate::metrics::Counts;

/// Per-question outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuestionResult {
    pub id: u32,
    pub text: String,
    /// Which pipeline stage the question reached.
    pub stage: String,
    pub answered: bool,
    pub correct: bool,
    /// Human-readable produced answer (empty if none).
    pub answer: String,
    /// Human-readable gold answer.
    pub gold: String,
    /// The winning SPARQL query, if any.
    pub query: Option<String>,
}

/// Aggregated observability over one benchmark run: per-stage latency
/// percentiles plus pipeline counters, built from the per-question
/// [`relpat_obs::QuestionTrace`]s (so parallel test runs cannot bleed into
/// each other through the global registry).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Latency digest per pipeline stage, in pipeline order
    /// (`extract`, `map`, `build`, `answer`, `total`). Units: nanoseconds.
    pub stage_latencies: Vec<HistogramSummary>,
    /// Summed pipeline counters (`queries.built`, `patterns.phrase_hits`, ...).
    pub counters: Vec<(String, u64)>,
}

impl RunStats {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    pub fn stage(&self, name: &str) -> Option<&HistogramSummary> {
        self.stage_latencies.iter().find(|h| h.name == name)
    }

    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, value) in &self.counters {
            counters = counters.set(name, *value);
        }
        Json::obj().set("counters", counters).set(
            "stage_latency_ns",
            Json::Arr(self.stage_latencies.iter().map(HistogramSummary::to_json).collect()),
        )
    }

    /// Renders the profile table (stage | count | min | p50 | p90 | p99 |
    /// max, µs).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| stage | n | min µs | p50 µs | p90 µs | p99 µs | max µs |\n|---|---|---|---|---|---|---|"
        );
        let us = |ns: u64| ns as f64 / 1_000.0;
        for h in &self.stage_latencies {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
                h.name,
                h.count,
                us(h.min),
                us(h.p50),
                us(h.p90),
                us(h.p99),
                us(h.max)
            );
        }
        let _ = writeln!(out, "\nCounters:");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        out
    }
}

/// Full evaluation report.
#[derive(Debug, Clone)]
pub struct Report {
    pub counts: Counts,
    pub results: Vec<QuestionResult>,
    /// Stage-latency percentiles and counters aggregated over the run.
    pub stats: RunStats,
}

/// Aggregated failure breakdown (see [`Report::error_analysis`]).
#[derive(Debug, Clone)]
pub struct ErrorAnalysis {
    pub unanswered_by_stage: Vec<(String, usize)>,
    pub wrong_by_question_word: Vec<(String, usize)>,
}

impl Report {
    /// Writes the full report as JSON (for archiving runs and diffing
    /// configurations), including the observability block.
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|r| {
                Json::obj()
                    .set("id", r.id)
                    .set("text", r.text.as_str())
                    .set("stage", r.stage.as_str())
                    .set("answered", r.answered)
                    .set("correct", r.correct)
                    .set("answer", r.answer.as_str())
                    .set("gold", r.gold.as_str())
                    .set(
                        "query",
                        match &r.query {
                            Some(q) => Json::from(q.as_str()),
                            None => Json::Null,
                        },
                    )
            })
            .collect();
        Json::obj()
            .set("counts", self.counts.to_json())
            .set("observability", self.stats.to_json())
            .set("results", Json::Arr(results))
            .to_pretty()
    }

    /// Error analysis: `(stage, count)` over unanswered questions plus
    /// `(first word, count)` over all answered-wrong questions — the
    /// breakdown behind EXPERIMENTS.md's recall-loss discussion.
    pub fn error_analysis(&self) -> ErrorAnalysis {
        let mut by_stage: Vec<(String, usize)> = Vec::new();
        for r in self.unanswered() {
            match by_stage.iter_mut().find(|(s, _)| s == &r.stage) {
                Some((_, n)) => *n += 1,
                None => by_stage.push((r.stage.clone(), 1)),
            }
        }
        by_stage.sort_by(|(_, a), (_, b)| b.cmp(a));
        let mut wrong_by_word: Vec<(String, usize)> = Vec::new();
        for r in self.wrong() {
            let word = r
                .text
                .split_whitespace()
                .next()
                .unwrap_or("?")
                .to_lowercase();
            match wrong_by_word.iter_mut().find(|(w, _)| w == &word) {
                Some((_, n)) => *n += 1,
                None => wrong_by_word.push((word, 1)),
            }
        }
        wrong_by_word.sort_by(|(_, a), (_, b)| b.cmp(a));
        ErrorAnalysis { unanswered_by_stage: by_stage, wrong_by_question_word: wrong_by_word }
    }

    /// Paper-style Table 2 (plus the strict-accuracy column).
    pub fn table2(&self) -> String {
        let mut out = String::new();
        out.push_str("|  | Precision | Recall | F1 |\n");
        out.push_str("|---|---|---|---|\n");
        out.push_str(&self.counts.table2_row("Our method"));
        out.push('\n');
        out
    }

    /// Questions that were answered but judged wrong (precision losses).
    pub fn wrong(&self) -> Vec<&QuestionResult> {
        self.results.iter().filter(|r| r.answered && !r.correct).collect()
    }

    /// Questions never answered (recall losses), by stage.
    pub fn unanswered(&self) -> Vec<&QuestionResult> {
        self.results.iter().filter(|r| !r.answered).collect()
    }
}

/// Judges a produced answer against the gold answer set.
///
/// Term answers must match the gold set exactly (order-insensitive);
/// boolean answers must match the gold boolean.
pub fn judge(value: &AnswerValue, gold: &[Term]) -> bool {
    match value {
        AnswerValue::Boolean(b) => {
            gold.len() == 1
                && gold[0]
                    .as_literal()
                    .is_some_and(|l| l.lexical_form() == if *b { "true" } else { "false" })
        }
        AnswerValue::Terms(terms) => {
            !gold.is_empty()
                && terms.len() == gold.len()
                && gold.iter().all(|g| terms.contains(g))
        }
    }
}

fn render_terms(kb: &KnowledgeBase, terms: &[Term]) -> String {
    terms
        .iter()
        .map(|t| match t {
            Term::Iri(iri) => kb.label_of(iri).unwrap_or(iri.local_name()).to_string(),
            Term::Literal(l) => l.lexical_form().to_string(),
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// The per-question trace counters every run reports, in render order.
/// `queries.*` come from the (thread-local) response trace; `patterns.*`
/// come from the trace in sequential runs and from a store-wide delta in
/// parallel ones (see [`run_benchmark_with`]).
const TRACE_COUNTERS: [&str; 11] = [
    "queries.built",
    "queries.executed",
    "queries.survived",
    "queries.failed",
    "qa.plan.expanded",
    "qa.plan.pruned",
    "qa.plan.emitted",
    "patterns.phrase_hits",
    "patterns.phrase_misses",
    "patterns.word_hits",
    "patterns.word_misses",
];

/// Records one response trace into a run-local registry: per-stage latency
/// histograms plus the `queries.*` counters (and, when `with_patterns`, the
/// trace-attributed `patterns.*` counters). `stage_order` accumulates the
/// first-seen histogram order for rendering.
fn record_trace(
    local: &MetricsRegistry,
    stage_order: &mut Vec<String>,
    trace: &relpat_obs::QuestionTrace,
    with_patterns: bool,
) {
    for s in &trace.stages {
        let key = format!("stage.{}", s.name);
        if !stage_order.contains(&key) {
            stage_order.push(key.clone());
        }
        local.histogram(&key).record(s.nanos);
    }
    let total_key = "stage.total".to_string();
    if !stage_order.contains(&total_key) {
        stage_order.push(total_key.clone());
    }
    local.histogram(&total_key).record(trace.total_nanos());
    local.counter("queries.built").add(trace.queries_built);
    local.counter("queries.executed").add(trace.queries_executed);
    local.counter("queries.survived").add(trace.queries_survived);
    local.counter("queries.failed").add(trace.queries_failed);
    local.counter("qa.plan.expanded").add(trace.plan_expanded);
    local.counter("qa.plan.pruned").add(trace.plan_pruned);
    local.counter("qa.plan.emitted").add(trace.plan_emitted);
    if with_patterns {
        local.counter("patterns.phrase_hits").add(trace.pattern_lookups.phrase_hits);
        local.counter("patterns.phrase_misses").add(trace.pattern_lookups.phrase_misses);
        local.counter("patterns.word_hits").add(trace.pattern_lookups.word_hits);
        local.counter("patterns.word_misses").add(trace.pattern_lookups.word_misses);
    }
}

/// Judges one response against a question's gold answers.
fn judge_question(
    kb: &KnowledgeBase,
    q: &QaldQuestion,
    response: &relpat_qa::Response,
) -> QuestionResult {
    let gold = q.gold_answers(kb);
    let (is_answered, is_correct, answer_text, query) = match (&response.answer, response.stage) {
        (Some(ans), Stage::Answered) => {
            let ok = judge(&ans.value, &gold);
            let text = match &ans.value {
                AnswerValue::Terms(ts) => render_terms(kb, ts),
                AnswerValue::Boolean(b) => b.to_string(),
            };
            (true, ok, text, Some(ans.sparql.clone()))
        }
        _ => (false, false, String::new(), None),
    };
    QuestionResult {
        id: q.id,
        text: q.text.clone(),
        stage: format!("{:?}", response.stage),
        answered: is_answered,
        correct: is_correct,
        answer: answer_text,
        gold: render_terms(kb, &gold),
        query,
    }
}

/// Join-operator totals (`sparql.join.*`) sampled from the process-global
/// registry. Like `planner.misestimates`, these are attributed to a run by
/// a before/after delta — the executor bumps one of the three per join
/// step, so the split shows how often the sorted operators actually fired.
#[derive(Debug, Clone, Copy, Default)]
struct JoinCounters {
    merge: u64,
    gallop: u64,
    nested: u64,
}

impl JoinCounters {
    fn sample() -> Self {
        let global = relpat_obs::global();
        JoinCounters {
            merge: global.counter_value("sparql.join.merge"),
            gallop: global.counter_value("sparql.join.gallop"),
            nested: global.counter_value("sparql.join.nested"),
        }
    }

    fn delta_since(self, before: JoinCounters) -> JoinCounters {
        JoinCounters {
            merge: self.merge.saturating_sub(before.merge),
            gallop: self.gallop.saturating_sub(before.gallop),
            nested: self.nested.saturating_sub(before.nested),
        }
    }
}

/// Per-run deltas of the process-global counters (the registry passed to
/// [`assemble_report`] only holds per-question trace aggregates; these are
/// sampled before/after the run and attributed to it as deltas).
/// `planner_misestimates` is the run's delta of the global
/// `planner.misestimates` counter — join steps whose actual scan cost blew
/// past the planner's score (see `relpat-sparql`'s misestimation detector);
/// `prof` is the `(samples, dropped)` delta of the sampling profiler.
struct GlobalDeltas {
    cache: relpat_sparql::CacheStats,
    index: relpat_kb::IndexLookupStats,
    planner_misestimates: u64,
    joins: JoinCounters,
    prof: (u64, u64),
}

/// Assembles the final report from judged results and the merged registry.
fn assemble_report(
    registry: &MetricsRegistry,
    stage_order: &[String],
    results: Vec<QuestionResult>,
    deltas: GlobalDeltas,
) -> Report {
    let answered = results.iter().filter(|r| r.answered).count();
    let correct = results.iter().filter(|r| r.correct).count();
    let mut counters: Vec<(String, u64)> = TRACE_COUNTERS
        .iter()
        .map(|name| (name.to_string(), registry.counter_value(name)))
        .collect();
    counters.push(("sparql.cache.hits".to_string(), deltas.cache.hits));
    counters.push(("sparql.cache.misses".to_string(), deltas.cache.misses));
    counters.push(("planner.misestimates".to_string(), deltas.planner_misestimates));
    counters.push(("sparql.join.merge".to_string(), deltas.joins.merge));
    counters.push(("sparql.join.gallop".to_string(), deltas.joins.gallop));
    counters.push(("sparql.join.nested".to_string(), deltas.joins.nested));
    counters.push(("map.index.probed".to_string(), deltas.index.probed));
    counters.push(("map.index.pruned".to_string(), deltas.index.pruned));
    counters.push(("map.index.scored".to_string(), deltas.index.scored));
    counters.push(("prof.samples".to_string(), deltas.prof.0));
    counters.push(("prof.dropped".to_string(), deltas.prof.1));
    let stats = RunStats {
        stage_latencies: stage_order.iter().map(|key| registry.histogram(key).summary()).collect(),
        counters,
    };
    Report { counts: Counts::new(results.len(), answered, correct), results, stats }
}

/// Runs the pipeline over the evaluated (non-excluded) questions on one
/// thread, aggregating each question's trace into the report's [`RunStats`].
pub fn run_benchmark(pipeline: &Pipeline<'_>, questions: &[QaldQuestion]) -> Report {
    run_benchmark_with(pipeline, questions, 1)
}

/// [`run_benchmark`] sharded across `threads` scoped worker threads
/// (1 = the plain sequential loop).
///
/// Every deterministic field of the report — per-question results, counts,
/// and the `queries.*`/`patterns.*`/`sparql.cache.*` aggregate counters —
/// is identical to the sequential run's. Stage latencies (wall-clock) and
/// the hit/miss split of a shared warm cache are inherently timing
/// dependent.
///
/// Workers claim questions from a shared cursor and record into their own
/// local [`MetricsRegistry`], merged at the end via
/// [`MetricsRegistry::merge_from`]. The `patterns.*` counters are taken
/// from a store-wide before/after delta rather than per-question trace
/// deltas (which bleed across concurrent questions); the store-wide delta
/// equals the sequential per-question sum exactly.
pub fn run_benchmark_with(
    pipeline: &Pipeline<'_>,
    questions: &[QaldQuestion],
    threads: usize,
) -> Report {
    let kb = pipeline.kb();
    let evaluated = evaluated_subset(questions);
    let cache_before = kb.cache_stats();
    let index_before = kb.lexical().lookup_stats();
    // Attributed by sampling the process-global counter around the run —
    // like the cache delta, concurrent activity outside this run can bleed
    // into it; within `relpat-eval` and the CLIs nothing else executes
    // queries while a benchmark runs.
    let misestimates_before = relpat_obs::global().counter_value("planner.misestimates");
    let joins_before = JoinCounters::sample();
    // Continuous-profiler activity during the run (zeros when the sampler
    // is off, as it is for plain benchmark invocations).
    let prof_before = relpat_obs::profiler().counters();
    let prof_delta = || {
        let (samples, dropped) = relpat_obs::profiler().counters();
        (samples.saturating_sub(prof_before.0), dropped.saturating_sub(prof_before.1))
    };
    let threads = threads.max(1).min(evaluated.len().max(1));

    if threads == 1 {
        // Local registry: aggregation stays isolated per run even when
        // several benchmarks execute concurrently in one process.
        let local = MetricsRegistry::new();
        let mut stage_order: Vec<String> = Vec::new();
        let mut results = Vec::with_capacity(evaluated.len());
        for q in &evaluated {
            let response = pipeline.answer(&q.text);
            record_trace(&local, &mut stage_order, &response.trace, true);
            results.push(judge_question(kb, q, &response));
        }
        let cache_delta = kb.cache_stats().delta_since(&cache_before);
        let index_delta = kb.lexical().lookup_stats().delta_since(&index_before);
        let misestimates = relpat_obs::global()
            .counter_value("planner.misestimates")
            .saturating_sub(misestimates_before);
        let joins = JoinCounters::sample().delta_since(joins_before);
        let deltas = GlobalDeltas {
            cache: cache_delta,
            index: index_delta,
            planner_misestimates: misestimates,
            joins,
            prof: prof_delta(),
        };
        return assemble_report(&local, &stage_order, results, deltas);
    }

    let patterns_before = pipeline.patterns().lookup_stats();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let merged = MetricsRegistry::new();
    let mut stage_order: Vec<String> = Vec::new();
    let mut slots: Vec<Option<QuestionResult>> = (0..evaluated.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let evaluated = &evaluated;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let local = MetricsRegistry::new();
                    let mut order: Vec<String> = Vec::new();
                    let mut mine: Vec<(usize, QuestionResult)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(q) = evaluated.get(i) else { break };
                        let response = pipeline.answer(&q.text);
                        record_trace(&local, &mut order, &response.trace, false);
                        mine.push((i, judge_question(kb, q, &response)));
                    }
                    (local, order, mine)
                })
            })
            .collect();
        for h in handles {
            let (local, order, mine) = h.join().expect("benchmark worker panicked");
            merged.merge_from(&local);
            for key in order {
                if !stage_order.contains(&key) {
                    stage_order.push(key);
                }
            }
            for (i, r) in mine {
                slots[i] = Some(r);
            }
        }
    });
    let pattern_delta = pipeline.patterns().lookup_stats().delta_since(&patterns_before);
    merged.counter("patterns.phrase_hits").add(pattern_delta.phrase_hits);
    merged.counter("patterns.phrase_misses").add(pattern_delta.phrase_misses);
    merged.counter("patterns.word_hits").add(pattern_delta.word_hits);
    merged.counter("patterns.word_misses").add(pattern_delta.word_misses);
    let results: Vec<QuestionResult> =
        slots.into_iter().map(|r| r.expect("every question judged")).collect();
    let cache_delta = kb.cache_stats().delta_since(&cache_before);
    let index_delta = kb.lexical().lookup_stats().delta_since(&index_before);
    let misestimates = relpat_obs::global()
        .counter_value("planner.misestimates")
        .saturating_sub(misestimates_before);
    let joins = JoinCounters::sample().delta_since(joins_before);
    let deltas = GlobalDeltas {
        cache: cache_delta,
        index: index_delta,
        planner_misestimates: misestimates,
        joins,
        prof: prof_delta(),
    };
    assemble_report(&merged, &stage_order, results, deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, qald_questions, KbConfig};
    use relpat_rdf::Literal;
    use std::sync::OnceLock;

    fn report() -> &'static Report {
        static KB: OnceLock<KnowledgeBase> = OnceLock::new();
        static R: OnceLock<Report> = OnceLock::new();
        R.get_or_init(|| {
            let kb = KB.get_or_init(|| generate(&KbConfig::tiny()));
            let pipeline = Pipeline::new(kb);
            let questions = qald_questions(kb);
            run_benchmark(&pipeline, &questions)
        })
    }

    #[test]
    fn judge_boolean() {
        let t = Term::Literal(Literal::boolean(true));
        let f = Term::Literal(Literal::boolean(false));
        assert!(judge(&AnswerValue::Boolean(true), std::slice::from_ref(&t)));
        assert!(!judge(&AnswerValue::Boolean(true), std::slice::from_ref(&f)));
        assert!(judge(&AnswerValue::Boolean(false), std::slice::from_ref(&f)));
        assert!(!judge(&AnswerValue::Boolean(true), &[]));
    }

    #[test]
    fn judge_terms_set_equality() {
        let a = Term::iri("http://e/a");
        let b = Term::iri("http://e/b");
        let answer = AnswerValue::Terms(vec![b.clone(), a.clone()]);
        assert!(judge(&answer, &[a.clone(), b.clone()]));
        assert!(!judge(&answer, std::slice::from_ref(&a)));
        assert!(!judge(&AnswerValue::Terms(vec![a.clone()]), &[a, b]));
        assert!(!judge(&AnswerValue::Terms(vec![]), &[]));
    }

    #[test]
    fn benchmark_covers_all_55_questions() {
        let r = report();
        assert_eq!(r.counts.total, 55);
        assert_eq!(r.results.len(), 55);
    }

    #[test]
    fn shape_matches_paper_high_precision_low_recall() {
        let r = report();
        let p = r.counts.precision();
        let rec = r.counts.recall();
        assert!(
            r.counts.answered >= 12 && r.counts.answered <= 30,
            "answered {} of 55",
            r.counts.answered
        );
        assert!(p >= 0.70, "precision {p:.2} too low: wrong = {:#?}", r.wrong());
        assert!((0.2..=0.55).contains(&rec), "recall {rec:.2} out of band");
        assert!(p > rec, "paper shape requires precision >> recall");
    }

    #[test]
    fn figure1_question_is_correct() {
        let r = report();
        let q1 = r.results.iter().find(|r| r.id == 1).unwrap();
        assert!(q1.answered, "stage: {}", q1.stage);
        assert!(q1.correct, "answer: {} gold: {}", q1.answer, q1.gold);
    }

    #[test]
    fn alive_question_is_unanswered() {
        let r = report();
        let q = r.results.iter().find(|r| r.text.contains("still alive")).unwrap();
        assert!(!q.answered);
    }

    #[test]
    fn report_accessors_partition_results() {
        let r = report();
        let wrong = r.wrong().len();
        let un = r.unanswered().len();
        assert_eq!(r.counts.answered - r.counts.correct, wrong);
        assert_eq!(r.counts.total - r.counts.answered, un);
    }

    #[test]
    fn table2_renders() {
        let r = report();
        let t = r.table2();
        assert!(t.contains("Precision"));
        assert!(t.contains("Our method"));
    }

    #[test]
    fn error_analysis_accounts_for_every_failure() {
        let r = report();
        let ea = r.error_analysis();
        let unanswered: usize = ea.unanswered_by_stage.iter().map(|(_, n)| n).sum();
        assert_eq!(unanswered, r.unanswered().len());
        let wrong: usize = ea.wrong_by_question_word.iter().map(|(_, n)| n).sum();
        assert_eq!(wrong, r.wrong().len());
        // Counts sorted descending.
        for w in ea.unanswered_by_stage.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn json_round_trips_counts() {
        let r = report();
        let json = r.to_json();
        let value = Json::parse(&json).unwrap();
        assert_eq!(
            value.get("counts").and_then(|c| c.get("total")).and_then(Json::as_u64).unwrap()
                as usize,
            r.counts.total
        );
        assert_eq!(
            value.get("results").and_then(Json::as_array).unwrap().len(),
            r.results.len()
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"counts\""));
        assert!(json.contains("\"observability\""));
    }

    #[test]
    fn parallel_report_matches_sequential() {
        // Own pipeline (not the shared `report()` fixture) so nothing else
        // touches its pattern store or cache while the two runs compare.
        let kb = generate(&KbConfig::tiny());
        let pipeline = Pipeline::new(&kb);
        let questions = qald_questions(&kb);
        let seq = run_benchmark(&pipeline, &questions);
        let par = run_benchmark_with(&pipeline, &questions, 4);

        // Question-for-question identical outcomes, in identical order.
        assert_eq!(seq.counts, par.counts);
        assert_eq!(seq.results, par.results);
        // Deterministic aggregate counters agree; stage latencies and the
        // warm-cache hit/miss split are timing dependent and excluded.
        for name in TRACE_COUNTERS {
            assert_eq!(seq.stats.counter(name), par.stats.counter(name), "{name}");
        }
        // Every stage histogram saw the same number of samples.
        for h in &seq.stats.stage_latencies {
            let other = par.stats.stage(&h.name).unwrap_or_else(|| panic!("missing {}", h.name));
            assert_eq!(h.count, other.count, "{}", h.name);
        }
        assert_eq!(seq.stats.stage_latencies.len(), par.stats.stage_latencies.len());
        // Both runs surface the cache counters.
        let lookups = |r: &Report| {
            r.stats.counter("sparql.cache.hits") + r.stats.counter("sparql.cache.misses")
        };
        assert!(lookups(&seq) > 0);
        assert_eq!(lookups(&seq), lookups(&par), "total cache lookups are deterministic");
    }

    #[test]
    fn report_surfaces_lexical_index_counters() {
        let r = report();
        let probed = r.stats.counter("map.index.probed");
        let pruned = r.stats.counter("map.index.pruned");
        let scored = r.stats.counter("map.index.scored");
        assert!(probed > 0, "mapping never consulted the lexical index");
        assert!(probed >= pruned, "pruned {pruned} > probed {probed}");
        assert!(scored > 0, "index pruned every candidate");
        let value = Json::parse(&r.to_json()).unwrap();
        let counters = value.get("observability").and_then(|o| o.get("counters")).unwrap();
        assert_eq!(counters.get("map.index.probed").and_then(Json::as_u64), Some(probed));
    }

    #[test]
    fn report_surfaces_planner_misestimates() {
        let r = report();
        // The tiny KB's scans are small enough that the 64-row floor keeps
        // the detector quiet; what matters is that the counter is present
        // and flows into the JSON view.
        let value = Json::parse(&r.to_json()).unwrap();
        let counters = value.get("observability").and_then(|o| o.get("counters")).unwrap();
        assert_eq!(
            counters.get("planner.misestimates").and_then(Json::as_u64),
            Some(r.stats.counter("planner.misestimates"))
        );
        assert!(r.stats.render().contains("planner.misestimates"));
    }

    #[test]
    fn report_surfaces_join_operator_split() {
        let r = report();
        // Every BGP step bumps exactly one of the three operators; the run
        // executes plenty of queries, and its two-pattern joins (type +
        // property) ride the sorted-merge path on the frozen KB.
        let (merge, gallop, nested) = (
            r.stats.counter("sparql.join.merge"),
            r.stats.counter("sparql.join.gallop"),
            r.stats.counter("sparql.join.nested"),
        );
        assert!(nested > 0, "first steps always scan nested");
        assert!(merge > 0, "no query took the sort-merge path");
        let value = Json::parse(&r.to_json()).unwrap();
        let counters = value.get("observability").and_then(|o| o.get("counters")).unwrap();
        assert_eq!(counters.get("sparql.join.merge").and_then(Json::as_u64), Some(merge));
        assert_eq!(counters.get("sparql.join.gallop").and_then(Json::as_u64), Some(gallop));
        assert_eq!(counters.get("sparql.join.nested").and_then(Json::as_u64), Some(nested));
        assert!(r.stats.render().contains("sparql.join.merge"));
    }

    #[test]
    fn early_termination_cuts_executed_below_built() {
        // With ranked early termination (the default), a full QALD run must
        // send measurably fewer queries than it builds.
        let r = report();
        let built = r.stats.counter("queries.built");
        let executed = r.stats.counter("queries.executed");
        assert!(built > 0);
        assert!(
            executed < built,
            "early termination should skip queries: executed {executed} >= built {built}"
        );
    }

    #[test]
    fn report_surfaces_stage_latencies_and_counters() {
        let r = report();
        // Every question was traced, so each stage histogram holds at least
        // one sample and p50 <= p99.
        let total = r.stats.stage("stage.total").expect("total stage present");
        assert_eq!(total.count as usize, r.counts.total);
        assert!(total.p50 > 0, "zero p50 latency");
        assert!(total.p50 <= total.p90 && total.p90 <= total.p99);
        let extract = r.stats.stage("stage.extract").expect("extract stage present");
        assert_eq!(extract.count as usize, r.counts.total);
        // The benchmark executes queries and hits the pattern store.
        assert!(r.stats.counter("queries.built") > 0);
        assert!(r.stats.counter("queries.executed") > 0);
        assert!(
            r.stats.counter("patterns.phrase_hits") + r.stats.counter("patterns.word_hits") > 0
        );
        // The JSON view carries the same numbers.
        let value = Json::parse(&r.to_json()).unwrap();
        let obs = value.get("observability").unwrap();
        assert_eq!(
            obs.get("counters")
                .and_then(|c| c.get("queries.built"))
                .and_then(Json::as_u64)
                .unwrap(),
            r.stats.counter("queries.built")
        );
        let stages = obs.get("stage_latency_ns").and_then(Json::as_array).unwrap();
        assert!(stages.iter().any(|s| s.get("name").and_then(Json::as_str)
            == Some("stage.total")));
        // Text rendering contains the percentile table.
        let text = r.stats.render();
        assert!(text.contains("p99"));
        assert!(text.contains("queries.built"));
    }
}
