//! # relpat-eval — evaluation harness
//!
//! Runs the QA pipeline over the QALD-2-style benchmark and reproduces the
//! paper's Table 2 (precision / recall / F1 over the 55 DBpedia-only
//! questions), plus the ablation sweeps DESIGN.md calls for.
//!
//! ```no_run
//! use relpat_eval::run_benchmark;
//! use relpat_kb::{generate, qald_questions, KbConfig};
//! use relpat_qa::Pipeline;
//!
//! let kb = generate(&KbConfig::default());
//! let pipeline = Pipeline::new(&kb);
//! let report = run_benchmark(&pipeline, &qald_questions(&kb));
//! println!("{}", report.table2());
//! ```

mod ablation;
mod metrics;
mod runner;
mod strategy;

pub use ablation::{ablation_suite, ablation_table, run_ablations, run_selected, Ablation, AblationResult};
pub use metrics::Counts;
pub use runner::{
    judge, run_benchmark, run_benchmark_with, ErrorAnalysis, QuestionResult, Report,
};
pub use strategy::{run_strategy_comparison, strategy_table, StrategyResult};
