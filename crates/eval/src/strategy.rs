//! Planner-strategy comparison: built vs executed queries per strategy.
//!
//! Reruns the Table-2 benchmark under each §2.3 query-planning strategy and
//! execution mode, surfacing how much work the beam planner and ranked
//! early termination each save relative to the paper's exhaustive cartesian
//! product — while the answer quality (Table-2 counts) stays identical.

use relpat_kb::{KnowledgeBase, QaldQuestion};
use relpat_patterns::{mine, CorpusConfig};
use relpat_qa::{AnswerConfig, Pipeline, PipelineConfig, PlannerStrategy};

use crate::metrics::Counts;
use crate::runner::run_benchmark;

/// Outcome of one strategy row: Table-2 counts plus the planner/execution
/// work counters the row spent to get them.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    pub name: String,
    pub description: String,
    pub counts: Counts,
    /// Queries built across the run (`queries.built`).
    pub built: u64,
    /// Queries sent to the SPARQL engine (`queries.executed`).
    pub executed: u64,
    /// Planner states branched on (`qa.plan.expanded`).
    pub plan_expanded: u64,
    /// Planner states discarded unexplored (`qa.plan.pruned`).
    pub plan_pruned: u64,
}

fn row(name: &str, description: &str, planner: PlannerStrategy, exhaustive: bool) -> (String, String, PipelineConfig) {
    (
        name.to_string(),
        description.to_string(),
        PipelineConfig {
            planner,
            answer: AnswerConfig { exhaustive, ..AnswerConfig::default() },
            ..PipelineConfig::standard()
        },
    )
}

/// Runs the strategy comparison. Mines the pattern store once and swaps
/// configurations on a single pipeline, so every row answers over the same
/// evidence.
pub fn run_strategy_comparison(
    kb: &KnowledgeBase,
    questions: &[QaldQuestion],
) -> Vec<StrategyResult> {
    let rows = [
        row(
            "beam + early termination",
            "frontier search, ranked sweep stops at first survivor (default)",
            PlannerStrategy::Beam,
            false,
        ),
        row(
            "cartesian + early termination",
            "full product truncated on final scores, ranked sweep",
            PlannerStrategy::CartesianExhaustive,
            false,
        ),
        row(
            "cartesian + exhaustive execution",
            "paper §2.3 baseline: full product, every candidate executed",
            PlannerStrategy::CartesianExhaustive,
            true,
        ),
    ];
    let mined = mine(kb, &CorpusConfig::default());
    let mut pipeline = Pipeline::with_pattern_store(kb, mined.store, PipelineConfig::standard());
    let mut out = Vec::with_capacity(rows.len());
    for (name, description, config) in rows {
        pipeline.set_config(config);
        let report = run_benchmark(&pipeline, questions);
        out.push(StrategyResult {
            name,
            description,
            counts: report.counts,
            built: report.stats.counter("queries.built"),
            executed: report.stats.counter("queries.executed"),
            plan_expanded: report.stats.counter("qa.plan.expanded"),
            plan_pruned: report.stats.counter("qa.plan.pruned"),
        });
    }
    out
}

/// Renders the strategy table (the report section EXPERIMENTS.md embeds).
pub fn strategy_table(results: &[StrategyResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Strategy | Built | Executed | Expanded | Pruned | Answered | Correct | F1 |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1} % |\n",
            r.name,
            r.built,
            r.executed,
            r.plan_expanded,
            r.plan_pruned,
            r.counts.answered,
            r.counts.correct,
            r.counts.f1() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, qald_questions, KbConfig};

    #[test]
    fn beam_answers_match_baselines_with_less_work() {
        let kb = generate(&KbConfig::tiny());
        let questions = qald_questions(&kb);
        let results = run_strategy_comparison(&kb, &questions);
        assert_eq!(results.len(), 3);
        let beam = &results[0];
        let cart = &results[1];
        let paper = &results[2];

        // The headline differential gate: identical answers, strictly
        // fewer-or-equal queries built and executed.
        assert_eq!(beam.counts, cart.counts, "beam changed Table-2 counts");
        assert_eq!(beam.counts, paper.counts, "early termination changed Table-2 counts");
        assert_eq!(beam.built, cart.built, "planners must emit identical query lists");
        assert!(beam.executed <= cart.executed);
        assert!(cart.executed < paper.executed, "early termination saves executions");
        // The cartesian fold materializes every combination; the beam stops
        // once the top-k is proved.
        assert!(beam.plan_expanded <= cart.plan_expanded);

        let table = strategy_table(&results);
        assert!(table.contains("beam + early termination"), "{table}");
        assert!(table.contains("paper") || table.contains("cartesian + exhaustive"), "{table}");
    }
}
