//! Evaluation metrics, matching the paper's Table-2 accounting.
//!
//! The paper processes 18 of 55 questions and answers 15 correctly,
//! reporting precision 83 %, recall 32 %, F1 46 %. That arithmetic fixes the
//! definitions: **precision = correct / answered** (15/18 ≈ 0.83) and
//! **recall = answered / total** (18/55 ≈ 0.33) — i.e. their "recall" is
//! coverage of the question set. We implement exactly those, plus the
//! stricter `accuracy` (correct / total) for completeness.

use relpat_obs::Json;

/// Aggregate counts over an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Questions in the evaluated set.
    pub total: usize,
    /// Questions for which the system produced an answer.
    pub answered: usize,
    /// Answered questions whose answer matches the gold answer.
    pub correct: usize,
}

impl Counts {
    pub fn new(total: usize, answered: usize, correct: usize) -> Self {
        debug_assert!(correct <= answered && answered <= total);
        Counts { total, answered, correct }
    }

    /// Paper's precision: correct / answered.
    pub fn precision(&self) -> f64 {
        ratio(self.correct, self.answered)
    }

    /// Paper's recall: answered / total (coverage).
    pub fn recall(&self) -> f64 {
        ratio(self.answered, self.total)
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Strict accuracy: correct / total.
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct, self.total)
    }

    /// Serializes counts plus the derived ratios.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("total", self.total)
            .set("answered", self.answered)
            .set("correct", self.correct)
            .set("precision", Json::Num(self.precision()))
            .set("recall", Json::Num(self.recall()))
            .set("f1", Json::Num(self.f1()))
            .set("accuracy", Json::Num(self.accuracy()))
    }

    /// Renders the paper's Table 2 row.
    pub fn table2_row(&self, label: &str) -> String {
        format!(
            "| {label} | {:.0} % | {:.0} % | {:.0} % |",
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f1() * 100.0
        )
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_numbers_reproduce_from_counts() {
        // 55 questions, 18 answered, 15 correct → 83 % / 32.7 % / 47 %.
        let c = Counts::new(55, 18, 15);
        assert!((c.precision() - 0.8333).abs() < 1e-3);
        assert!((c.recall() - 0.3272).abs() < 1e-3);
        assert!((c.f1() - 0.4697).abs() < 1e-3);
        assert!((c.accuracy() - 0.2727).abs() < 1e-3);
    }

    #[test]
    fn zero_denominators_are_zero_not_nan() {
        let c = Counts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn table2_row_formats_percentages() {
        let c = Counts::new(55, 18, 15);
        let row = c.table2_row("Our method");
        assert!(row.contains("83 %"));
        assert!(row.contains("33 %"));
        assert!(row.contains("47 %"));
    }

    #[test]
    fn perfect_system() {
        let c = Counts::new(10, 10, 10);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }
}
