//! Serialization of parsed queries back to SPARQL text.
//!
//! `Display` for [`Query`] produces text that re-parses to an equal AST
//! (round-trip property), which the test suite exploits and which lets
//! callers log/persist planned queries canonically.

use std::fmt;

use crate::ast::{
    ArithOp, CmpOp, Expr, GraphPattern, OrderKey, Projection, Query, SelectQuery,
};

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(q) => q.fmt(f),
            Query::Ask(q) => {
                write!(f, "ASK ")?;
                write_group(f, &q.pattern)
            }
        }
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.projection {
            Projection::All => write!(f, "*")?,
            Projection::Vars(vars) => {
                let names: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
                write!(f, "{}", names.join(" "))?;
            }
            Projection::Count { var, distinct, alias } => {
                write!(f, "(COUNT(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match var {
                    Some(v) => write!(f, "?{v}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ") AS ?{alias})")?;
            }
        }
        write!(f, " WHERE ")?;
        write_group(f, &self.pattern)?;
        for (i, key) in self.order_by.iter().enumerate() {
            if i == 0 {
                write!(f, " ORDER BY")?;
            }
            write!(f, " ")?;
            key.fmt(f)?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.descending {
            write!(f, "DESC({})", self.expr)
        } else {
            write!(f, "ASC({})", self.expr)
        }
    }
}

fn write_group(f: &mut fmt::Formatter<'_>, pattern: &GraphPattern) -> fmt::Result {
    write!(f, "{{ ")?;
    for t in &pattern.triples {
        write!(f, "{t} ")?;
    }
    for alternatives in &pattern.unions {
        for (i, alt) in alternatives.iter().enumerate() {
            if i > 0 {
                write!(f, "UNION ")?;
            }
            write_group(f, alt)?;
            write!(f, " ")?;
        }
    }
    for opt in &pattern.optionals {
        write!(f, "OPTIONAL ")?;
        write_group(f, opt)?;
        write!(f, " ")?;
    }
    for filter in &pattern.filters {
        write!(f, "FILTER({filter}) ")?;
    }
    write!(f, "}}")
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "?{v}"),
            Expr::Const(t) => write!(f, "{}", relpat_rdf::render_term(t)),
            Expr::Cmp(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::And(l, r) => write!(f, "({l} && {r})"),
            Expr::Or(l, r) => write!(f, "({l} || {r})"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Arith(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::Regex { value, pattern, case_insensitive } => {
                if *case_insensitive {
                    write!(f, "regex({value}, \"{pattern}\", \"i\")")
                } else {
                    write!(f, "regex({value}, \"{pattern}\")")
                }
            }
            Expr::Lang(e) => write!(f, "lang({e})"),
            Expr::Datatype(e) => write!(f, "datatype({e})"),
            Expr::Str(e) => write!(f, "str({e})"),
            Expr::Bound(v) => write!(f, "bound(?{v})"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    /// Round trip: parse → display → parse must preserve the AST.
    fn round_trips(q: &str) {
        let first = parse_query(q).unwrap_or_else(|e| panic!("parse {q}: {e}"));
        let rendered = first.to_string();
        let second =
            parse_query(&rendered).unwrap_or_else(|e| panic!("reparse {rendered}: {e}"));
        assert_eq!(first, second, "round trip changed AST:\n{q}\n→ {rendered}");
    }

    #[test]
    fn round_trip_basic_select() {
        round_trips("SELECT ?x WHERE { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }");
    }

    #[test]
    fn round_trip_distinct_star_modifiers() {
        round_trips("SELECT DISTINCT * { ?s ?p ?o } ORDER BY DESC(?s) ?p LIMIT 5 OFFSET 2");
    }

    #[test]
    fn round_trip_filters() {
        round_trips(
            "SELECT ?x { ?x dbont:height ?h FILTER(?h > 1.5 && ?h < 2.2) \
             FILTER(regex(str(?x), \"jordan\", \"i\")) }",
        );
        round_trips("ASK { ?x ?p ?o FILTER(!bound(?x) || lang(?o) = \"en\") }");
        round_trips("SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p * 2 - 10 > 800 / 2) }");
    }

    #[test]
    fn round_trip_union_and_optional() {
        round_trips(
            "SELECT ?x { { ?x dbont:writer res:A } UNION { ?x dbont:author res:A } \
             OPTIONAL { ?x rdfs:label ?l } }",
        );
        round_trips("ASK { ?x ?p ?o OPTIONAL { ?o ?q ?z OPTIONAL { ?z ?r ?w } } }");
    }

    #[test]
    fn round_trip_count() {
        round_trips("SELECT (COUNT(DISTINCT ?x) AS ?n) { ?x rdf:type dbont:Book }");
        round_trips("SELECT (COUNT(*) AS ?c) { ?s ?p ?o }");
    }

    #[test]
    fn round_trip_literals() {
        round_trips(
            "ASK { ?x dbont:birthDate \"1952-06-07\"^^xsd:date . ?x rdfs:label \"Kar\"@tr . \
             ?x dbont:pages 432 . ?x dbont:height 1.98 }",
        );
    }

    #[test]
    fn rendered_text_is_single_line_sparql() {
        let q = parse_query("SELECT ?x { ?x a dbont:Book }").unwrap();
        let text = q.to_string();
        assert!(text.starts_with("SELECT ?x WHERE {"));
        assert!(!text.contains('\n'));
    }
}
