//! Thread-safe, bounded LRU cache for query execution.
//!
//! Candidate sets across questions repeat many type-constraint and label
//! sub-queries verbatim, so caching on the canonical query text is a real
//! hot-path win, not a micro-cache. A hit returns a clone of the stored
//! [`QueryResult`] without touching the parser or the executor; a miss
//! parses, executes, and (on success only) stores the parsed [`Query`] AST
//! alongside the result. Failures are never cached — a malformed query
//! re-reports its error on every attempt.
//!
//! The cache assumes the graph it serves is immutable for its lifetime
//! (the knowledge-base graphs are built once and then only read). Callers
//! that do mutate the graph must [`clear`](QueryCache::clear) afterwards.
//!
//! Concurrency: a single mutex guards the map, but it is held only for the
//! lookup/insert bookkeeping — parsing and execution run outside the lock,
//! so concurrent misses for the same text may race and both execute; the
//! last insert wins and the results are identical on an immutable graph.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use relpat_obs::fx::FxHashMap;
use relpat_rdf::Graph;

use relpat_obs::PlanTrace;

use crate::ast::Query;
use crate::error::SparqlError;
use crate::exec::{execute, execute_traced, QueryResult};
use crate::parser::parse_query;

/// Default entry bound: comfortably holds the working set of a full QALD
/// run (a few thousand distinct candidate queries) in a few MB.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Point-in-time hit/miss totals of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when it never served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fieldwise `self - earlier` (saturating) — attributes a shared
    /// cache's cumulative counters to one run by sampling before and after.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

#[derive(Debug)]
struct Entry {
    /// The parsed AST — kept so a future re-execution (e.g. after
    /// [`QueryCache::clear`]) can skip the parser, and so the cache is the
    /// single place that owns the text → AST association.
    parsed: Query,
    result: QueryResult,
    /// Monotonic recency stamp (higher = more recently used).
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<String, Entry>,
    tick: u64,
}

/// Bounded query-text → result cache. See the module docs for the
/// concurrency and invalidation contract.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Parses and executes `text` against `graph`, serving repeats from the
    /// cache. Increments `sparql.cache.hits` / `sparql.cache.misses` on the
    /// global [`relpat_obs`] registry as well as the local stats.
    pub fn query(&self, graph: &Graph, text: &str) -> Result<QueryResult, SparqlError> {
        if let Some(result) = self.lookup(text) {
            self.hits.fetch_add(1, Relaxed);
            relpat_obs::counter!("sparql.cache.hits");
            return Ok(result);
        }
        self.misses.fetch_add(1, Relaxed);
        relpat_obs::counter!("sparql.cache.misses");
        let parsed = parse_query(text)?;
        let result = execute(graph, &parsed)?;
        self.insert(text, parsed, result.clone());
        Ok(result)
    }

    /// Like [`query`](Self::query) but also returns the plan trace of the
    /// execution. A cache hit never re-executes: it returns an empty-steps
    /// trace flagged `cache_hit` (zero rows scanned, matching the unchanged
    /// `sparql.rows_scanned` counter). Cache accounting is identical to the
    /// untraced path, so explained and plain queries share warm state.
    pub fn query_traced(
        &self,
        graph: &Graph,
        text: &str,
    ) -> Result<(QueryResult, PlanTrace), SparqlError> {
        if let Some(result) = self.lookup(text) {
            self.hits.fetch_add(1, Relaxed);
            relpat_obs::counter!("sparql.cache.hits");
            return Ok((result, PlanTrace { cache_hit: true, ..PlanTrace::default() }));
        }
        self.misses.fetch_add(1, Relaxed);
        relpat_obs::counter!("sparql.cache.misses");
        let parsed = parse_query(text)?;
        let (result, trace) = execute_traced(graph, &parsed)?;
        self.insert(text, parsed, result.clone());
        Ok((result, trace))
    }

    /// The cached parsed AST for `text`, if present. Does not touch the
    /// LRU recency stamp or the hit/miss totals.
    pub fn parsed(&self, text: &str) -> Option<Query> {
        self.inner.lock().expect("cache lock").map.get(text).map(|e| e.parsed.clone())
    }

    /// Cumulative hit/miss totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits.load(Relaxed), misses: self.misses.load(Relaxed) }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// The entry bound this cache was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (hit/miss totals are kept). Required after any
    /// mutation of the graph this cache serves.
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock").map.clear();
    }

    fn lookup(&self, text: &str) -> Option<QueryResult> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(text)?;
        entry.last_used = tick;
        Some(entry.result.clone())
    }

    fn insert(&self, text: &str, parsed: Query, result: QueryResult) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(text) {
            // Batch-evict the least-recently-used eighth so eviction cost
            // amortizes instead of paying a full scan per insert.
            let mut stamps: Vec<u64> = inner.map.values().map(|e| e.last_used).collect();
            stamps.sort_unstable();
            let cutoff = stamps[(self.capacity / 8).max(1) - 1];
            let before = inner.map.len();
            inner.map.retain(|_, e| e.last_used > cutoff);
            relpat_obs::jevent!(
                relpat_obs::Level::Info, "sparql.cache.evict",
                "evicted" => before - inner.map.len(),
                "held" => inner.map.len(),
                "capacity" => self.capacity,
            );
        }
        inner.map.insert(text.to_string(), Entry { parsed, result, last_used: tick });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::vocab::{dbont, rdf, res};
    use relpat_rdf::Term;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(rdf::TYPE),
            Term::iri(dbont::iri("Book")),
        );
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("author")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        g
    }

    #[test]
    fn hit_returns_identical_result() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        let first = cache.query(&g, text).unwrap();
        let second = cache.query(&g, text).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.query(&g, text).unwrap(), crate::exec::query(&g, text).unwrap());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!(stats.hit_rate() > 0.6);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ask_results_are_cached_too() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "ASK { res:Snow dbont:author res:Orhan_Pamuk . }";
        assert_eq!(cache.query(&g, text).unwrap(), QueryResult::Boolean(true));
        assert_eq!(cache.query(&g, text).unwrap(), QueryResult::Boolean(true));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn errors_are_not_cached() {
        let g = graph();
        let cache = QueryCache::new(8);
        assert!(cache.query(&g, "SELECT ?x { broken").is_err());
        assert!(cache.query(&g, "SELECT ?x { broken").is_err());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let g = graph();
        let cache = QueryCache::new(8);
        let texts: Vec<String> = (0..8)
            .map(|i| format!("SELECT ?x WHERE {{ ?x rdf:type dbont:Book . }} LIMIT {}", i + 1))
            .collect();
        for t in &texts {
            cache.query(&g, t).unwrap();
        }
        assert_eq!(cache.len(), 8);
        // Touch the newest entry, then overflow: the hot entry must survive.
        cache.query(&g, &texts[7]).unwrap();
        cache.query(&g, "SELECT ?x WHERE { ?x rdf:type dbont:Book . } LIMIT 100").unwrap();
        assert!(cache.len() <= 8);
        let before = cache.stats();
        cache.query(&g, &texts[7]).unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1, "hot entry was evicted");
    }

    #[test]
    fn clear_drops_entries_but_keeps_totals() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        cache.query(&g, text).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        cache.query(&g, text).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn concurrent_lookups_agree() {
        let g = graph();
        let cache = QueryCache::new(64);
        let texts: Vec<String> = (0..16)
            .map(|i| format!("SELECT ?x WHERE {{ ?x rdf:type dbont:Book . }} LIMIT {}", i + 1))
            .collect();
        let reference: Vec<QueryResult> =
            texts.iter().map(|t| crate::exec::query(&g, t).unwrap()).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        for (t, want) in texts.iter().zip(reference.iter()) {
                            assert_eq!(&cache.query(&g, t).unwrap(), want);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 50 * 16);
        assert!(stats.hits > stats.misses);
    }

    #[test]
    fn stores_the_parsed_ast_alongside_the_result() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        assert!(cache.parsed(text).is_none());
        cache.query(&g, text).unwrap();
        assert_eq!(cache.parsed(text), Some(crate::parser::parse_query(text).unwrap()));
    }

    #[test]
    fn traced_queries_share_cache_state_and_flag_hits() {
        let g = graph();
        let cache = QueryCache::new(8);
        assert_eq!(cache.capacity(), 8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        let (first, miss_trace) = cache.query_traced(&g, text).unwrap();
        assert!(!miss_trace.cache_hit);
        assert!(!miss_trace.steps.is_empty(), "a cold execution records join steps");
        assert!(miss_trace.rows_scanned() > 0);
        // Second lookup — including via the untraced path — hits.
        let (second, hit_trace) = cache.query_traced(&g, text).unwrap();
        assert_eq!(first, second);
        assert!(hit_trace.cache_hit);
        assert!(hit_trace.steps.is_empty());
        assert_eq!(hit_trace.rows_scanned(), 0);
        assert_eq!(cache.query(&g, text).unwrap(), first);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn stats_delta_attribution() {
        let a = CacheStats { hits: 10, misses: 4 };
        let b = CacheStats { hits: 25, misses: 5 };
        assert_eq!(b.delta_since(&a), CacheStats { hits: 15, misses: 1 });
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
