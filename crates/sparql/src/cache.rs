//! Thread-safe, bounded LRU cache for query execution, keyed on the
//! canonical rendering of the parsed algebra.
//!
//! Candidate sets across questions repeat many type-constraint and label
//! sub-queries, so caching is a real hot-path win, not a micro-cache.
//! Entries are keyed by the parsed [`Query`]'s canonical `Display` form
//! (which round-trips to an equal AST), so syntactic variants of one query —
//! whitespace, `WHERE` keyword, trailing dots — share a single entry and a
//! single execution. A side table maps each raw text spelling to its
//! canonical key, so repeat lookups of a known spelling skip the parser
//! entirely. A hit returns a clone of the stored [`QueryResult`] without
//! touching the executor; a miss parses, executes, and (on success only)
//! stores the parsed [`Query`] AST alongside the result. Failures are never
//! cached — a malformed query re-reports its error on every attempt.
//!
//! The cache assumes the graph it serves is immutable for its lifetime
//! (the knowledge-base graphs are built once and then only read). Callers
//! that do mutate the graph must [`clear`](QueryCache::clear) afterwards.
//!
//! Concurrency: a single mutex guards the map, but it is held only for the
//! lookup/insert bookkeeping — parsing and execution run outside the lock,
//! so concurrent misses for the same text may race and both execute; the
//! last insert wins and the results are identical on an immutable graph.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use relpat_obs::fx::FxHashMap;
use relpat_rdf::Graph;

use relpat_obs::PlanTrace;

use crate::ast::Query;
use crate::error::SparqlError;
use crate::exec::{execute, execute_traced, QueryResult};
use crate::parser::parse_query;

/// Default entry bound: comfortably holds the working set of a full QALD
/// run (a few thousand distinct candidate queries) in a few MB.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Point-in-time hit/miss totals of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when it never served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fieldwise `self - earlier` (saturating) — attributes a shared
    /// cache's cumulative counters to one run by sampling before and after.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

#[derive(Debug)]
struct Entry {
    /// The parsed AST — kept so a future re-execution (e.g. after
    /// [`QueryCache::clear`]) can skip the parser, and so the cache is the
    /// single place that owns the text → AST association.
    parsed: Query,
    result: QueryResult,
    /// Monotonic recency stamp (higher = more recently used).
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Canonical query rendering → entry.
    map: FxHashMap<String, Entry>,
    /// Raw text spelling → canonical key, so known spellings skip the
    /// parser. Every value is a key of `map` (pruned on eviction/clear).
    alias: FxHashMap<String, String>,
    tick: u64,
}

/// Bounded query-text → result cache. See the module docs for the
/// concurrency and invalidation contract.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Parses and executes `text` against `graph`, serving repeats from the
    /// cache. Increments `sparql.cache.hits` / `sparql.cache.misses` on the
    /// global [`relpat_obs`] registry as well as the local stats.
    pub fn query(&self, graph: &Graph, text: &str) -> Result<QueryResult, SparqlError> {
        match self.lookup(text) {
            Ok(Lookup::Hit(result)) => {
                self.hits.fetch_add(1, Relaxed);
                relpat_obs::counter!("sparql.cache.hits");
                Ok(result)
            }
            Ok(Lookup::Miss { canon, parsed }) => {
                self.miss();
                let result = execute(graph, &parsed)?;
                self.insert(text, canon, parsed, result.clone());
                Ok(result)
            }
            Err(e) => {
                // Unparseable text is a miss every time (never cached).
                self.miss();
                Err(e)
            }
        }
    }

    /// Like [`query`](Self::query) but also returns the plan trace of the
    /// execution. A cache hit never re-executes: it returns an empty-steps
    /// trace flagged `cache_hit` (zero rows scanned, matching the unchanged
    /// `sparql.rows_scanned` counter). Cache accounting is identical to the
    /// untraced path, so explained and plain queries share warm state.
    pub fn query_traced(
        &self,
        graph: &Graph,
        text: &str,
    ) -> Result<(QueryResult, PlanTrace), SparqlError> {
        match self.lookup(text) {
            Ok(Lookup::Hit(result)) => {
                self.hits.fetch_add(1, Relaxed);
                relpat_obs::counter!("sparql.cache.hits");
                Ok((result, PlanTrace { cache_hit: true, ..PlanTrace::default() }))
            }
            Ok(Lookup::Miss { canon, parsed }) => {
                self.miss();
                let (result, trace) = execute_traced(graph, &parsed)?;
                self.insert(text, canon, parsed, result.clone());
                Ok((result, trace))
            }
            Err(e) => {
                self.miss();
                Err(e)
            }
        }
    }

    /// The cached parsed AST for `text` (any known spelling), if present.
    /// Does not touch the LRU recency stamp or the hit/miss totals.
    pub fn parsed(&self, text: &str) -> Option<Query> {
        let inner = self.inner.lock().expect("cache lock");
        let canon = inner.alias.get(text)?;
        inner.map.get(canon.as_str()).map(|e| e.parsed.clone())
    }

    /// Cumulative hit/miss totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits.load(Relaxed), misses: self.misses.load(Relaxed) }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// The entry bound this cache was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and spelling alias (hit/miss totals are kept).
    /// Required after any mutation of the graph this cache serves.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.clear();
        inner.alias.clear();
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Relaxed);
        relpat_obs::counter!("sparql.cache.misses");
    }

    /// Two-stage lookup: a known spelling resolves through the alias table
    /// without parsing; an unknown spelling is parsed and probed by its
    /// canonical rendering (a hit there registers the new spelling). Only a
    /// query absent under its canonical key is a true miss — the caller
    /// executes it and hands the parts back to [`insert`](Self::insert).
    fn lookup(&self, text: &str) -> Result<Lookup, SparqlError> {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            let Inner { map, alias, .. } = &mut *inner;
            if let Some(canon) = alias.get(text) {
                if let Some(entry) = map.get_mut(canon.as_str()) {
                    entry.last_used = tick;
                    return Ok(Lookup::Hit(entry.result.clone()));
                }
            }
        }
        // Parse outside the lock; a hit under the canonical key is still a
        // hit (the executor never ran), it just paid one parse to learn the
        // spelling.
        let parsed = parse_query(text)?;
        let canon = parsed.to_string();
        let mut inner = self.inner.lock().expect("cache lock");
        let tick = inner.tick;
        let Inner { map, alias, .. } = &mut *inner;
        if let Some(entry) = map.get_mut(canon.as_str()) {
            entry.last_used = tick;
            let result = entry.result.clone();
            Self::register_alias(alias, self.capacity, text, &canon);
            return Ok(Lookup::Hit(result));
        }
        Ok(Lookup::Miss { canon, parsed })
    }

    fn insert(&self, text: &str, canon: String, parsed: Query, result: QueryResult) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let capacity = self.capacity;
        let Inner { map, alias, .. } = &mut *inner;
        if map.len() >= capacity && !map.contains_key(&canon) {
            // Batch-evict the least-recently-used eighth so eviction cost
            // amortizes instead of paying a full scan per insert.
            let mut stamps: Vec<u64> = map.values().map(|e| e.last_used).collect();
            stamps.sort_unstable();
            let cutoff = stamps[(capacity / 8).max(1) - 1];
            let before = map.len();
            map.retain(|_, e| e.last_used > cutoff);
            alias.retain(|_, c| map.contains_key(c));
            relpat_obs::jevent!(
                relpat_obs::Level::Info, "sparql.cache.evict",
                "evicted" => before - map.len(),
                "held" => map.len(),
                "capacity" => capacity,
            );
        }
        Self::register_alias(alias, capacity, text, &canon);
        map.insert(canon, Entry { parsed, result, last_used: tick });
    }

    /// Records `text` as a spelling of `canon`. The alias table is bounded
    /// independently of the entry map (spellings are unbounded in principle);
    /// on overflow it is simply dropped — aliases re-register on demand at
    /// the cost of one parse each.
    fn register_alias(
        alias: &mut FxHashMap<String, String>,
        capacity: usize,
        text: &str,
        canon: &str,
    ) {
        if alias.len() >= capacity.saturating_mul(8) && !alias.contains_key(text) {
            alias.clear();
        }
        if alias.get(text).map(String::as_str) != Some(canon) {
            alias.insert(text.to_string(), canon.to_string());
        }
    }
}

/// Outcome of [`QueryCache::lookup`]: a cached result, or the parsed parts
/// the caller needs to execute and insert.
enum Lookup {
    Hit(QueryResult),
    Miss { canon: String, parsed: Query },
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::vocab::{dbont, rdf, res};
    use relpat_rdf::Term;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(rdf::TYPE),
            Term::iri(dbont::iri("Book")),
        );
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("author")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        g
    }

    #[test]
    fn hit_returns_identical_result() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        let first = cache.query(&g, text).unwrap();
        let second = cache.query(&g, text).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.query(&g, text).unwrap(), crate::exec::query(&g, text).unwrap());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!(stats.hit_rate() > 0.6);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ask_results_are_cached_too() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "ASK { res:Snow dbont:author res:Orhan_Pamuk . }";
        assert_eq!(cache.query(&g, text).unwrap(), QueryResult::Boolean(true));
        assert_eq!(cache.query(&g, text).unwrap(), QueryResult::Boolean(true));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn errors_are_not_cached() {
        let g = graph();
        let cache = QueryCache::new(8);
        assert!(cache.query(&g, "SELECT ?x { broken").is_err());
        assert!(cache.query(&g, "SELECT ?x { broken").is_err());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let g = graph();
        let cache = QueryCache::new(8);
        let texts: Vec<String> = (0..8)
            .map(|i| format!("SELECT ?x WHERE {{ ?x rdf:type dbont:Book . }} LIMIT {}", i + 1))
            .collect();
        for t in &texts {
            cache.query(&g, t).unwrap();
        }
        assert_eq!(cache.len(), 8);
        // Touch the newest entry, then overflow: the hot entry must survive.
        cache.query(&g, &texts[7]).unwrap();
        cache.query(&g, "SELECT ?x WHERE { ?x rdf:type dbont:Book . } LIMIT 100").unwrap();
        assert!(cache.len() <= 8);
        let before = cache.stats();
        cache.query(&g, &texts[7]).unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1, "hot entry was evicted");
    }

    #[test]
    fn clear_drops_entries_but_keeps_totals() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        cache.query(&g, text).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        cache.query(&g, text).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn concurrent_lookups_agree() {
        let g = graph();
        let cache = QueryCache::new(64);
        let texts: Vec<String> = (0..16)
            .map(|i| format!("SELECT ?x WHERE {{ ?x rdf:type dbont:Book . }} LIMIT {}", i + 1))
            .collect();
        let reference: Vec<QueryResult> =
            texts.iter().map(|t| crate::exec::query(&g, t).unwrap()).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        for (t, want) in texts.iter().zip(reference.iter()) {
                            assert_eq!(&cache.query(&g, t).unwrap(), want);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 50 * 16);
        assert!(stats.hits > stats.misses);
    }

    #[test]
    fn stores_the_parsed_ast_alongside_the_result() {
        let g = graph();
        let cache = QueryCache::new(8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        assert!(cache.parsed(text).is_none());
        cache.query(&g, text).unwrap();
        assert_eq!(cache.parsed(text), Some(crate::parser::parse_query(text).unwrap()));
    }

    #[test]
    fn traced_queries_share_cache_state_and_flag_hits() {
        let g = graph();
        let cache = QueryCache::new(8);
        assert_eq!(cache.capacity(), 8);
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        let (first, miss_trace) = cache.query_traced(&g, text).unwrap();
        assert!(!miss_trace.cache_hit);
        assert!(!miss_trace.steps.is_empty(), "a cold execution records join steps");
        assert!(miss_trace.rows_scanned() > 0);
        // Second lookup — including via the untraced path — hits.
        let (second, hit_trace) = cache.query_traced(&g, text).unwrap();
        assert_eq!(first, second);
        assert!(hit_trace.cache_hit);
        assert!(hit_trace.steps.is_empty());
        assert_eq!(hit_trace.rows_scanned(), 0);
        assert_eq!(cache.query(&g, text).unwrap(), first);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn syntactic_variants_share_one_entry() {
        let g = graph();
        let cache = QueryCache::new(8);
        // Same query, three spellings: whitespace, WHERE keyword, trailing
        // dot. All reduce to one canonical AST rendering.
        let a = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        let b = "SELECT ?x { ?x rdf:type dbont:Book }";
        let c = "SELECT  ?x  WHERE  {  ?x  rdf:type  dbont:Book  }";
        let first = cache.query(&g, a).unwrap();
        assert_eq!(cache.query(&g, b).unwrap(), first);
        assert_eq!(cache.query(&g, c).unwrap(), first);
        assert_eq!(cache.len(), 1, "variants must share one canonical entry");
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 2, misses: 1 },
            "only the first spelling executes; the others hit via the canonical key"
        );
        // Each spelling now resolves its AST without a fresh parse.
        assert_eq!(cache.parsed(b), cache.parsed(a));
        assert!(cache.parsed(b).is_some());
    }

    #[test]
    fn stats_delta_attribution() {
        let a = CacheStats { hits: 10, misses: 4 };
        let b = CacheStats { hits: 25, misses: 5 };
        assert_eq!(b.delta_since(&a), CacheStats { hits: 15, misses: 1 });
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
