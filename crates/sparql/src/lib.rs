//! # relpat-sparql — SPARQL subset engine over `relpat-rdf`
//!
//! Parses and executes the SPARQL fragment the question-answering pipeline
//! generates and the benchmark's gold queries require: `SELECT`/`ASK`, basic
//! graph patterns, `FILTER` expressions (comparisons, boolean connectives,
//! arithmetic, `regex`/`lang`/`datatype`/`str`/`bound`), `DISTINCT`,
//! `ORDER BY`, `LIMIT` and `OFFSET`.
//!
//! ```
//! use relpat_rdf::{Graph, Term, vocab::{dbont, res, rdf}};
//! use relpat_sparql::query;
//!
//! let mut g = Graph::new();
//! g.add(Term::iri(res::iri("Snow")), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book")));
//! g.add(Term::iri(res::iri("Snow")), Term::iri(dbont::iri("writer")),
//!       Term::iri(res::iri("Orhan Pamuk")));
//!
//! let result = query(&g, "SELECT ?x WHERE { ?x rdf:type dbont:Book . \
//!                         ?x dbont:writer res:Orhan_Pamuk . }").unwrap();
//! assert_eq!(result.into_solutions().unwrap().len(), 1);
//! ```

pub mod algebra;
pub mod ast;
mod cache;
mod display;
mod error;
mod exec;
mod parser;
mod results;

pub use cache::{CacheStats, QueryCache, DEFAULT_CACHE_CAPACITY};
pub use error::SparqlError;
pub use exec::{
    execute, execute_nested, execute_nested_traced, execute_traced, query, query_nested,
    query_traced, QueryResult,
};
pub use parser::parse_query;
// Plan-trace types are defined in `relpat-obs` (so traces can embed them)
// but this crate is their only writer — re-export them as part of our API.
pub use relpat_obs::{JoinAlgo, PlanStep, PlanTrace, QueryPlan};
pub use results::Solutions;
