//! Lexer and recursive-descent parser for the SPARQL subset.

use std::collections::HashMap;

use relpat_rdf::{vocab, Iri, Literal, Term};

use crate::ast::{
    ArithOp, AskQuery, CmpOp, Expr, GraphPattern, OrderKey, Projection, Query, SelectQuery,
    TriplePattern,
};
use crate::error::SparqlError;

/// Parses a SPARQL query string.
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0, prefixes: default_prefix_map() };
    let query = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(query)
}

fn default_prefix_map() -> HashMap<String, String> {
    vocab::default_prefixes()
        .into_iter()
        .map(|(p, ns)| (p.to_string(), ns.to_string()))
        .collect()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Keyword(String),  // uppercased
    Var(String),      // without '?'
    IriRef(String),   // without <>
    PName(String, String),
    String(String, Option<String>, Option<String>), // value, lang, datatype-marker "^^" consumed separately
    Integer(i64),
    Double(f64),
    Boolean(bool),
    A,
    Star,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Comma,
    Semicolon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Slash,
    DoubleCaret,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "ASK", "WHERE", "DISTINCT", "FILTER", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "OFFSET", "PREFIX", "REGEX", "LANG", "DATATYPE", "STR", "BOUND", "COUNT", "AS",
    "OPTIONAL", "UNION",
];

fn lex(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b if b.is_ascii_whitespace() => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'{' => {
                out.push(Token::LBrace);
                pos += 1;
            }
            b'}' => {
                out.push(Token::RBrace);
                pos += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    out.push(Token::Bang);
                    pos += 1;
                }
            }
            b'<' => {
                // Either an IRI ref or a comparison operator. An IRI ref's
                // first char is never whitespace/'=' and must eventually hit '>'.
                if let Some(end) = try_iri_ref(bytes, pos) {
                    let iri = std::str::from_utf8(&bytes[pos + 1..end])
                        .map_err(|_| SparqlError::parse("invalid UTF-8 in IRI"))?;
                    out.push(Token::IriRef(iri.to_string()));
                    pos = end + 1;
                } else if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    pos += 2;
                } else {
                    out.push(Token::Lt);
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    pos += 2;
                } else {
                    return Err(SparqlError::parse("lone '&'"));
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    pos += 2;
                } else {
                    return Err(SparqlError::parse("lone '|'"));
                }
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                // Negative numeric literal or arithmetic minus; decide by
                // the following byte.
                if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) {
                    let (tok, next) = lex_number(bytes, pos)?;
                    out.push(tok);
                    pos = next;
                } else {
                    out.push(Token::Minus);
                    pos += 1;
                }
            }
            b'^' => {
                if bytes.get(pos + 1) == Some(&b'^') {
                    out.push(Token::DoubleCaret);
                    pos += 2;
                } else {
                    return Err(SparqlError::parse("lone '^'"));
                }
            }
            b'?' | b'$' => {
                pos += 1;
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                if start == pos {
                    return Err(SparqlError::parse("empty variable name"));
                }
                out.push(Token::Var(
                    std::str::from_utf8(&bytes[start..pos]).unwrap().to_string(),
                ));
            }
            b'"' => {
                pos += 1;
                let mut value = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(SparqlError::parse("unterminated string"));
                    }
                    match bytes[pos] {
                        b'"' => {
                            pos += 1;
                            break;
                        }
                        b'\\' => {
                            pos += 1;
                            match bytes.get(pos) {
                                Some(b'n') => value.push('\n'),
                                Some(b't') => value.push('\t'),
                                Some(b'"') => value.push('"'),
                                Some(b'\\') => value.push('\\'),
                                _ => return Err(SparqlError::parse("bad escape in string")),
                            }
                            pos += 1;
                        }
                        b if b < 0x80 => {
                            value.push(b as char);
                            pos += 1;
                        }
                        b => {
                            let len = match b {
                                0xC0..=0xDF => 2,
                                0xE0..=0xEF => 3,
                                _ => 4,
                            };
                            let slice = bytes
                                .get(pos..pos + len)
                                .ok_or_else(|| SparqlError::parse("truncated UTF-8"))?;
                            value.push_str(
                                std::str::from_utf8(slice)
                                    .map_err(|_| SparqlError::parse("invalid UTF-8"))?,
                            );
                            pos += len;
                        }
                    }
                }
                // Optional language tag.
                let mut lang = None;
                if bytes.get(pos) == Some(&b'@') {
                    pos += 1;
                    let start = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'-')
                    {
                        pos += 1;
                    }
                    if start == pos {
                        return Err(SparqlError::parse("empty language tag"));
                    }
                    lang = Some(std::str::from_utf8(&bytes[start..pos]).unwrap().to_string());
                }
                out.push(Token::String(value, lang, None));
            }
            b if b.is_ascii_digit() => {
                let (tok, next) = lex_number(bytes, pos)?;
                out.push(tok);
                pos = next;
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                let word = std::str::from_utf8(&bytes[start..pos]).unwrap();
                if bytes.get(pos) == Some(&b':') {
                    // Prefixed name.
                    pos += 1;
                    let lstart = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric()
                            || bytes[pos] == b'_'
                            || bytes[pos] == b'-')
                    {
                        pos += 1;
                    }
                    let local = std::str::from_utf8(&bytes[lstart..pos]).unwrap();
                    out.push(Token::PName(word.to_string(), local.to_string()));
                } else if word == "a" {
                    out.push(Token::A);
                } else if word == "true" {
                    out.push(Token::Boolean(true));
                } else if word == "false" {
                    out.push(Token::Boolean(false));
                } else {
                    let upper = word.to_ascii_uppercase();
                    if KEYWORDS.contains(&upper.as_str()) {
                        out.push(Token::Keyword(upper));
                    } else {
                        return Err(SparqlError::parse(format!("unexpected word '{word}'")));
                    }
                }
            }
            b':' => {
                // Default (empty) prefix name.
                pos += 1;
                let lstart = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                let local = std::str::from_utf8(&bytes[lstart..pos]).unwrap();
                out.push(Token::PName(String::new(), local.to_string()));
            }
            other => {
                return Err(SparqlError::parse(format!(
                    "unexpected character '{}'",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

/// Scans forward from a `<` to decide whether it opens an IRI reference.
/// Returns the index of the closing `>` if so.
fn try_iri_ref(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'>' => return if i > start + 1 { Some(i) } else { None },
            b if b.is_ascii_whitespace() => return None,
            b'"' | b'{' | b'}' => return None,
            _ => i += 1,
        }
    }
    None
}

fn lex_number(bytes: &[u8], start: usize) -> Result<(Token, usize), SparqlError> {
    let mut pos = start;
    if bytes[pos] == b'-' || bytes[pos] == b'+' {
        pos += 1;
    }
    let mut is_double = false;
    while pos < bytes.len() {
        match bytes[pos] {
            b'0'..=b'9' => pos += 1,
            b'.' if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                is_double = true;
                pos += 1;
            }
            b'e' | b'E' => {
                is_double = true;
                pos += 1;
                if matches!(bytes.get(pos), Some(b'-') | Some(b'+')) {
                    pos += 1;
                }
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..pos]).unwrap();
    if is_double {
        let v = text.parse().map_err(|_| SparqlError::parse("invalid double"))?;
        Ok((Token::Double(v), pos))
    } else {
        let v = text.parse().map_err(|_| SparqlError::parse("invalid integer"))?;
        Ok((Token::Integer(v), pos))
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: Token) -> Result<(), SparqlError> {
        match self.bump() {
            Some(t) if t == token => Ok(()),
            other => Err(SparqlError::parse(format!("expected {token:?}, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        match self.bump() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(SparqlError::parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> Result<(), SparqlError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(SparqlError::parse(format!(
                "trailing input starting at {:?}",
                self.tokens[self.pos]
            )))
        }
    }

    fn parse_query(&mut self) -> Result<Query, SparqlError> {
        // PREFIX declarations.
        while self.eat_keyword("PREFIX") {
            let (name, local) = match self.bump() {
                Some(Token::PName(p, l)) => (p, l),
                other => {
                    return Err(SparqlError::parse(format!(
                        "expected prefix name, found {other:?}"
                    )))
                }
            };
            if !local.is_empty() {
                return Err(SparqlError::parse("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                Some(Token::IriRef(iri)) => iri,
                other => {
                    return Err(SparqlError::parse(format!("expected IRI, found {other:?}")))
                }
            };
            self.prefixes.insert(name, iri);
        }
        match self.bump() {
            Some(Token::Keyword(k)) if k == "SELECT" => self.parse_select().map(Query::Select),
            Some(Token::Keyword(k)) if k == "ASK" => {
                let pattern = self.parse_group()?;
                Ok(Query::Ask(AskQuery { pattern }))
            }
            other => Err(SparqlError::parse(format!(
                "expected SELECT or ASK, found {other:?}"
            ))),
        }
    }

    fn parse_select(&mut self) -> Result<SelectQuery, SparqlError> {
        let distinct = self.eat_keyword("DISTINCT");
        let projection = match self.peek() {
            Some(Token::Star) => {
                self.bump();
                Projection::All
            }
            Some(Token::Var(_)) => {
                let mut vars = Vec::new();
                while let Some(Token::Var(v)) = self.peek() {
                    vars.push(v.clone());
                    self.bump();
                }
                Projection::Vars(vars)
            }
            // `( COUNT ( DISTINCT? ?x|* ) AS ?alias )` or bare `COUNT(...)`.
            Some(Token::LParen) | Some(Token::Keyword(_)) => self.parse_count_projection()?,
            other => {
                return Err(SparqlError::parse(format!(
                    "expected '*', variables or COUNT, found {other:?}"
                )))
            }
        };
        // WHERE is optional in SPARQL.
        self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Keyword(k)) if k == "ASC" || k == "DESC" => {
                        let descending = k == "DESC";
                        self.bump();
                        self.expect(Token::LParen)?;
                        let expr = self.parse_expr()?;
                        self.expect(Token::RParen)?;
                        order_by.push(OrderKey { expr, descending });
                    }
                    Some(Token::Var(v)) => {
                        let v = v.clone();
                        self.bump();
                        order_by.push(OrderKey { expr: Expr::Var(v), descending: false });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(SparqlError::parse("empty ORDER BY"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                match self.bump() {
                    Some(Token::Integer(n)) if n >= 0 => limit = Some(n as usize),
                    other => {
                        return Err(SparqlError::parse(format!(
                            "expected LIMIT count, found {other:?}"
                        )))
                    }
                }
            } else if self.eat_keyword("OFFSET") {
                match self.bump() {
                    Some(Token::Integer(n)) if n >= 0 => offset = Some(n as usize),
                    other => {
                        return Err(SparqlError::parse(format!(
                            "expected OFFSET count, found {other:?}"
                        )))
                    }
                }
            } else {
                break;
            }
        }

        Ok(SelectQuery { distinct, projection, pattern, order_by, limit, offset })
    }

    /// `( COUNT ( DISTINCT? ?x|* ) AS ?alias )`, with the surrounding
    /// parentheses and the `AS ?alias` part optional (bare `COUNT(?x)`
    /// defaults the output column to `count`).
    fn parse_count_projection(&mut self) -> Result<Projection, SparqlError> {
        let wrapped = self.peek() == Some(&Token::LParen);
        if wrapped {
            self.bump();
        }
        self.expect_keyword("COUNT")?;
        self.expect(Token::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let var = match self.bump() {
            Some(Token::Star) => None,
            Some(Token::Var(v)) => Some(v),
            other => {
                return Err(SparqlError::parse(format!(
                    "COUNT takes '*' or a variable, found {other:?}"
                )))
            }
        };
        self.expect(Token::RParen)?;
        let mut alias = "count".to_string();
        if self.eat_keyword("AS") {
            match self.bump() {
                Some(Token::Var(v)) => alias = v,
                other => {
                    return Err(SparqlError::parse(format!(
                        "AS takes a variable, found {other:?}"
                    )))
                }
            }
        }
        if wrapped {
            self.expect(Token::RParen)?;
        }
        Ok(Projection::Count { var, distinct, alias })
    }

    fn parse_group(&mut self) -> Result<GraphPattern, SparqlError> {
        self.expect(Token::LBrace)?;
        let mut pattern = GraphPattern::default();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    return Ok(pattern);
                }
                Some(Token::Keyword(k)) if k == "FILTER" => {
                    self.bump();
                    self.expect(Token::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(Token::RParen)?;
                    pattern.filters.push(expr);
                    // Optional '.' after a filter.
                    if self.peek() == Some(&Token::Dot) {
                        self.bump();
                    }
                }
                Some(Token::Keyword(k)) if k == "OPTIONAL" => {
                    self.bump();
                    let inner = self.parse_group()?;
                    pattern.optionals.push(inner);
                    if self.peek() == Some(&Token::Dot) {
                        self.bump();
                    }
                }
                Some(Token::LBrace) => {
                    // `{ A } UNION { B } ...` — or a plain nested group,
                    // which merges into the parent.
                    let first = self.parse_group()?;
                    let mut alternatives = vec![first];
                    while matches!(self.peek(), Some(Token::Keyword(k)) if k == "UNION") {
                        self.bump();
                        alternatives.push(self.parse_group()?);
                    }
                    if alternatives.len() >= 2 {
                        pattern.unions.push(alternatives);
                    } else {
                        let only = alternatives.pop().expect("one alternative");
                        pattern.triples.extend(only.triples);
                        pattern.filters.extend(only.filters);
                        pattern.optionals.extend(only.optionals);
                        pattern.unions.extend(only.unions);
                    }
                    if self.peek() == Some(&Token::Dot) {
                        self.bump();
                    }
                }
                Some(_) => {
                    self.parse_triples_block(&mut pattern)?;
                }
                None => return Err(SparqlError::parse("unterminated group pattern")),
            }
        }
    }

    /// Parses `subject pred obj (, obj)* (; pred obj ...)* .?`
    fn parse_triples_block(&mut self, pattern: &mut GraphPattern) -> Result<(), SparqlError> {
        let subject = self.parse_term()?;
        loop {
            let predicate = self.parse_verb()?;
            loop {
                let object = self.parse_term()?;
                pattern.triples.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            match self.peek() {
                Some(Token::Semicolon) => {
                    self.bump();
                    // Allow dangling ';' before '.' or '}'.
                    if matches!(self.peek(), Some(Token::Dot) | Some(Token::RBrace)) {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.peek() == Some(&Token::Dot) {
            self.bump();
        }
        Ok(())
    }

    fn parse_verb(&mut self) -> Result<Term, SparqlError> {
        if self.peek() == Some(&Token::A) {
            self.bump();
            return Ok(Term::iri(vocab::rdf::TYPE));
        }
        let t = self.parse_term()?;
        match &t {
            Term::Iri(_) | Term::Variable(_) => Ok(t),
            other => Err(SparqlError::parse(format!("invalid predicate {other}"))),
        }
    }

    fn parse_term(&mut self) -> Result<Term, SparqlError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(Term::var(v)),
            Some(Token::IriRef(iri)) => Ok(Term::iri(iri)),
            Some(Token::PName(prefix, local)) => {
                let ns = self
                    .prefixes
                    .get(&prefix)
                    .ok_or_else(|| SparqlError::parse(format!("unknown prefix '{prefix}:'")))?;
                Ok(Term::iri(format!("{ns}{local}")))
            }
            Some(Token::String(value, lang, _)) => {
                if self.peek() == Some(&Token::DoubleCaret) {
                    self.bump();
                    let dt = match self.bump() {
                        Some(Token::IriRef(iri)) => Iri::new(iri),
                        Some(Token::PName(prefix, local)) => {
                            let ns = self.prefixes.get(&prefix).ok_or_else(|| {
                                SparqlError::parse(format!("unknown prefix '{prefix}:'"))
                            })?;
                            Iri::new(format!("{ns}{local}"))
                        }
                        other => {
                            return Err(SparqlError::parse(format!(
                                "expected datatype IRI, found {other:?}"
                            )))
                        }
                    };
                    Ok(Term::Literal(Literal::typed(value, dt)))
                } else if let Some(tag) = lang {
                    Ok(Term::Literal(Literal::lang(value, tag)))
                } else {
                    Ok(Term::Literal(Literal::plain(value)))
                }
            }
            Some(Token::Integer(n)) => Ok(Term::Literal(Literal::integer(n))),
            Some(Token::Double(v)) => Ok(Term::Literal(Literal::double(v))),
            Some(Token::Boolean(b)) => Ok(Term::Literal(Literal::boolean(b))),
            other => Err(SparqlError::parse(format!("expected term, found {other:?}"))),
        }
    }

    // Expression grammar: or > and > cmp > add > mul > unary > primary.
    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, SparqlError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        if self.peek() == Some(&Token::Bang) {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Keyword(k)) if k == "REGEX" => {
                self.bump();
                self.expect(Token::LParen)?;
                let value = self.parse_expr()?;
                self.expect(Token::Comma)?;
                let pattern = match self.bump() {
                    Some(Token::String(s, None, _)) => s,
                    other => {
                        return Err(SparqlError::parse(format!(
                            "regex pattern must be a plain string, found {other:?}"
                        )))
                    }
                };
                let mut case_insensitive = false;
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                    match self.bump() {
                        Some(Token::String(flags, None, _)) => {
                            case_insensitive = flags.contains('i');
                        }
                        other => {
                            return Err(SparqlError::parse(format!(
                                "regex flags must be a string, found {other:?}"
                            )))
                        }
                    }
                }
                self.expect(Token::RParen)?;
                Ok(Expr::Regex { value: Box::new(value), pattern, case_insensitive })
            }
            Some(Token::Keyword(k)) if k == "LANG" || k == "DATATYPE" || k == "STR" => {
                self.bump();
                self.expect(Token::LParen)?;
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(match k.as_str() {
                    "LANG" => Expr::Lang(Box::new(inner)),
                    "DATATYPE" => Expr::Datatype(Box::new(inner)),
                    _ => Expr::Str(Box::new(inner)),
                })
            }
            Some(Token::Keyword(k)) if k == "BOUND" => {
                self.bump();
                self.expect(Token::LParen)?;
                let var = match self.bump() {
                    Some(Token::Var(v)) => v,
                    other => {
                        return Err(SparqlError::parse(format!(
                            "BOUND takes a variable, found {other:?}"
                        )))
                    }
                };
                self.expect(Token::RParen)?;
                Ok(Expr::Bound(var))
            }
            Some(Token::Var(v)) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            _ => {
                let term = self.parse_term()?;
                Ok(Expr::Const(term))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query1() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x rdf:type dbont:Book . ?x dbont:writer res:Orhan_Pamuk . }",
        )
        .unwrap();
        let Query::Select(sel) = q else { panic!("expected SELECT") };
        assert_eq!(sel.pattern.triples.len(), 2);
        assert_eq!(sel.projection, Projection::Vars(vec!["x".into()]));
        assert!(!sel.distinct);
    }

    #[test]
    fn parses_select_star_distinct() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        let Query::Select(sel) = q else { panic!() };
        assert!(sel.distinct);
        assert_eq!(sel.projection, Projection::All);
    }

    #[test]
    fn parses_a_keyword_and_semicolons() {
        let q = parse_query("SELECT ?x { ?x a dbont:Book ; dbont:writer ?w . }").unwrap();
        let pattern = q.pattern();
        assert_eq!(pattern.triples.len(), 2);
        assert_eq!(pattern.triples[0].predicate, Term::iri(vocab::rdf::TYPE));
        assert_eq!(pattern.triples[0].subject, pattern.triples[1].subject);
    }

    #[test]
    fn parses_object_list() {
        let q = parse_query("ASK { res:X dbont:knows res:A, res:B }").unwrap();
        assert_eq!(q.pattern().triples.len(), 2);
    }

    #[test]
    fn parses_filter_comparison() {
        let q = parse_query("SELECT ?x { ?x dbont:height ?h FILTER(?h > 2.0) }").unwrap();
        assert_eq!(q.pattern().filters.len(), 1);
        match &q.pattern().filters[0] {
            Expr::Cmp(_, CmpOp::Gt, _) => {}
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn parses_filter_regex_with_flags() {
        let q =
            parse_query("SELECT ?x { ?x rdfs:label ?l FILTER(regex(str(?l), \"snow\", \"i\")) }")
                .unwrap();
        match &q.pattern().filters[0] {
            Expr::Regex { case_insensitive: true, pattern, .. } => {
                assert_eq!(pattern, "snow");
            }
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_connectives_precedence() {
        let q = parse_query("ASK { ?x ?p ?o FILTER(?o > 1 && ?o < 5 || !bound(?x)) }").unwrap();
        // Expect Or(And(..,..), Not(Bound))
        match &q.pattern().filters[0] {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(**lhs, Expr::And(_, _)));
                assert!(matches!(**rhs, Expr::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_order_limit_offset() {
        let q = parse_query(
            "SELECT ?x { ?x dbont:height ?h } ORDER BY DESC(?h) ?x LIMIT 5 OFFSET 2",
        )
        .unwrap();
        let Query::Select(sel) = q else { panic!() };
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].descending);
        assert_eq!(sel.limit, Some(5));
        assert_eq!(sel.offset, Some(2));
    }

    #[test]
    fn parses_custom_prefix() {
        let q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?x { ?x ex:p ex:o }",
        )
        .unwrap();
        assert_eq!(
            q.pattern().triples[0].predicate,
            Term::iri("http://example.org/p")
        );
    }

    #[test]
    fn parses_typed_and_lang_literals() {
        let q = parse_query(
            "ASK { ?x dbont:birthDate \"1952-06-07\"^^xsd:date . ?x rdfs:label \"Kar\"@tr }",
        )
        .unwrap();
        let lits: Vec<_> = q
            .pattern()
            .triples
            .iter()
            .filter_map(|t| t.object.as_literal())
            .collect();
        assert!(lits[0].is_date());
        assert_eq!(lits[1].language(), Some("tr"));
    }

    #[test]
    fn parses_negative_numbers_in_filters() {
        let q = parse_query("SELECT ?x { ?x dbont:delta ?d FILTER(?d < -5) }").unwrap();
        match &q.pattern().filters[0] {
            Expr::Cmp(_, CmpOp::Lt, rhs) => match rhs.as_ref() {
                Expr::Const(Term::Literal(l)) => assert_eq!(l.as_i64(), Some(-5)),
                other => panic!("unexpected rhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("ASK { ?s ?p ?o } nonsense").is_err());
    }

    #[test]
    fn rejects_unknown_prefix() {
        assert!(parse_query("SELECT ?x { ?x zzz:p ?o }").is_err());
    }

    #[test]
    fn rejects_literal_predicate() {
        assert!(parse_query("ASK { ?s \"p\" ?o }").is_err());
    }

    #[test]
    fn lt_operator_vs_iri_disambiguation() {
        // '<' followed by a space is a comparison, '<http...>' is an IRI.
        let q = parse_query("SELECT ?x { ?x <http://e/p> ?h FILTER(?h < 5) }").unwrap();
        assert_eq!(q.pattern().triples[0].predicate, Term::iri("http://e/p"));
        assert_eq!(q.pattern().filters.len(), 1);
    }
}
