//! Solution sequences returned by `SELECT` queries.

use relpat_rdf::Term;

/// A table of variable bindings: one column per projected variable, one row
/// per solution. Unbound projections are `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solutions {
    pub variables: Vec<String>,
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The binding of `var` in row `row`, if any.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        let col = self.variables.iter().position(|v| v == var)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// All bindings of one variable across rows (skipping unbound).
    pub fn column(&self, var: &str) -> Vec<&Term> {
        let Some(col) = self.variables.iter().position(|v| v == var) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r[col].as_ref()).collect()
    }

    /// The single binding of the first projected variable of the first row —
    /// the common "give me the answer" accessor for single-var queries.
    pub fn first(&self) -> Option<&Term> {
        self.rows.first()?.first()?.as_ref()
    }

    /// Renders an ASCII table, for examples and reports.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.variables.join(" | "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|t| t.as_ref().map_or("—".to_string(), relpat_rdf::render_term))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Solutions {
        Solutions {
            variables: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("http://e/a")), None],
                vec![Some(Term::iri("http://e/b")), Some(Term::literal("v"))],
            ],
        }
    }

    #[test]
    fn get_by_name() {
        let s = sample();
        assert_eq!(s.get(0, "x"), Some(&Term::iri("http://e/a")));
        assert_eq!(s.get(0, "y"), None);
        assert_eq!(s.get(9, "x"), None);
        assert_eq!(s.get(0, "zzz"), None);
    }

    #[test]
    fn column_skips_unbound() {
        let s = sample();
        assert_eq!(s.column("y").len(), 1);
        assert_eq!(s.column("x").len(), 2);
        assert!(s.column("nope").is_empty());
    }

    #[test]
    fn first_returns_first_binding() {
        let s = sample();
        assert_eq!(s.first(), Some(&Term::iri("http://e/a")));
        assert_eq!(Solutions::default().first(), None);
    }

    #[test]
    fn table_renders_every_row() {
        let s = sample();
        let table = s.to_table();
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("—"));
    }
}
