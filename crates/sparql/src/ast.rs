//! Abstract syntax tree for the SPARQL subset.
//!
//! The subset covers what the paper's pipeline generates and what the
//! benchmark's gold queries need: `SELECT` / `ASK`, basic graph patterns,
//! `FILTER` expressions, `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET`.

use relpat_rdf::Term;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select(SelectQuery),
    Ask(AskQuery),
}

impl Query {
    /// The query's graph pattern, independent of form.
    pub fn pattern(&self) -> &GraphPattern {
        match self {
            Query::Select(q) => &q.pattern,
            Query::Ask(q) => &q.pattern,
        }
    }
}

/// `SELECT (DISTINCT)? (*|vars) WHERE { ... } (ORDER BY ...)? (LIMIT n)? (OFFSET n)?`
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub distinct: bool,
    pub projection: Projection,
    pub pattern: GraphPattern,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

/// `ASK { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct AskQuery {
    pub pattern: GraphPattern,
}

/// The projected variables of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *` — all variables in the pattern, in first-occurrence order.
    All,
    /// `SELECT ?a ?b`
    Vars(Vec<String>),
    /// `SELECT (COUNT(?x) AS ?c)` — the one aggregate the QA extensions
    /// need (count questions).
    Count {
        /// Counted variable; `None` for `COUNT(*)`.
        var: Option<String>,
        distinct: bool,
        /// Output column name.
        alias: String,
    },
}

/// A group graph pattern: a basic graph pattern plus filters, `OPTIONAL`
/// sub-groups and `UNION` blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphPattern {
    pub triples: Vec<TriplePattern>,
    pub filters: Vec<Expr>,
    /// `OPTIONAL { ... }` sub-patterns (left-joined after the BGP).
    pub optionals: Vec<GraphPattern>,
    /// `{ A } UNION { B } (UNION { C })*` blocks: each entry lists ≥ 2
    /// alternatives whose solutions are concatenated.
    pub unions: Vec<Vec<GraphPattern>>,
}

impl GraphPattern {
    /// All variable names in first-occurrence order, recursing into unions
    /// and optionals (triples first, depth-first).
    pub fn variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.collect_variables(&mut vars);
        vars
    }

    fn collect_variables(&self, vars: &mut Vec<String>) {
        let mut push = |term: &Term| {
            if let Term::Variable(name) = term {
                if !vars.iter().any(|v| v == name) {
                    vars.push(name.clone());
                }
            }
        };
        for t in &self.triples {
            push(&t.subject);
            push(&t.predicate);
            push(&t.object);
        }
        for alternatives in &self.unions {
            for alt in alternatives {
                alt.collect_variables(vars);
            }
        }
        for opt in &self.optionals {
            opt.collect_variables(vars);
        }
    }

    /// True when the pattern is a plain BGP + filters (no algebra).
    pub fn is_flat(&self) -> bool {
        self.optionals.is_empty() && self.unions.is_empty()
    }
}

/// A triple pattern: any position may be a variable (`Term::Variable`).
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl TriplePattern {
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        TriplePattern { subject, predicate, object }
    }
}

impl std::fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {} .",
            relpat_rdf::render_term(&self.subject),
            relpat_rdf::render_term(&self.predicate),
            relpat_rdf::render_term(&self.object)
        )
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub descending: bool,
}

/// Filter/order expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Const(Term),
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// `regex(expr, "pattern" (, "i")?)` — see executor docs for the
    /// supported pattern subset.
    Regex { value: Box<Expr>, pattern: String, case_insensitive: bool },
    /// `lang(expr)`
    Lang(Box<Expr>),
    /// `datatype(expr)`
    Datatype(Box<Expr>),
    /// `str(expr)`
    Str(Box<Expr>),
    /// `bound(?v)`
    Bound(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_in_first_occurrence_order() {
        let gp = GraphPattern {
            triples: vec![
                TriplePattern::new(Term::var("x"), Term::iri("p"), Term::var("y")),
                TriplePattern::new(Term::var("y"), Term::iri("q"), Term::var("x")),
            ],
            ..GraphPattern::default()
        };
        assert_eq!(gp.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn triple_pattern_display_uses_prefixes() {
        let tp = TriplePattern::new(
            Term::var("x"),
            Term::iri(relpat_rdf::vocab::rdf::TYPE),
            Term::iri(relpat_rdf::vocab::dbont::iri("Book")),
        );
        assert_eq!(tp.to_string(), "?x rdf:type dbont:Book .");
    }

    #[test]
    fn query_pattern_accessor() {
        let gp = GraphPattern::default();
        let q = Query::Ask(AskQuery { pattern: gp.clone() });
        assert_eq!(q.pattern(), &gp);
    }
}
