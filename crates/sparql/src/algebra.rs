//! Query algebra: the lowered, planner-annotated form of a parsed query.
//!
//! [`crate::ast`] stays the pure parse tree; this module lowers a
//! [`GraphPattern`] against a concrete [`Graph`] into an [`Algebra`] tree
//! (spargebra-style separation: Bgp / Union / LeftJoin / Filter / Slice)
//! whose BGP leaves carry the planner's decisions — join order, index
//! estimates, selectivity scores and the join operator per step. The
//! executor ([`crate::exec`]) interprets this tree; it never re-plans.
//!
//! ## Operator selection
//!
//! The greedy planner orders each BGP by ascending selectivity score
//! exactly as before; what is new is the per-step [`JoinAlgo`] annotation:
//!
//! - **Merge** — chosen when exactly one of the step's variables is already
//!   bound by earlier steps *and* the binding stream is sorted on that
//!   variable. The first step of the top-level BGP emits rows in its routed
//!   permutation's order, i.e. sorted by the scan's sort-major free position
//!   ([`relpat_rdf::sort_major_position`]); every operator preserves input
//!   row order, so that sortedness survives the whole join pipeline. With
//!   one varying component, consecutive permuted probe keys are
//!   monotonically non-decreasing, and one forward cursor over the frozen
//!   slice finds every key's range without restarting the binary search.
//! - **Gallop** — chosen for any other step with at least one bound
//!   variable (and for bound-variable-free cartesian steps, which collapse
//!   to a single probe key): probe keys are deduplicated + sorted, then
//!   each distinct key's slice is located once by `partition_point`
//!   searches over a strictly shrinking tail.
//! - **Nested** — everything else, and the hard fallback: the first step,
//!   dead patterns (a concrete term missing from the graph), any BGP below
//!   a UNION/OPTIONAL (whose runtime bindings may bind variables this
//!   lowering did not model, or bind them non-uniformly after a left join),
//!   any plan built over a graph with a live overlay, and — downgraded at
//!   run time — the final step of a LIMIT/ASK pushdown, which must stop
//!   mid-slice.
//!
//! Merge and gallop both count each distinct key's range once toward
//! `sparql.rows_scanned`, which is exactly the probe work they do — and
//! never more than the nested loop's per-row rescans.

use std::cmp::Ordering;

use relpat_obs::fx::FxHashMap;
use relpat_obs::JoinAlgo;
use relpat_rdf::{sort_major_position, Graph, IdPattern, Term, TermId};

use crate::ast::{Expr, GraphPattern, Query, TriplePattern};

/// One planner-annotated join step of a BGP, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// Index of the pattern in the source BGP (source order).
    pub pattern_index: usize,
    /// The triple pattern itself.
    pub pattern: TriplePattern,
    /// Exact index estimate at choice time (`graph.estimate()` over the
    /// pattern's concrete positions).
    pub estimate: usize,
    /// Selectivity-adjusted score the planner ranked by:
    /// `estimate / 10^(bound variable positions)`.
    pub score: f64,
    /// Join operator selected for this step (the executor may still
    /// downgrade to nested at run time).
    pub algo: JoinAlgo,
}

/// Algebra nodes, lowered from [`GraphPattern`]. `input` edges point at the
/// upstream producer: the tree is executed bottom-up from its BGP leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum Algebra {
    /// Basic graph pattern join, steps in planned execution order.
    Bgp(Vec<PlannedStep>),
    /// One `UNION` block: `input`'s rows joined against each alternative,
    /// solutions concatenated in alternative order.
    Union { input: Box<Algebra>, alternatives: Vec<Algebra> },
    /// One `OPTIONAL`: left join of `input`'s rows against `right` — rows
    /// without a match survive unextended.
    LeftJoin { input: Box<Algebra>, right: Box<Algebra> },
    /// Group filters applied to `input`'s rows (erroring filters drop the
    /// row, per SPARQL error semantics).
    Filter { input: Box<Algebra>, exprs: Vec<Expr> },
    /// Bare-LIMIT / ASK early-stop cap. Only ever wraps the root; the
    /// executor pushes the cap into the join loop when `input` is a bare
    /// [`Algebra::Bgp`] and truncates after evaluation otherwise.
    Slice { input: Box<Algebra>, limit: usize },
}

/// Lowering options. `force_nested` pins every step to the nested-loop
/// operator — the differential oracle ([`crate::execute_nested`]) and the
/// benchmark baselines use it to compare operators on identical join orders.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerOpts {
    pub force_nested: bool,
}

/// A graph pattern lowered against a specific graph: the algebra tree plus
/// the variable universe its binding rows are indexed by.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedPattern {
    pub root: Algebra,
    /// All pattern variables in first-occurrence order — the column layout
    /// of every binding row the tree's operators produce.
    pub variables: Vec<String>,
}

/// Lowers a query's pattern with default options (sorted-aware operators
/// enabled). `limit` is the bare-LIMIT/ASK early-stop request, which
/// becomes a root [`Algebra::Slice`].
pub fn lower(graph: &Graph, query: &Query, limit: Option<usize>) -> PlannedPattern {
    lower_pattern(graph, query.pattern(), limit, LowerOpts::default())
}

/// Lowers a graph pattern against `graph`. See [`LowerOpts`].
pub fn lower_pattern(
    graph: &Graph,
    pattern: &GraphPattern,
    limit: Option<usize>,
    opts: LowerOpts,
) -> PlannedPattern {
    let variables = pattern.variables();
    let var_index: FxHashMap<&str, usize> =
        variables.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
    let mut root = lower_group(graph, pattern, &var_index, true, opts);
    if let Some(limit) = limit {
        root = Algebra::Slice { input: Box::new(root), limit };
    }
    PlannedPattern { root, variables }
}

fn lower_group(
    graph: &Graph,
    gp: &GraphPattern,
    var_index: &FxHashMap<&str, usize>,
    top_level: bool,
    opts: LowerOpts,
) -> Algebra {
    // Sorted-aware operators are only sound for the top-level BGP: it alone
    // starts from the single all-unbound row, so the planner's bound-variable
    // progression matches the runtime binding shape exactly. Sub-group BGPs
    // (UNION alternatives, OPTIONAL bodies) receive correlated bindings the
    // lowering does not model — possibly non-uniform after a left join —
    // and stay on the nested fallback.
    let sorted_aware = top_level && !opts.force_nested && graph.overlay_len() == 0;
    let mut node = Algebra::Bgp(plan_bgp(graph, &gp.triples, var_index, sorted_aware));
    for alternatives in &gp.unions {
        node = Algebra::Union {
            input: Box::new(node),
            alternatives: alternatives
                .iter()
                .map(|alt| lower_group(graph, alt, var_index, false, opts))
                .collect(),
        };
    }
    for opt in &gp.optionals {
        node = Algebra::LeftJoin {
            input: Box::new(node),
            right: Box::new(lower_group(graph, opt, var_index, false, opts)),
        };
    }
    if !gp.filters.is_empty() {
        node = Algebra::Filter { input: Box::new(node), exprs: gp.filters.clone() };
    }
    node
}

/// What the planner knows about one candidate pattern at choice time.
struct Scored {
    score: f64,
    estimate: usize,
    /// The pattern's concrete positions as ids (variables stay `None`).
    id_pattern: IdPattern,
    /// A concrete term does not occur in the graph: matches nothing.
    dead: bool,
}

/// Greedy join ordering: repeatedly pick the pattern with the fewest
/// estimated matches, treating variables already bound by chosen patterns
/// as bound positions. When `sorted_aware`, annotate each step with the
/// merge/gallop operator per the module-level selection rule; otherwise
/// every step stays nested.
pub(crate) fn plan_bgp(
    graph: &Graph,
    triples: &[TriplePattern],
    var_index: &FxHashMap<&str, usize>,
    sorted_aware: bool,
) -> Vec<PlannedStep> {
    let n = triples.len();
    let mut chosen: Vec<PlannedStep> = Vec::with_capacity(n);
    let mut bound_vars = vec![false; var_index.len()];
    let mut remaining: Vec<usize> = (0..n).collect();
    // The variable the binding stream is sorted by (established by the
    // first step's scan order, preserved by every order-preserving step).
    let mut sorted_var: Option<usize> = None;

    while !remaining.is_empty() {
        let (best_pos, best) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &idx)| (pos, score_pattern(graph, &triples[idx], &bound_vars, var_index)))
            .min_by(|(_, a), (_, b)| a.score.partial_cmp(&b.score).unwrap_or(Ordering::Equal))
            .expect("remaining is non-empty");
        let idx = remaining.swap_remove(best_pos);
        let tp = &triples[idx];

        let algo = if !sorted_aware || best.dead {
            JoinAlgo::Nested
        } else if chosen.is_empty() {
            // First step: one scan for the single initial row. Record what
            // the emitted rows will be sorted by.
            if let Some(pos) = sort_major_position(best.id_pattern) {
                let term = [&tp.subject, &tp.predicate, &tp.object][pos];
                if let Term::Variable(v) = term {
                    sorted_var = var_index.get(v.as_str()).copied();
                }
            }
            JoinAlgo::Nested
        } else {
            let mut bound_in_binding: Vec<usize> = Vec::new();
            for term in [&tp.subject, &tp.predicate, &tp.object] {
                if let Term::Variable(v) = term {
                    if let Some(&i) = var_index.get(v.as_str()) {
                        if bound_vars[i] && !bound_in_binding.contains(&i) {
                            bound_in_binding.push(i);
                        }
                    }
                }
            }
            match bound_in_binding.as_slice() {
                [only] if sorted_var == Some(*only) => JoinAlgo::Merge,
                _ => JoinAlgo::Gallop,
            }
        };

        for term in [&tp.subject, &tp.predicate, &tp.object] {
            if let Term::Variable(v) = term {
                if let Some(&i) = var_index.get(v.as_str()) {
                    bound_vars[i] = true;
                }
            }
        }
        chosen.push(PlannedStep {
            pattern_index: idx,
            pattern: tp.clone(),
            estimate: best.estimate,
            score: best.score,
            algo,
        });
    }
    chosen
}

/// Cost estimate for one pattern given the set of already-bound variables.
/// Concrete positions contribute to an index estimate; bound variables
/// divide the estimate (each roughly one order of magnitude); unbound
/// variables keep it unchanged.
fn score_pattern(
    graph: &Graph,
    tp: &TriplePattern,
    bound_vars: &[bool],
    var_index: &FxHashMap<&str, usize>,
) -> Scored {
    let mut id_pattern = IdPattern { subject: None, predicate: None, object: None };
    let mut bound_var_positions = 0u32;
    let mut dead = false;
    {
        let mut fill = |term: &Term, slot: &mut Option<TermId>| match term {
            Term::Variable(v) => {
                if var_index.get(v.as_str()).is_some_and(|&i| bound_vars[i]) {
                    bound_var_positions += 1;
                }
            }
            concrete => match graph.term_id(concrete) {
                Some(id) => *slot = Some(id),
                None => dead = true,
            },
        };
        // Borrow gymnastics: fill each slot separately.
        let IdPattern { subject, predicate, object } = &mut id_pattern;
        fill(&tp.subject, subject);
        fill(&tp.predicate, predicate);
        fill(&tp.object, object);
    }
    if dead {
        // Matches nothing: evaluate first to prune immediately.
        return Scored { score: 0.0, estimate: 0, id_pattern, dead };
    }
    let estimate = graph.estimate(id_pattern);
    Scored {
        score: estimate as f64 / 10f64.powi(bound_var_positions as i32),
        estimate,
        id_pattern,
        dead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::vocab::{dbont, rdf, res};
    use relpat_rdf::Term;

    fn library() -> Graph {
        let mut g = Graph::new();
        let ty = Term::iri(rdf::TYPE);
        let book = Term::iri(dbont::iri("Book"));
        let writer = Term::iri(dbont::iri("writer"));
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        for title in ["Snow", "My Name Is Red", "The White Castle"] {
            let b = Term::iri(res::iri(title));
            g.add(b.clone(), ty.clone(), book.clone());
            g.add(b, writer.clone(), pamuk.clone());
        }
        g.freeze();
        g
    }

    fn vi(vars: &[(&'static str, usize)]) -> FxHashMap<&'static str, usize> {
        vars.iter().copied().collect()
    }

    #[test]
    fn plan_orders_selective_patterns_first() {
        let g = library();
        let tps = vec![
            TriplePattern::new(Term::var("x"), Term::var("p"), Term::var("o")),
            TriplePattern::new(
                Term::var("x"),
                Term::iri(dbont::iri("writer")),
                Term::iri(res::iri("Orhan Pamuk")),
            ),
        ];
        let order = plan_bgp(&g, &tps, &vi(&[("x", 0), ("p", 1), ("o", 2)]), true);
        assert_eq!(order[0].pattern_index, 1, "selective pattern should run first");
        assert!(order[0].estimate > 0, "chosen step records the planner's index estimate");
        assert!(
            order[1].score < order[1].estimate as f64,
            "the open scan is re-scored with ?x bound by the first step"
        );
    }

    #[test]
    fn second_step_on_the_sorted_variable_is_a_merge() {
        let g = library();
        // Step 0 routes (?x, type, Book) to POS — rows sorted by subject ?x.
        // Step 1 binds only ?x, so its probe keys arrive sorted: merge.
        let tps = vec![
            TriplePattern::new(Term::var("x"), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book"))),
            TriplePattern::new(
                Term::var("x"),
                Term::iri(dbont::iri("writer")),
                Term::iri(res::iri("Orhan Pamuk")),
            ),
        ];
        let order = plan_bgp(&g, &tps, &vi(&[("x", 0)]), true);
        assert_eq!(order[0].algo, JoinAlgo::Nested, "first step is always a plain scan");
        assert_eq!(order[1].algo, JoinAlgo::Merge);
        // With sorted-awareness off (the oracle), both steps stay nested.
        let forced = plan_bgp(&g, &tps, &vi(&[("x", 0)]), false);
        assert!(forced.iter().all(|s| s.algo == JoinAlgo::Nested));
    }

    #[test]
    fn unsorted_join_variable_gallops() {
        let g = library();
        // Step 0 scans (?b, writer, ?w): POS order sorts rows by object ?w
        // first — wait, POS key is (p, o, s), so rows sort by ?w then ?b.
        // Step 1 joins on ?b, which is NOT the sort-major variable: gallop.
        let tps = vec![
            TriplePattern::new(Term::var("b"), Term::iri(dbont::iri("writer")), Term::var("w")),
            TriplePattern::new(Term::var("b"), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book"))),
        ];
        let order = plan_bgp(&g, &tps, &vi(&[("b", 0), ("w", 1)]), true);
        // Both patterns estimate 3; tie keeps source order (writer first).
        assert_eq!(order[0].pattern_index, 0);
        assert_eq!(order[1].algo, JoinAlgo::Gallop, "join variable ?b is not sort-major");
    }

    #[test]
    fn two_bound_variables_gallop() {
        let g = library();
        let tps = vec![
            TriplePattern::new(Term::var("b"), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book"))),
            TriplePattern::new(Term::var("b"), Term::iri(dbont::iri("writer")), Term::var("w")),
            TriplePattern::new(Term::var("b"), Term::var("p"), Term::var("w")),
        ];
        let order = plan_bgp(&g, &tps, &vi(&[("b", 0), ("w", 1), ("p", 2)]), true);
        let last = order.last().unwrap();
        assert_eq!(last.pattern_index, 2, "least selective pattern runs last");
        assert_eq!(last.algo, JoinAlgo::Gallop, "two bound variables cannot merge");
    }

    #[test]
    fn live_overlay_disables_sorted_operators() {
        let mut g = library();
        g.add(Term::iri("extra"), Term::iri("p"), Term::iri("o")); // overlay entry
        assert!(g.overlay_len() > 0);
        let tps = vec![
            TriplePattern::new(Term::var("x"), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book"))),
            TriplePattern::new(
                Term::var("x"),
                Term::iri(dbont::iri("writer")),
                Term::iri(res::iri("Orhan Pamuk")),
            ),
        ];
        let planned = lower_pattern(
            &g,
            &GraphPattern { triples: tps, ..GraphPattern::default() },
            None,
            LowerOpts::default(),
        );
        let Algebra::Bgp(steps) = &planned.root else { panic!("flat BGP lowers to Bgp") };
        assert!(steps.iter().all(|s| s.algo == JoinAlgo::Nested));
    }

    #[test]
    fn lowering_wraps_bgp_in_filter_and_slice() {
        let g = library();
        let gp = GraphPattern {
            triples: vec![TriplePattern::new(
                Term::var("x"),
                Term::iri(rdf::TYPE),
                Term::iri(dbont::iri("Book")),
            )],
            filters: vec![Expr::Bound("x".into())],
            ..GraphPattern::default()
        };
        let planned = lower_pattern(&g, &gp, Some(5), LowerOpts::default());
        assert_eq!(planned.variables, vec!["x".to_string()]);
        let Algebra::Slice { input, limit: 5 } = &planned.root else {
            panic!("limit lowers to a root Slice: {:?}", planned.root)
        };
        let Algebra::Filter { input, exprs } = &**input else { panic!("filters wrap the BGP") };
        assert_eq!(exprs.len(), 1);
        assert!(matches!(&**input, Algebra::Bgp(steps) if steps.len() == 1));
    }

    #[test]
    fn union_and_optional_sub_groups_stay_nested() {
        let g = library();
        let join = |s: &str| {
            GraphPattern {
                triples: vec![TriplePattern::new(
                    Term::var("x"),
                    Term::iri(dbont::iri(s)),
                    Term::iri(res::iri("Orhan Pamuk")),
                )],
                ..GraphPattern::default()
            }
        };
        let gp = GraphPattern {
            triples: vec![TriplePattern::new(
                Term::var("x"),
                Term::iri(rdf::TYPE),
                Term::iri(dbont::iri("Book")),
            )],
            unions: vec![vec![join("writer"), join("author")]],
            optionals: vec![join("writer")],
            ..GraphPattern::default()
        };
        let planned = lower_pattern(&g, &gp, None, LowerOpts::default());
        let Algebra::LeftJoin { input, right } = &planned.root else { panic!("optional at root") };
        let Algebra::Union { input: _, alternatives } = &**input else { panic!("union below") };
        let all_nested = |node: &Algebra| {
            let Algebra::Bgp(steps) = node else { panic!("sub-groups lower to Bgp leaves") };
            steps.iter().all(|s| s.algo == JoinAlgo::Nested)
        };
        assert!(alternatives.iter().all(all_nested));
        assert!(all_nested(right));
    }
}
