//! Error type for the SPARQL layer.

use std::fmt;

/// Errors from parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Syntax error in the query text.
    Parse(String),
    /// Runtime evaluation error (type errors, unbound variables in
    /// expressions, division by zero). Inside `FILTER` these remove the row
    /// rather than failing the query, per SPARQL error semantics.
    Eval(String),
    /// A [`QueryResult`](crate::QueryResult) of the wrong kind was consumed
    /// — an `ASK` result read as solutions, or a `SELECT` result read as a
    /// boolean.
    ResultKind { expected: &'static str, got: &'static str },
}

impl SparqlError {
    pub(crate) fn parse(message: impl Into<String>) -> Self {
        SparqlError::Parse(message.into())
    }

    pub(crate) fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval(message.into())
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse(m) => write!(f, "SPARQL parse error: {m}"),
            SparqlError::Eval(m) => write!(f, "SPARQL evaluation error: {m}"),
            SparqlError::ResultKind { expected, got } => {
                write!(f, "SPARQL result kind mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SparqlError::parse("x").to_string().contains("parse"));
        assert!(SparqlError::eval("y").to_string().contains("evaluation"));
    }
}
