//! Query planner and executor.
//!
//! Evaluation pipeline: plan the basic graph pattern with a greedy
//! selectivity heuristic (exact O(log n) index estimates) → stream bindings
//! through zero-allocation frozen-index slice scans, stopping mid-join for
//! bare-LIMIT/ASK queries → apply filters → project → DISTINCT (hash dedup)
//! → ORDER BY → OFFSET/LIMIT.

use std::cmp::Ordering;
use std::time::Instant;

use relpat_rdf::{Graph, IdPattern, Term, TermId};
use relpat_obs::fx::{FxHashMap, FxHashSet};
use relpat_obs::{PlanStep, PlanTrace};

use crate::ast::{
    ArithOp, CmpOp, Expr, GraphPattern, Projection, Query, SelectQuery, TriplePattern,
};
use crate::error::SparqlError;
use crate::results::Solutions;

/// Result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    Solutions(Solutions),
    Boolean(bool),
}

impl QueryResult {
    /// The solutions of a `SELECT`; fails with
    /// [`SparqlError::ResultKind`] on an `ASK` result. Library code must
    /// never panic on a kind mismatch — whether a query is `SELECT` or
    /// `ASK` is ultimately caller input (it can arrive over HTTP), so the
    /// mismatch is an error value to route, not a process abort.
    pub fn into_solutions(self) -> Result<Solutions, SparqlError> {
        match self {
            QueryResult::Solutions(s) => Ok(s),
            QueryResult::Boolean(_) => {
                Err(SparqlError::ResultKind { expected: "solutions", got: "boolean" })
            }
        }
    }

    /// The boolean of an `ASK`; fails with [`SparqlError::ResultKind`] on a
    /// `SELECT` result.
    pub fn into_boolean(self) -> Result<bool, SparqlError> {
        match self {
            QueryResult::Boolean(b) => Ok(b),
            QueryResult::Solutions(_) => {
                Err(SparqlError::ResultKind { expected: "boolean", got: "solutions" })
            }
        }
    }

    /// Borrowing view of the solutions, `None` on an `ASK` result.
    pub fn as_solutions(&self) -> Option<&Solutions> {
        match self {
            QueryResult::Solutions(s) => Some(s),
            QueryResult::Boolean(_) => None,
        }
    }

    /// The boolean of an `ASK`, `None` on a `SELECT` result.
    pub fn as_boolean(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            QueryResult::Solutions(_) => None,
        }
    }
}

/// Executes a parsed query against a graph.
///
/// Each call increments `sparql.queries`, adds produced rows to
/// `sparql.solutions` and records its latency in the `sparql.execute`
/// histogram on the global [`relpat_obs`] registry (no-ops when disabled).
pub fn execute(graph: &Graph, query: &Query) -> Result<QueryResult, SparqlError> {
    execute_inner(graph, query, None)
}

/// [`execute`] with EXPLAIN ANALYZE collection: returns the result together
/// with a [`PlanTrace`] recording, per join step, the planner's prediction
/// (index estimate, selectivity score, chosen order) against measured
/// reality (rows scanned, bindings emitted, nanoseconds, pushdown). The
/// untraced [`execute`] path shares the same code with the trace parameter
/// `None`, paying nothing per step.
pub fn execute_traced(graph: &Graph, query: &Query) -> Result<(QueryResult, PlanTrace), SparqlError> {
    let mut trace = PlanTrace::default();
    let result = execute_inner(graph, query, Some(&mut trace))?;
    Ok((result, trace))
}

fn execute_inner(
    graph: &Graph,
    query: &Query,
    trace: Option<&mut PlanTrace>,
) -> Result<QueryResult, SparqlError> {
    let _timer = relpat_obs::span!("sparql.execute");
    relpat_obs::counter!("sparql.queries");
    match query {
        Query::Select(sel) => {
            let sols = execute_select(graph, sel, trace)?;
            relpat_obs::counter!("sparql.solutions", sols.rows.len() as u64);
            Ok(QueryResult::Solutions(sols))
        }
        Query::Ask(ask) => {
            let bindings = evaluate_pattern(graph, &ask.pattern, Some(1), trace)?;
            Ok(QueryResult::Boolean(!bindings.rows.is_empty()))
        }
    }
}

/// Parses and executes in one step.
pub fn query(graph: &Graph, text: &str) -> Result<QueryResult, SparqlError> {
    let parsed = crate::parser::parse_query(text)?;
    execute(graph, &parsed)
}

/// Parses and executes with plan-trace collection (see [`execute_traced`]).
pub fn query_traced(graph: &Graph, text: &str) -> Result<(QueryResult, PlanTrace), SparqlError> {
    let parsed = crate::parser::parse_query(text)?;
    execute_traced(graph, &parsed)
}

fn execute_select(
    graph: &Graph,
    sel: &SelectQuery,
    trace: Option<&mut PlanTrace>,
) -> Result<Solutions, SparqlError> {
    // ORDER BY/OFFSET/LIMIT prevent early termination; only a bare LIMIT
    // (no ordering, no offset, no DISTINCT) can stop the BGP scan early.
    let early_stop = if sel.order_by.is_empty()
        && sel.offset.is_none()
        && !sel.distinct
        && !matches!(sel.projection, Projection::Count { .. })
    {
        sel.limit
    } else {
        None
    };
    let evaluated = evaluate_pattern(graph, &sel.pattern, early_stop, trace)?;

    let pattern_vars = evaluated.variables;
    let mut rows = evaluated.rows;

    // Aggregate projection: COUNT collapses the solution sequence to one row.
    if let Projection::Count { var, distinct, alias } = &sel.projection {
        let n = match var {
            None => rows.len(),
            Some(v) => {
                let Some(col) = pattern_vars.iter().position(|pv| pv == v) else {
                    return Err(SparqlError::eval(format!("COUNT of unknown variable ?{v}")));
                };
                let mut bound: Vec<&Term> =
                    rows.iter().filter_map(|r| r[col].as_ref()).collect();
                if *distinct {
                    bound.sort();
                    bound.dedup();
                }
                bound.len()
            }
        };
        return Ok(Solutions {
            variables: vec![alias.clone()],
            rows: vec![vec![Some(Term::Literal(relpat_rdf::Literal::integer(n as i64)))]],
        });
    }

    // ORDER BY before projection so keys may use unprojected variables.
    if !sel.order_by.is_empty() {
        let index: FxHashMap<&str, usize> =
            pattern_vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
        type Decorated = (Vec<Option<Value>>, Vec<Option<Term>>);
        let mut decorated: Vec<Decorated> = rows
            .into_iter()
            .map(|row| {
                let keys = sel
                    .order_by
                    .iter()
                    .map(|k| eval_expr(&k.expr, &row, &index).ok())
                    .collect();
                (keys, row)
            })
            .collect();
        decorated.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in sel.order_by.iter().enumerate() {
                let ord = compare_values(&ka[i], &kb[i]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        rows = decorated.into_iter().map(|(_, row)| row).collect();
    }

    // Projection.
    let out_vars: Vec<String> = match &sel.projection {
        Projection::All => pattern_vars.clone(),
        Projection::Vars(vars) => vars.clone(),
        // Handled by the aggregate branch above.
        Projection::Count { .. } => unreachable!("COUNT projection returns early"),
    };
    let positions: Vec<Option<usize>> = out_vars
        .iter()
        .map(|v| pattern_vars.iter().position(|pv| pv == v))
        .collect();
    let mut projected: Vec<Vec<Option<Term>>> = rows
        .into_iter()
        .map(|row| {
            positions
                .iter()
                .map(|p| p.and_then(|i| row[i].clone()))
                .collect()
        })
        .collect();

    if sel.distinct {
        // Hash-based stable dedup: first occurrence wins, preserving ORDER BY
        // output order at O(1) per row instead of a linear rescan.
        let mut seen: FxHashSet<Vec<Option<Term>>> = FxHashSet::default();
        seen.reserve(projected.len());
        projected.retain(|row| seen.insert(row.clone()));
    }

    let offset = sel.offset.unwrap_or(0);
    if offset > 0 {
        projected.drain(..offset.min(projected.len()));
    }
    if let Some(limit) = sel.limit {
        projected.truncate(limit);
    }

    Ok(Solutions { variables: out_vars, rows: projected })
}

/// Term-level bindings produced by BGP + filter evaluation.
struct Evaluated {
    variables: Vec<String>,
    rows: Vec<Vec<Option<Term>>>,
}

fn evaluate_pattern(
    graph: &Graph,
    pattern: &GraphPattern,
    early_stop: Option<usize>,
    trace: Option<&mut PlanTrace>,
) -> Result<Evaluated, SparqlError> {
    let variables = pattern.variables();
    let var_index: FxHashMap<&str, usize> =
        variables.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();

    let initial: Vec<Vec<Option<TermId>>> = vec![vec![None; variables.len()]];
    let mut bindings = eval_group(graph, pattern, &var_index, initial, early_stop, trace);

    if let Some(stop) = early_stop {
        // Safety net: eval_group only pushes the limit into the join loop
        // when nothing after the BGP can drop or add rows; otherwise the
        // limit still applies here, after full evaluation.
        bindings.truncate(stop);
    }

    let rows: Vec<Vec<Option<Term>>> = bindings
        .into_iter()
        .map(|binding| binding.iter().map(|id| id.map(|i| graph.term(i).clone())).collect())
        .collect();
    Ok(Evaluated { variables, rows })
}

/// Evaluates one group graph pattern against a set of incoming bindings:
/// BGP join → UNION blocks → OPTIONAL left-joins → group filters.
///
/// `limit` is a bare-LIMIT early-stop request. It is pushed down into the
/// BGP join loop only when this group has no unions, optionals or filters —
/// anything that could drop or multiply rows after the join would make a
/// truncated join prefix incorrect.
fn eval_group(
    graph: &Graph,
    pattern: &GraphPattern,
    var_index: &FxHashMap<&str, usize>,
    initial: Vec<Vec<Option<TermId>>>,
    limit: Option<usize>,
    mut trace: Option<&mut PlanTrace>,
) -> Vec<Vec<Option<TermId>>> {
    let pushdown = if pattern.unions.is_empty()
        && pattern.optionals.is_empty()
        && pattern.filters.is_empty()
    {
        limit
    } else {
        None
    };
    let mut bindings =
        join_triples(graph, &pattern.triples, var_index, initial, pushdown, trace.as_deref_mut());

    // UNION: concatenate the solutions of each alternative, each evaluated
    // from the current bindings (join semantics with the surrounding group).
    for alternatives in &pattern.unions {
        if bindings.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for alt in alternatives {
            next.extend(eval_group(
                graph,
                alt,
                var_index,
                bindings.clone(),
                None,
                trace.as_deref_mut(),
            ));
        }
        bindings = next;
    }

    // OPTIONAL: left join — keep the binding unextended when the optional
    // part has no solutions.
    for opt in &pattern.optionals {
        let mut next = Vec::with_capacity(bindings.len());
        for binding in bindings {
            let extended = eval_group(
                graph,
                opt,
                var_index,
                vec![binding.clone()],
                None,
                trace.as_deref_mut(),
            );
            if extended.is_empty() {
                next.push(binding);
            } else {
                next.extend(extended);
            }
        }
        bindings = next;
    }

    // Group-level filters; erroring filters remove the row (SPARQL error
    // semantics).
    if !pattern.filters.is_empty() {
        bindings.retain(|binding| {
            let row: Vec<Option<Term>> =
                binding.iter().map(|id| id.map(|i| graph.term(i).clone())).collect();
            pattern.filters.iter().all(|f| {
                eval_expr(f, &row, var_index).map(|v| v.truthy()).unwrap_or(false)
            })
        });
    }
    bindings
}

/// A misestimation fires when a join step scans more than
/// `MISESTIMATE_FACTOR ×` the planner's score. The score already grants one
/// order of magnitude per bound variable, so a 16× overrun (> one further
/// decade of slack) marks a genuinely wrong selectivity assumption rather
/// than rounding noise; see DESIGN.md §13 for the derivation.
const MISESTIMATE_FACTOR: f64 = 16.0;
/// Steps scanning fewer rows than this never fire — on micro-scans a single
/// extra probe binding can double the ratio without meaning anything.
const MISESTIMATE_MIN_ROWS: u64 = 64;

/// Joins a list of triple patterns into the incoming bindings, in planned
/// order. Each probe consumes [`Graph::scan_iter`] directly — a streaming
/// slice walk with no per-probe result vector.
///
/// `limit` (from a bare LIMIT / ASK) stops the final join step as soon as
/// enough rows exist: intermediate steps must run to completion (a truncated
/// intermediate set could starve later joins of the rows that survive), but
/// the last pattern's scan can cut off mid-slice.
///
/// When `trace` is given, every step appends a [`PlanStep`] pairing the
/// planner's prediction with measured reality. The untraced path does no
/// per-step allocation or clock reads. Misestimation detection runs on both
/// paths — it only compares numbers the planner already computed.
fn join_triples(
    graph: &Graph,
    triples: &[TriplePattern],
    var_index: &FxHashMap<&str, usize>,
    initial: Vec<Vec<Option<TermId>>>,
    limit: Option<usize>,
    mut trace: Option<&mut PlanTrace>,
) -> Vec<Vec<Option<TermId>>> {
    let order = plan(graph, triples, var_index);
    let mut bindings = initial;
    if order.is_empty() {
        if let Some(cap) = limit {
            bindings.truncate(cap);
        }
        return bindings;
    }
    // Tallied locally and flushed once — one atomic add per join, not per row.
    let mut scanned: u64 = 0;
    for (step, planned) in order.iter().enumerate() {
        let cap = if step + 1 == order.len() { limit } else { None };
        let tp = &triples[planned.idx];
        let step_started = trace.is_some().then(Instant::now);
        let scanned_before = scanned;
        let mut next: Vec<Vec<Option<TermId>>> = Vec::new();
        'probes: for binding in &bindings {
            match bind_pattern(graph, tp, binding, var_index) {
                BoundPattern::NoMatch => {}
                BoundPattern::Scan(id_pattern, slots) => {
                    for (s, p, o) in graph.scan_iter(id_pattern) {
                        scanned += 1;
                        let mut extended = binding.clone();
                        if extend(&mut extended, &slots, s, p, o) {
                            next.push(extended);
                            if cap.is_some_and(|c| next.len() >= c) {
                                break 'probes;
                            }
                        }
                    }
                }
            }
        }
        let step_scanned = scanned - scanned_before;
        // A capped step stops mid-scan by design, so its cost says nothing
        // about the planner; skip it rather than report a false underrun.
        let misestimated = cap.is_none()
            && step_scanned >= MISESTIMATE_MIN_ROWS
            && step_scanned as f64 > MISESTIMATE_FACTOR * (planned.score + 1.0);
        if misestimated {
            relpat_obs::counter!("planner.misestimates");
            relpat_obs::jevent!(
                relpat_obs::Level::Warn,
                "planner.misestimate",
                "pattern" => tp,
                "position" => step,
                "estimate" => planned.estimate,
                "score" => planned.score,
                "scanned" => step_scanned,
            );
        }
        if let Some(t) = trace.as_deref_mut() {
            t.steps.push(PlanStep {
                pattern: tp.to_string(),
                pattern_index: planned.idx,
                position: step,
                estimate: planned.estimate,
                score: planned.score,
                rows_scanned: step_scanned,
                bindings_emitted: next.len(),
                nanos: step_started.expect("trace implies timer").elapsed().as_nanos() as u64,
                limit_pushdown: cap.is_some(),
            });
            if misestimated {
                t.misestimates += 1;
            }
        }
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }
    relpat_obs::counter!("sparql.rows_scanned", scanned);
    bindings
}

/// One planner decision: which pattern runs at this position, and the
/// prediction it was ranked by ([`score_pattern`]'s exact index estimate and
/// selectivity-adjusted score at choice time). Kept for every step so plan
/// traces and the misestimation detector can compare prediction to reality
/// without re-running the planner.
#[derive(Debug, Clone, Copy)]
struct Planned {
    idx: usize,
    estimate: usize,
    score: f64,
}

/// Greedy join ordering: repeatedly pick the pattern with the fewest
/// estimated matches, treating variables already bound by chosen patterns as
/// bound positions (they will be substituted at run time, so we optimistically
/// score them as selective).
fn plan(
    graph: &Graph,
    triples: &[TriplePattern],
    var_index: &FxHashMap<&str, usize>,
) -> Vec<Planned> {
    let n = triples.len();
    let mut chosen: Vec<Planned> = Vec::with_capacity(n);
    let mut bound_vars = vec![false; var_index.len()];
    let mut remaining: Vec<usize> = (0..n).collect();

    while !remaining.is_empty() {
        let (best_pos, (best_score, best_estimate)) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &idx)| {
                let tp = &triples[idx];
                (pos, score_pattern(graph, tp, &bound_vars, var_index))
            })
            .min_by(|(_, (a, _)), (_, (b, _))| a.partial_cmp(b).unwrap_or(Ordering::Equal))
            .expect("remaining is non-empty");
        let idx = remaining.swap_remove(best_pos);
        for term in [&triples[idx].subject, &triples[idx].predicate, &triples[idx].object] {
            if let Term::Variable(v) = term {
                if let Some(&i) = var_index.get(v.as_str()) {
                    bound_vars[i] = true;
                }
            }
        }
        chosen.push(Planned { idx, estimate: best_estimate, score: best_score });
    }
    chosen
}

/// Cost estimate for one pattern given the set of already-bound variables.
/// Concrete positions contribute to an index estimate; bound variables divide
/// the estimate (each roughly one order of magnitude); unbound variables keep
/// it unchanged. Returns `(score, index estimate)` — the estimate is exactly
/// [`Graph::estimate`] on the pattern's concrete positions, recorded in plan
/// traces as the per-step `estimate`.
fn score_pattern(
    graph: &Graph,
    tp: &TriplePattern,
    bound_vars: &[bool],
    var_index: &FxHashMap<&str, usize>,
) -> (f64, usize) {
    let mut id_pattern = IdPattern { subject: None, predicate: None, object: None };
    let mut bound_var_positions = 0u32;
    let mut dead = false;
    {
        let mut fill = |term: &Term, slot: &mut Option<TermId>| match term {
            Term::Variable(v) => {
                if var_index.get(v.as_str()).is_some_and(|&i| bound_vars[i]) {
                    bound_var_positions += 1;
                }
            }
            concrete => match graph.term_id(concrete) {
                Some(id) => *slot = Some(id),
                None => dead = true,
            },
        };
        // Borrow gymnastics: fill each slot separately.
        let IdPattern { subject, predicate, object } = &mut id_pattern;
        fill(&tp.subject, subject);
        fill(&tp.predicate, predicate);
        fill(&tp.object, object);
    }
    if dead {
        return (0.0, 0); // matches nothing: evaluate first to prune immediately
    }
    let estimate = graph.estimate(id_pattern);
    (estimate as f64 / 10f64.powi(bound_var_positions as i32), estimate)
}

/// Where each variable of a pattern lands in the binding vector.
struct Slots {
    subject: Option<usize>,
    predicate: Option<usize>,
    object: Option<usize>,
}

enum BoundPattern {
    /// A concrete term in the pattern does not occur in the graph.
    NoMatch,
    Scan(IdPattern, Slots),
}

fn bind_pattern(
    graph: &Graph,
    tp: &TriplePattern,
    binding: &[Option<TermId>],
    var_index: &FxHashMap<&str, usize>,
) -> BoundPattern {
    let mut id_pattern = IdPattern { subject: None, predicate: None, object: None };
    let mut slots = Slots { subject: None, predicate: None, object: None };
    let positions: [(&Term, &mut Option<TermId>, &mut Option<usize>); 3] = [
        (&tp.subject, &mut id_pattern.subject, &mut slots.subject),
        (&tp.predicate, &mut id_pattern.predicate, &mut slots.predicate),
        (&tp.object, &mut id_pattern.object, &mut slots.object),
    ];
    for (term, id_slot, var_slot) in positions {
        match term {
            Term::Variable(v) => {
                let idx = var_index[v.as_str()];
                match binding[idx] {
                    Some(bound) => *id_slot = Some(bound),
                    None => *var_slot = Some(idx),
                }
            }
            concrete => match graph.term_id(concrete) {
                Some(id) => *id_slot = Some(id),
                None => return BoundPattern::NoMatch,
            },
        }
    }
    BoundPattern::Scan(id_pattern, slots)
}

/// Extends a binding with a scan result, checking repeated-variable
/// consistency (e.g. `?x ?p ?x`).
fn extend(binding: &mut [Option<TermId>], slots: &Slots, s: TermId, p: TermId, o: TermId) -> bool {
    for (slot, value) in [(slots.subject, s), (slots.predicate, p), (slots.object, o)] {
        if let Some(idx) = slot {
            match binding[idx] {
                Some(existing) if existing != value => return false,
                _ => binding[idx] = Some(value),
            }
        }
    }
    true
}

/// Runtime value for filter evaluation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Bool(bool),
    Num(f64),
    Str(String),
    Term(Term),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Term(_) => true,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Term(Term::Literal(l)) => l.as_f64(),
            _ => None,
        }
    }

    /// String coercion mirroring SPARQL `str()`.
    fn as_str_lossy(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => n.to_string(),
            Value::Str(s) => s.clone(),
            Value::Term(Term::Literal(l)) => l.lexical_form().to_string(),
            Value::Term(Term::Iri(iri)) => iri.as_str().to_string(),
            Value::Term(t) => t.to_string(),
        }
    }
}

fn eval_expr(
    expr: &Expr,
    row: &[Option<Term>],
    var_index: &FxHashMap<&str, usize>,
) -> Result<Value, SparqlError> {
    match expr {
        Expr::Var(v) => {
            let idx = var_index
                .get(v.as_str())
                .ok_or_else(|| SparqlError::eval(format!("unknown variable ?{v}")))?;
            match &row[*idx] {
                Some(term) => Ok(term_value(term)),
                None => Err(SparqlError::eval(format!("unbound variable ?{v}"))),
            }
        }
        Expr::Const(term) => Ok(term_value(term)),
        Expr::Cmp(lhs, op, rhs) => {
            let l = eval_expr(lhs, row, var_index)?;
            let r = eval_expr(rhs, row, var_index)?;
            Ok(Value::Bool(apply_cmp(&l, *op, &r)))
        }
        Expr::And(lhs, rhs) => Ok(Value::Bool(
            eval_expr(lhs, row, var_index)?.truthy() && eval_expr(rhs, row, var_index)?.truthy(),
        )),
        Expr::Or(lhs, rhs) => Ok(Value::Bool(
            eval_expr(lhs, row, var_index)?.truthy() || eval_expr(rhs, row, var_index)?.truthy(),
        )),
        Expr::Not(inner) => Ok(Value::Bool(!eval_expr(inner, row, var_index)?.truthy())),
        Expr::Arith(lhs, op, rhs) => {
            let l = eval_expr(lhs, row, var_index)?
                .as_num()
                .ok_or_else(|| SparqlError::eval("non-numeric operand"))?;
            let r = eval_expr(rhs, row, var_index)?
                .as_num()
                .ok_or_else(|| SparqlError::eval("non-numeric operand"))?;
            let v = match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => {
                    if r == 0.0 {
                        return Err(SparqlError::eval("division by zero"));
                    }
                    l / r
                }
            };
            Ok(Value::Num(v))
        }
        Expr::Regex { value, pattern, case_insensitive } => {
            let text = eval_expr(value, row, var_index)?.as_str_lossy();
            Ok(Value::Bool(simple_regex_match(&text, pattern, *case_insensitive)))
        }
        Expr::Lang(inner) => {
            let v = eval_expr(inner, row, var_index)?;
            match v {
                Value::Term(Term::Literal(l)) => {
                    Ok(Value::Str(l.language().unwrap_or("").to_string()))
                }
                _ => Err(SparqlError::eval("lang() of non-literal")),
            }
        }
        Expr::Datatype(inner) => {
            let v = eval_expr(inner, row, var_index)?;
            match v {
                Value::Term(Term::Literal(l)) => Ok(Value::Str(l.datatype_str().to_string())),
                _ => Err(SparqlError::eval("datatype() of non-literal")),
            }
        }
        Expr::Str(inner) => Ok(Value::Str(eval_expr(inner, row, var_index)?.as_str_lossy())),
        Expr::Bound(v) => {
            let idx = var_index
                .get(v.as_str())
                .ok_or_else(|| SparqlError::eval(format!("unknown variable ?{v}")))?;
            Ok(Value::Bool(row[*idx].is_some()))
        }
    }
}

fn term_value(term: &Term) -> Value {
    if let Term::Literal(l) = term {
        if let Some(n) = l.as_f64() {
            return Value::Num(n);
        }
        if l.datatype_str() == relpat_rdf::vocab::xsd::BOOLEAN {
            return Value::Bool(l.lexical_form() == "true");
        }
    }
    Value::Term(term.clone())
}

fn apply_cmp(l: &Value, op: CmpOp, r: &Value) -> bool {
    let ord = compare_raw(l, r);
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Three-way comparison across value kinds: numeric when both sides are
/// numeric, term identity for IRIs, otherwise lexical-form string comparison
/// (which orders ISO dates correctly).
fn compare_raw(l: &Value, r: &Value) -> Ordering {
    if let (Some(a), Some(b)) = (l.as_num(), r.as_num()) {
        return a.partial_cmp(&b).unwrap_or(Ordering::Equal);
    }
    if let (Value::Term(Term::Iri(a)), Value::Term(Term::Iri(b))) = (l, r) {
        return a.cmp(b);
    }
    l.as_str_lossy().cmp(&r.as_str_lossy())
}

/// Comparison for ORDER BY keys: unbound (None) sorts first, per SPARQL.
fn compare_values(l: &Option<Value>, r: &Option<Value>) -> Ordering {
    match (l, r) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(a), Some(b)) => compare_raw(a, b),
    }
}

/// Minimal regex dialect: `^` anchors at the start, `$` at the end, and the
/// remaining pattern is matched literally as a substring. This covers every
/// `FILTER regex` the pipeline and benchmark emit (label containment checks);
/// a full regex engine would be an unjustified dependency.
fn simple_regex_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (text, pattern) = if case_insensitive {
        (text.to_lowercase(), pattern.to_lowercase())
    } else {
        (text.to_string(), pattern.to_string())
    };
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && !pattern.ends_with("\\$");
    let core = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::vocab::{dbont, rdf, res};
    use relpat_rdf::Literal;

    fn library() -> Graph {
        let mut g = Graph::new();
        let ty = Term::iri(rdf::TYPE);
        let book = Term::iri(dbont::iri("Book"));
        let writer = Term::iri(dbont::iri("writer"));
        let label = Term::iri(relpat_rdf::vocab::rdfs::LABEL);
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        let lem = Term::iri(res::iri("Stanislaw Lem"));
        for (title, author, pages) in [
            ("Snow", &pamuk, 432),
            ("The Museum of Innocence", &pamuk, 536),
            ("Solaris", &lem, 204),
        ] {
            let b = Term::iri(res::iri(title));
            g.add(b.clone(), ty.clone(), book.clone());
            g.add(b.clone(), writer.clone(), author.clone());
            g.add(b.clone(), label.clone(), Term::Literal(Literal::lang(title, "en")));
            g.add(
                b,
                Term::iri(dbont::iri("numberOfPages")),
                Term::Literal(Literal::integer(pages)),
            );
        }
        g
    }

    fn select(g: &Graph, q: &str) -> Solutions {
        query(g, q).unwrap().into_solutions().unwrap()
    }

    #[test]
    fn paper_query_returns_both_books() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x WHERE { ?x rdf:type dbont:Book . ?x dbont:writer res:Orhan_Pamuk . }",
        );
        assert_eq!(sols.rows.len(), 2);
    }

    #[test]
    fn ask_true_and_false() {
        let g = library();
        assert!(query(&g, "ASK { res:Snow dbont:writer res:Orhan_Pamuk }")
            .unwrap()
            .into_boolean().unwrap());
        assert!(!query(&g, "ASK { res:Solaris dbont:writer res:Orhan_Pamuk }")
            .unwrap()
            .into_boolean().unwrap());
    }

    #[test]
    fn filter_numeric_comparison() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p > 400 && ?p < 500) }",
        );
        assert_eq!(sols.rows.len(), 1);
        assert_eq!(
            sols.get(0, "x"),
            Some(&Term::iri(res::iri("Snow")))
        );
    }

    #[test]
    fn filter_regex_on_label() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { ?x rdfs:label ?l FILTER(regex(str(?l), \"museum\", \"i\")) }",
        );
        assert_eq!(sols.rows.len(), 1);
    }

    #[test]
    fn filter_lang() {
        let g = library();
        let sols = select(&g, "SELECT ?l { res:Snow rdfs:label ?l FILTER(lang(?l) = \"en\") }");
        assert_eq!(sols.rows.len(), 1);
    }

    #[test]
    fn order_by_desc_with_limit() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x ?p { ?x dbont:numberOfPages ?p } ORDER BY DESC(?p) LIMIT 1",
        );
        assert_eq!(sols.rows.len(), 1);
        assert_eq!(
            sols.get(0, "x"),
            Some(&Term::iri(res::iri("The Museum of Innocence")))
        );
    }

    #[test]
    fn offset_skips_rows() {
        let g = library();
        let all = select(&g, "SELECT ?x { ?x rdf:type dbont:Book } ORDER BY ?x");
        let skipped = select(&g, "SELECT ?x { ?x rdf:type dbont:Book } ORDER BY ?x OFFSET 1");
        assert_eq!(skipped.rows.len(), all.rows.len() - 1);
        assert_eq!(skipped.rows[0], all.rows[1]);
    }

    #[test]
    fn distinct_dedups() {
        let g = library();
        // ?w appears once per book; DISTINCT should collapse Pamuk's two.
        let sols = select(&g, "SELECT DISTINCT ?w { ?x dbont:writer ?w }");
        assert_eq!(sols.rows.len(), 2);
    }

    #[test]
    fn select_star_projects_all_vars() {
        let g = library();
        let sols = select(&g, "SELECT * { ?x dbont:writer ?w }");
        assert_eq!(sols.variables, vec!["x".to_string(), "w".to_string()]);
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn repeated_variable_consistency() {
        let mut g = Graph::new();
        g.add(Term::iri("a"), Term::iri("p"), Term::iri("a"));
        g.add(Term::iri("a"), Term::iri("p"), Term::iri("b"));
        let sols = select(&g, "SELECT ?x { ?x <p> ?x }");
        assert_eq!(sols.rows.len(), 1);
    }

    #[test]
    fn unknown_concrete_term_yields_empty() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x dbont:writer res:Nobody }");
        assert!(sols.rows.is_empty());
    }

    #[test]
    fn erroring_filter_drops_row_not_query() {
        let g = library();
        // lang() of an IRI errors; the row is dropped, the query succeeds.
        let sols = select(&g, "SELECT ?x { ?x rdf:type dbont:Book FILTER(lang(?x) = \"en\") }");
        assert!(sols.rows.is_empty());
    }

    #[test]
    fn arithmetic_in_filters() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p * 2 > 1000) }");
        assert_eq!(sols.rows.len(), 1); // 536 * 2 = 1072
    }

    #[test]
    fn division_by_zero_drops_row() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p / 0 > 1) }");
        assert!(sols.rows.is_empty());
    }

    #[test]
    fn projection_of_unbound_var_is_none() {
        let g = library();
        let sols = select(&g, "SELECT ?ghost { res:Snow rdf:type dbont:Book }");
        assert_eq!(sols.rows.len(), 1);
        assert_eq!(sols.rows[0][0], None);
    }

    #[test]
    fn bare_limit_early_stops() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x rdf:type dbont:Book } LIMIT 2");
        assert_eq!(sols.rows.len(), 2);
    }

    #[test]
    fn plan_orders_selective_patterns_first() {
        let g = library();
        let tps = vec![
            TriplePattern::new(Term::var("x"), Term::var("p"), Term::var("o")),
            TriplePattern::new(
                Term::var("x"),
                Term::iri(dbont::iri("writer")),
                Term::iri(res::iri("Stanislaw Lem")),
            ),
        ];
        let mut vi = FxHashMap::default();
        vi.insert("x", 0usize);
        vi.insert("p", 1usize);
        vi.insert("o", 2usize);
        let order = plan(&g, &tps, &vi);
        assert_eq!(order[0].idx, 1, "selective pattern should run first");
        assert!(order[0].estimate > 0, "chosen step records the planner's index estimate");
        assert!(
            order[0].score <= order[1].score,
            "greedy plan picks the lowest-score pattern first"
        );
    }

    #[test]
    fn simple_regex_dialect() {
        assert!(simple_regex_match("Orhan Pamuk", "pamuk", true));
        assert!(!simple_regex_match("Orhan Pamuk", "pamuk", false));
        assert!(simple_regex_match("Snow", "^Sno", false));
        assert!(simple_regex_match("Snow", "now$", false));
        assert!(simple_regex_match("Snow", "^Snow$", false));
        assert!(!simple_regex_match("Snows", "^Snow$", false));
    }

    #[test]
    fn optional_left_join_keeps_unmatched_rows() {
        let mut g = library();
        // Only Pamuk gets a birth place.
        g.add(
            Term::iri(res::iri("Orhan Pamuk")),
            Term::iri(dbont::iri("birthPlace")),
            Term::iri(res::iri("Istanbul")),
        );
        let sols = select(
            &g,
            "SELECT ?w ?p { ?x dbont:writer ?w OPTIONAL { ?w dbont:birthPlace ?p } }",
        );
        assert_eq!(sols.rows.len(), 3);
        let bound: Vec<bool> = sols.rows.iter().map(|r| r[1].is_some()).collect();
        assert_eq!(bound.iter().filter(|b| **b).count(), 2); // Pamuk's two books
        assert_eq!(bound.iter().filter(|b| !**b).count(), 1); // Lem unextended
    }

    #[test]
    fn optional_variables_are_projectable() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x ?ghost { ?x rdf:type dbont:Book OPTIONAL { ?x dbont:writer ?ghost } }",
        );
        assert_eq!(sols.variables, vec!["x".to_string(), "ghost".to_string()]);
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn union_concatenates_alternatives() {
        let mut g = library();
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("author")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        let sols = select(
            &g,
            "SELECT ?x { { ?x dbont:writer res:Orhan_Pamuk } UNION { ?x dbont:author res:Orhan_Pamuk } }",
        );
        // 2 via writer + 1 via author (Snow appears twice: once per branch
        // it matches — writer and author — minus dedup-free union = 3).
        assert_eq!(sols.rows.len(), 3);
        let distinct = select(
            &g,
            "SELECT DISTINCT ?x { { ?x dbont:writer res:Orhan_Pamuk } UNION { ?x dbont:author res:Orhan_Pamuk } }",
        );
        assert_eq!(distinct.rows.len(), 2);
    }

    #[test]
    fn union_joins_with_surrounding_pattern() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { ?x rdf:type dbont:Book . \
             { ?x dbont:writer res:Orhan_Pamuk } UNION { ?x dbont:writer res:Stanislaw_Lem } }",
        );
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn plain_nested_group_merges_into_parent() {
        let g = library();
        let sols = select(&g, "SELECT ?x { { ?x rdf:type dbont:Book } }");
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn filter_inside_optional_scopes_locally() {
        let g = library();
        // The filter only constrains the optional extension; rows that fail
        // it stay unextended rather than disappearing.
        let sols = select(
            &g,
            "SELECT ?x ?p { ?x rdf:type dbont:Book OPTIONAL { ?x dbont:numberOfPages ?p FILTER(?p > 500) } }",
        );
        assert_eq!(sols.rows.len(), 3);
        assert_eq!(sols.rows.iter().filter(|r| r[1].is_some()).count(), 1); // 536 only
    }

    #[test]
    fn union_of_three_alternatives() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { { res:Snow rdfs:label ?x } UNION { res:Solaris rdfs:label ?x } \
             UNION { res:Snow dbont:numberOfPages ?x } }",
        );
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn count_star_and_var() {
        let g = library();
        let sols = select(&g, "SELECT (COUNT(*) AS ?n) { ?x rdf:type dbont:Book }");
        assert_eq!(sols.variables, vec!["n".to_string()]);
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(3));

        let sols = select(&g, "SELECT (COUNT(?w) AS ?n) { ?x dbont:writer ?w }");
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(3));
    }

    #[test]
    fn count_distinct_collapses_duplicates() {
        let g = library();
        let sols = select(&g, "SELECT (COUNT(DISTINCT ?w) AS ?n) { ?x dbont:writer ?w }");
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn bare_count_defaults_alias() {
        let g = library();
        let sols = select(&g, "SELECT COUNT(?x) { ?x rdf:type dbont:Book }");
        assert_eq!(sols.variables, vec!["count".to_string()]);
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(3));
    }

    #[test]
    fn count_with_filter() {
        let g = library();
        let sols = select(
            &g,
            "SELECT (COUNT(?x) AS ?n) { ?x dbont:numberOfPages ?p FILTER(?p > 300) }",
        );
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn count_empty_pattern_is_zero() {
        let g = library();
        let sols = select(&g, "SELECT (COUNT(?x) AS ?n) { ?x dbont:writer res:Nobody }");
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(0));
    }

    #[test]
    fn count_unknown_variable_errors() {
        let g = library();
        assert!(query(&g, "SELECT (COUNT(?zzz) AS ?n) { ?x ?p ?o }").is_err());
    }

    #[test]
    fn cross_pattern_join_on_shared_variable() {
        let mut g = library();
        g.add(
            Term::iri(res::iri("Orhan Pamuk")),
            Term::iri(dbont::iri("birthPlace")),
            Term::iri(res::iri("Istanbul")),
        );
        let sols = select(
            &g,
            "SELECT ?b ?c { ?b dbont:writer ?w . ?w dbont:birthPlace ?c }",
        );
        assert_eq!(sols.rows.len(), 2); // both Pamuk books join to Istanbul
    }
}
