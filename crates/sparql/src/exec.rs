//! Query executor over the lowered algebra.
//!
//! Evaluation pipeline: lower the parsed pattern into a planner-annotated
//! [`Algebra`] tree ([`crate::algebra`]: greedy selectivity ordering with
//! exact O(log n) index estimates, plus a join operator per step) →
//! interpret the tree bottom-up, joining each BGP step with the operator
//! the planner chose — sort-merge intersection when the binding stream is
//! sorted on the join variable, batched galloping probes otherwise, the
//! row-at-a-time nested loop as fallback — stopping mid-join for
//! bare-LIMIT/ASK queries → apply filters → project → DISTINCT (hash dedup)
//! → ORDER BY → OFFSET/LIMIT.

use std::cmp::Ordering;
use std::time::Instant;

use relpat_rdf::{Graph, IdPattern, Term, TermId};
use relpat_obs::fx::{FxHashMap, FxHashSet};
use relpat_obs::{JoinAlgo, PlanStep, PlanTrace};

use crate::algebra::{lower_pattern, Algebra, LowerOpts, PlannedStep};
use crate::ast::{
    ArithOp, CmpOp, Expr, GraphPattern, Projection, Query, SelectQuery, TriplePattern,
};
use crate::error::SparqlError;
use crate::results::Solutions;

/// Result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    Solutions(Solutions),
    Boolean(bool),
}

impl QueryResult {
    /// The solutions of a `SELECT`; fails with
    /// [`SparqlError::ResultKind`] on an `ASK` result. Library code must
    /// never panic on a kind mismatch — whether a query is `SELECT` or
    /// `ASK` is ultimately caller input (it can arrive over HTTP), so the
    /// mismatch is an error value to route, not a process abort.
    pub fn into_solutions(self) -> Result<Solutions, SparqlError> {
        match self {
            QueryResult::Solutions(s) => Ok(s),
            QueryResult::Boolean(_) => {
                Err(SparqlError::ResultKind { expected: "solutions", got: "boolean" })
            }
        }
    }

    /// The boolean of an `ASK`; fails with [`SparqlError::ResultKind`] on a
    /// `SELECT` result.
    pub fn into_boolean(self) -> Result<bool, SparqlError> {
        match self {
            QueryResult::Boolean(b) => Ok(b),
            QueryResult::Solutions(_) => {
                Err(SparqlError::ResultKind { expected: "boolean", got: "solutions" })
            }
        }
    }

    /// Borrowing view of the solutions, `None` on an `ASK` result.
    pub fn as_solutions(&self) -> Option<&Solutions> {
        match self {
            QueryResult::Solutions(s) => Some(s),
            QueryResult::Boolean(_) => None,
        }
    }

    /// The boolean of an `ASK`, `None` on a `SELECT` result.
    pub fn as_boolean(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            QueryResult::Solutions(_) => None,
        }
    }
}

/// Executes a parsed query against a graph.
///
/// Each call increments `sparql.queries`, adds produced rows to
/// `sparql.solutions` and records its latency in the `sparql.execute`
/// histogram on the global [`relpat_obs`] registry (no-ops when disabled).
pub fn execute(graph: &Graph, query: &Query) -> Result<QueryResult, SparqlError> {
    execute_inner(graph, query, None, LowerOpts::default())
}

/// Nested-loop-only execution: plans the same join order as [`execute`] but
/// pins every step to the nested fallback operator. The differential test
/// suite uses it as the oracle the sorted operators must match bit-for-bit,
/// and the scaling benchmark as the baseline they must beat. Not part of the
/// supported API surface.
#[doc(hidden)]
pub fn execute_nested(graph: &Graph, query: &Query) -> Result<QueryResult, SparqlError> {
    execute_inner(graph, query, None, LowerOpts { force_nested: true })
}

/// [`execute_nested`] with plan-trace collection.
#[doc(hidden)]
pub fn execute_nested_traced(
    graph: &Graph,
    query: &Query,
) -> Result<(QueryResult, PlanTrace), SparqlError> {
    let mut trace = PlanTrace::default();
    let result = execute_inner(graph, query, Some(&mut trace), LowerOpts { force_nested: true })?;
    Ok((result, trace))
}

/// Parse + [`execute_nested`] in one step.
#[doc(hidden)]
pub fn query_nested(graph: &Graph, text: &str) -> Result<QueryResult, SparqlError> {
    let parsed = crate::parser::parse_query(text)?;
    execute_nested(graph, &parsed)
}

/// [`execute`] with EXPLAIN ANALYZE collection: returns the result together
/// with a [`PlanTrace`] recording, per join step, the planner's prediction
/// (index estimate, selectivity score, chosen order) against measured
/// reality (rows scanned, bindings emitted, nanoseconds, pushdown). The
/// untraced [`execute`] path shares the same code with the trace parameter
/// `None`, paying nothing per step.
pub fn execute_traced(graph: &Graph, query: &Query) -> Result<(QueryResult, PlanTrace), SparqlError> {
    let mut trace = PlanTrace::default();
    let result = execute_inner(graph, query, Some(&mut trace), LowerOpts::default())?;
    Ok((result, trace))
}

fn execute_inner(
    graph: &Graph,
    query: &Query,
    trace: Option<&mut PlanTrace>,
    opts: LowerOpts,
) -> Result<QueryResult, SparqlError> {
    let _timer = relpat_obs::span!("sparql.execute");
    relpat_obs::counter!("sparql.queries");
    match query {
        Query::Select(sel) => {
            let sols = execute_select(graph, sel, trace, opts)?;
            relpat_obs::counter!("sparql.solutions", sols.rows.len() as u64);
            Ok(QueryResult::Solutions(sols))
        }
        Query::Ask(ask) => {
            let bindings = evaluate_pattern(graph, &ask.pattern, Some(1), trace, opts)?;
            Ok(QueryResult::Boolean(!bindings.table.is_empty()))
        }
    }
}

/// Parses and executes in one step.
pub fn query(graph: &Graph, text: &str) -> Result<QueryResult, SparqlError> {
    let parsed = crate::parser::parse_query(text)?;
    execute(graph, &parsed)
}

/// Parses and executes with plan-trace collection (see [`execute_traced`]).
pub fn query_traced(graph: &Graph, text: &str) -> Result<(QueryResult, PlanTrace), SparqlError> {
    let parsed = crate::parser::parse_query(text)?;
    execute_traced(graph, &parsed)
}

fn execute_select(
    graph: &Graph,
    sel: &SelectQuery,
    trace: Option<&mut PlanTrace>,
    opts: LowerOpts,
) -> Result<Solutions, SparqlError> {
    // ORDER BY/OFFSET/LIMIT prevent early termination; only a bare LIMIT
    // (no ordering, no offset, no DISTINCT) can stop the BGP scan early.
    let early_stop = if sel.order_by.is_empty()
        && sel.offset.is_none()
        && !sel.distinct
        && !matches!(sel.projection, Projection::Count { .. })
    {
        sel.limit
    } else {
        None
    };
    let evaluated = evaluate_pattern(graph, &sel.pattern, early_stop, trace, opts)?;

    let pattern_vars = evaluated.variables;
    let table = evaluated.table;

    // Aggregate projection: COUNT collapses the solution sequence to one row.
    // Runs entirely in id space — interning is injective, so distinctness of
    // ids is distinctness of terms.
    if let Projection::Count { var, distinct, alias } = &sel.projection {
        let n = match var {
            None => table.len(),
            Some(v) => {
                let Some(col) = pattern_vars.iter().position(|pv| pv == v) else {
                    return Err(SparqlError::eval(format!("COUNT of unknown variable ?{v}")));
                };
                let mut bound: Vec<TermId> = table.iter().filter_map(|r| r[col]).collect();
                if *distinct {
                    bound.sort_unstable();
                    bound.dedup();
                }
                bound.len()
            }
        };
        return Ok(Solutions {
            variables: vec![alias.clone()],
            rows: vec![vec![Some(Term::Literal(relpat_rdf::Literal::integer(n as i64)))]],
        });
    }

    // Projection.
    let out_vars: Vec<String> = match &sel.projection {
        Projection::All => pattern_vars.clone(),
        Projection::Vars(vars) => vars.clone(),
        // Handled by the aggregate branch above.
        Projection::Count { .. } => unreachable!("COUNT projection returns early"),
    };
    let positions: Vec<Option<usize>> = out_vars
        .iter()
        .map(|v| pattern_vars.iter().position(|pv| pv == v))
        .collect();

    // ORDER BY keys may be arbitrary expressions over unprojected variables,
    // so that path materializes every column up front and sorts term rows.
    // The common unordered path stays in id space until the very end.
    if !sel.order_by.is_empty() {
        let index: FxHashMap<&str, usize> =
            pattern_vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
        type Decorated = (Vec<Option<Value>>, Vec<Option<Term>>);
        let mut decorated: Vec<Decorated> = table
            .iter()
            .map(|binding| {
                let row: Vec<Option<Term>> =
                    binding.iter().map(|id| id.map(|i| graph.term(i).clone())).collect();
                let keys = sel
                    .order_by
                    .iter()
                    .map(|k| eval_expr(&k.expr, &row, &index).ok())
                    .collect();
                (keys, row)
            })
            .collect();
        decorated.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in sel.order_by.iter().enumerate() {
                let ord = compare_values(&ka[i], &kb[i]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        let mut projected: Vec<Vec<Option<Term>>> = decorated
            .into_iter()
            .map(|(_, row)| {
                positions.iter().map(|p| p.and_then(|i| row[i].clone())).collect()
            })
            .collect();

        if sel.distinct {
            // Hash-based stable dedup: first occurrence wins, preserving
            // ORDER BY output order at O(1) per row instead of a linear
            // rescan.
            let mut seen: FxHashSet<Vec<Option<Term>>> = FxHashSet::default();
            seen.reserve(projected.len());
            projected.retain(|row| seen.insert(row.clone()));
        }

        let offset = sel.offset.unwrap_or(0);
        if offset > 0 {
            projected.drain(..offset.min(projected.len()));
        }
        if let Some(limit) = sel.limit {
            projected.truncate(limit);
        }
        return Ok(Solutions { variables: out_vars, rows: projected });
    }

    // Id-space projection: copying column ids, never cloning terms.
    let mut projected = IdTable::new(out_vars.len());
    for row in table.iter() {
        for p in &positions {
            projected.data.push(p.and_then(|i| row[i]));
        }
        projected.rows += 1;
    }

    if sel.distinct {
        // Stable dedup on id rows: hashing a few u32s per row, not strings.
        let mut seen: FxHashSet<Vec<Option<TermId>>> = FxHashSet::default();
        seen.reserve(projected.len());
        projected.retain(|row| seen.insert(row.to_vec()));
    }

    // OFFSET/LIMIT pick the output window before any term is materialized;
    // each surviving cell then pays for exactly one term clone.
    let lo = sel.offset.unwrap_or(0).min(projected.len());
    let hi = sel.limit.map_or(projected.len(), |l| lo.saturating_add(l).min(projected.len()));
    let rows: Vec<Vec<Option<Term>>> = (lo..hi)
        .map(|i| {
            projected.row(i).iter().map(|id| id.map(|t| graph.term(t).clone())).collect()
        })
        .collect();

    Ok(Solutions { variables: out_vars, rows })
}

/// Row-major table of variable bindings in id space: `width` columns per
/// row, every row a contiguous stripe of one shared allocation. The join
/// pipeline appends, filters and truncates rows without allocating per row —
/// at the million-triple tier the per-row `Vec` boxes this replaces cost more
/// than the probe searches themselves, burying the operator win under
/// allocator traffic. The row count is tracked explicitly because fully
/// concrete ASK patterns produce zero-width rows.
#[derive(Debug, Clone)]
struct IdTable {
    width: usize,
    rows: usize,
    data: Vec<Option<TermId>>,
}

impl IdTable {
    fn new(width: usize) -> Self {
        IdTable { width, rows: 0, data: Vec::new() }
    }

    /// One row with every column unbound — the seed every evaluation starts
    /// from.
    fn unit(width: usize) -> Self {
        IdTable { width, rows: 1, data: vec![None; width] }
    }

    /// A one-row table copied from an existing row (OPTIONAL evaluates its
    /// right side once per left row).
    fn single(width: usize, row: &[Option<TermId>]) -> Self {
        debug_assert_eq!(row.len(), width);
        IdTable { width, rows: 1, data: row.to_vec() }
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn row(&self, i: usize) -> &[Option<TermId>] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    fn iter(&self) -> impl Iterator<Item = &[Option<TermId>]> {
        (0..self.rows).map(move |i| &self.data[i * self.width..(i + 1) * self.width])
    }

    fn push(&mut self, row: &[Option<TermId>]) {
        debug_assert_eq!(row.len(), self.width);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    fn append(&mut self, other: &IdTable) {
        debug_assert_eq!(other.width, self.width);
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    fn truncate(&mut self, n: usize) {
        if n < self.rows {
            self.data.truncate(n * self.width);
            self.rows = n;
        }
    }

    /// Keeps only rows satisfying `keep`, compacting in place.
    fn retain(&mut self, mut keep: impl FnMut(&[Option<TermId>]) -> bool) {
        let width = self.width;
        let mut kept = 0usize;
        for i in 0..self.rows {
            let start = i * width;
            if keep(&self.data[start..start + width]) {
                if kept != i {
                    self.data.copy_within(start..start + width, kept * width);
                }
                kept += 1;
            }
        }
        self.truncate(kept);
    }
}

/// Id-level bindings produced by BGP + filter evaluation. Terms are only
/// materialized after projection and slicing, so each emitted cell pays for
/// exactly one term clone and dropped columns pay nothing.
struct Evaluated {
    variables: Vec<String>,
    table: IdTable,
}

fn evaluate_pattern(
    graph: &Graph,
    pattern: &GraphPattern,
    early_stop: Option<usize>,
    trace: Option<&mut PlanTrace>,
    opts: LowerOpts,
) -> Result<Evaluated, SparqlError> {
    let planned = lower_pattern(graph, pattern, early_stop, opts);
    let var_index: FxHashMap<&str, usize> =
        planned.variables.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();

    let initial = IdTable::unit(planned.variables.len());
    let mut trace = trace;
    let mut table = eval_algebra(graph, &planned.root, &var_index, initial, &mut trace);

    if let Some(stop) = early_stop {
        // Safety net: the lowering emits a pushdown-capable Slice directly
        // over a Bgp only when nothing can drop or add rows afterwards; in
        // every other tree shape the limit still applies here, after full
        // evaluation.
        table.truncate(stop);
    }

    Ok(Evaluated { variables: planned.variables, table })
}

/// Interprets a lowered [`Algebra`] tree bottom-up against a set of incoming
/// bindings: each node first evaluates its `input` edge, then transforms the
/// rows. Semantics are identical to the previous direct `GraphPattern` walk
/// (UNION concatenation, OPTIONAL left join, filter error-drops); only the
/// BGP leaves changed join operators.
fn eval_algebra(
    graph: &Graph,
    node: &Algebra,
    var_index: &FxHashMap<&str, usize>,
    bindings: IdTable,
    trace: &mut Option<&mut PlanTrace>,
) -> IdTable {
    match node {
        Algebra::Bgp(steps) => join_steps(graph, steps, var_index, bindings, None, trace),
        Algebra::Slice { input, limit } => match &**input {
            // Bare-LIMIT/ASK pushdown: only a Slice directly over a BGP can
            // stop the join mid-scan. Any other child could drop or multiply
            // rows, so it is evaluated in full and truncated.
            Algebra::Bgp(steps) => {
                join_steps(graph, steps, var_index, bindings, Some(*limit), trace)
            }
            other => {
                let mut rows = eval_algebra(graph, other, var_index, bindings, trace);
                rows.truncate(*limit);
                rows
            }
        },
        // UNION: concatenate the solutions of each alternative, each
        // evaluated from the input's bindings (join semantics with the
        // surrounding group).
        Algebra::Union { input, alternatives } => {
            let bindings = eval_algebra(graph, input, var_index, bindings, trace);
            if bindings.is_empty() {
                return bindings;
            }
            let mut next = IdTable::new(bindings.width);
            for alt in alternatives {
                next.append(&eval_algebra(graph, alt, var_index, bindings.clone(), trace));
            }
            next
        }
        // OPTIONAL: left join — keep the binding unextended when the
        // optional part has no solutions.
        Algebra::LeftJoin { input, right } => {
            let bindings = eval_algebra(graph, input, var_index, bindings, trace);
            let mut next = IdTable::new(bindings.width);
            for i in 0..bindings.len() {
                let extended = eval_algebra(
                    graph,
                    right,
                    var_index,
                    IdTable::single(bindings.width, bindings.row(i)),
                    trace,
                );
                if extended.is_empty() {
                    next.push(bindings.row(i));
                } else {
                    next.append(&extended);
                }
            }
            next
        }
        // Group-level filters; erroring filters remove the row (SPARQL
        // error semantics).
        Algebra::Filter { input, exprs } => {
            let mut bindings = eval_algebra(graph, input, var_index, bindings, trace);
            bindings.retain(|binding| {
                let row: Vec<Option<Term>> =
                    binding.iter().map(|id| id.map(|i| graph.term(i).clone())).collect();
                exprs
                    .iter()
                    .all(|f| eval_expr(f, &row, var_index).map(|v| v.truthy()).unwrap_or(false))
            });
            bindings
        }
    }
}

/// A misestimation fires when a join step scans more than
/// `MISESTIMATE_FACTOR ×` the planner's score. The score already grants one
/// order of magnitude per bound variable, so a 16× overrun (> one further
/// decade of slack) marks a genuinely wrong selectivity assumption rather
/// than rounding noise; see DESIGN.md §13 for the derivation.
const MISESTIMATE_FACTOR: f64 = 16.0;
/// Steps scanning fewer rows than this never fire — on micro-scans a single
/// extra probe binding can double the ratio without meaning anything.
const MISESTIMATE_MIN_ROWS: u64 = 64;

/// Joins a planned BGP's steps into the incoming bindings, in planned order,
/// each step with the operator the planner chose (possibly downgraded to
/// nested at run time — see [`join_batched`]).
///
/// `limit` (from a bare LIMIT / ASK) stops the final join step as soon as
/// enough rows exist: intermediate steps must run to completion (a truncated
/// intermediate set could starve later joins of the rows that survive), but
/// the last pattern's scan can cut off mid-slice. A capped step always runs
/// nested — the batched operators materialize whole key ranges and cannot
/// stop mid-slice without over-counting.
///
/// When `trace` is given, every step appends a [`PlanStep`] pairing the
/// planner's prediction with measured reality (including the operator that
/// actually ran). The untraced path does no per-step allocation or clock
/// reads. Misestimation detection runs on both paths — it only compares
/// numbers the planner already computed.
fn join_steps(
    graph: &Graph,
    steps: &[PlannedStep],
    var_index: &FxHashMap<&str, usize>,
    initial: IdTable,
    limit: Option<usize>,
    trace: &mut Option<&mut PlanTrace>,
) -> IdTable {
    let mut bindings = initial;
    if steps.is_empty() {
        if let Some(cap) = limit {
            bindings.truncate(cap);
        }
        return bindings;
    }
    // Tallied locally and flushed once — one atomic add per join, not per row.
    let mut scanned: u64 = 0;
    for (step, planned) in steps.iter().enumerate() {
        let cap = if step + 1 == steps.len() { limit } else { None };
        let tp = &planned.pattern;
        let step_started = trace.is_some().then(Instant::now);
        let scanned_before = scanned;
        let mut algo = if cap.is_some() { JoinAlgo::Nested } else { planned.algo };
        let mut next = IdTable::new(bindings.width);
        if algo != JoinAlgo::Nested
            && !join_batched(graph, tp, var_index, &bindings, algo, &mut next, &mut scanned)
        {
            // The frozen index vanished under us (overlay write since
            // planning) or the batch precondition failed: fall back.
            algo = JoinAlgo::Nested;
            next = IdTable::new(bindings.width);
            scanned = scanned_before;
        }
        if algo == JoinAlgo::Nested {
            join_nested(graph, tp, var_index, &bindings, cap, &mut next, &mut scanned);
        }
        // One literal call site per counter: `counter!` caches its handle
        // per site, so the name must not be a runtime value.
        match algo {
            JoinAlgo::Nested => relpat_obs::counter!("sparql.join.nested"),
            JoinAlgo::Merge => relpat_obs::counter!("sparql.join.merge"),
            JoinAlgo::Gallop => relpat_obs::counter!("sparql.join.gallop"),
        }
        let step_scanned = scanned - scanned_before;
        // A capped step stops mid-scan by design, so its cost says nothing
        // about the planner; skip it rather than report a false underrun.
        let misestimated = cap.is_none()
            && step_scanned >= MISESTIMATE_MIN_ROWS
            && step_scanned as f64 > MISESTIMATE_FACTOR * (planned.score + 1.0);
        if misestimated {
            relpat_obs::counter!("planner.misestimates");
            relpat_obs::jevent!(
                relpat_obs::Level::Warn,
                "planner.misestimate",
                "pattern" => tp,
                "position" => step,
                "estimate" => planned.estimate,
                "score" => planned.score,
                "scanned" => step_scanned,
            );
        }
        if let Some(t) = trace.as_deref_mut() {
            t.steps.push(PlanStep {
                pattern: tp.to_string(),
                pattern_index: planned.pattern_index,
                position: step,
                estimate: planned.estimate,
                score: planned.score,
                rows_scanned: step_scanned,
                join_algo: algo,
                bindings_emitted: next.len(),
                nanos: step_started.expect("trace implies timer").elapsed().as_nanos() as u64,
                limit_pushdown: cap.is_some(),
            });
            if misestimated {
                t.misestimates += 1;
            }
        }
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }
    relpat_obs::counter!("sparql.rows_scanned", scanned);
    bindings
}

/// The always-correct fallback operator: for each probe row, substitute its
/// bound variables into the pattern and stream the matching slice via
/// [`Graph::scan_iter`], counting every visited row. The only operator that
/// can honor a mid-scan `cap`.
fn join_nested(
    graph: &Graph,
    tp: &TriplePattern,
    var_index: &FxHashMap<&str, usize>,
    bindings: &IdTable,
    cap: Option<usize>,
    next: &mut IdTable,
    scanned: &mut u64,
) {
    'probes: for i in 0..bindings.len() {
        let binding = bindings.row(i);
        match bind_pattern(graph, tp, binding, var_index) {
            BoundPattern::NoMatch => {}
            BoundPattern::Scan(id_pattern, slots) => {
                for (s, p, o) in graph.scan_iter(id_pattern) {
                    *scanned += 1;
                    if try_push_extended(next, binding, &slots, s, p, o)
                        && cap.is_some_and(|c| next.len() >= c)
                    {
                        break 'probes;
                    }
                }
            }
        }
    }
}

/// How one pattern position resolves for a uniform batch of probe rows.
#[derive(Debug, Clone, Copy)]
enum ProbePos {
    /// Concrete term, identical for every row.
    Const(TermId),
    /// Variable bound in every probe row (read per row at this column).
    Bound(usize),
    /// Variable free in every probe row: filled from matches.
    Free(usize),
}

/// Batched sorted operators — merge and gallop. Both resolve the pattern's
/// shape once from the first probe row (top-level BGP rows are uniform: every
/// row binds exactly the variables earlier steps bound), route it to one
/// frozen permutation slice, and locate each **distinct** probe key's range
/// exactly once — merge with a forward cursor over non-decreasing keys,
/// gallop by sorting + deduplicating the keys and `partition_point`-searching
/// a strictly shrinking tail. `scanned` counts each distinct range once,
/// which is the probe work actually done and never exceeds the nested loop's
/// per-row rescans.
///
/// Extended rows are emitted in the probe rows' original order — order
/// preservation is what keeps the binding stream sorted for downstream merge
/// steps and the solution sequence bit-identical to the nested loop's.
///
/// Returns `false` when the batch cannot run (the graph has grown an overlay
/// since planning, or a supposedly bound variable is unbound in some row);
/// the caller falls back to [`join_nested`].
fn join_batched(
    graph: &Graph,
    tp: &TriplePattern,
    var_index: &FxHashMap<&str, usize>,
    bindings: &IdTable,
    algo: JoinAlgo,
    next: &mut IdTable,
    scanned: &mut u64,
) -> bool {
    if bindings.is_empty() {
        return true;
    }
    let first = bindings.row(0);
    let mut shape: Vec<ProbePos> = Vec::with_capacity(3);
    for term in [&tp.subject, &tp.predicate, &tp.object] {
        shape.push(match term {
            Term::Variable(v) => {
                let idx = var_index[v.as_str()];
                if first[idx].is_some() { ProbePos::Bound(idx) } else { ProbePos::Free(idx) }
            }
            concrete => match graph.term_id(concrete) {
                Some(id) => ProbePos::Const(id),
                // A concrete term absent from the graph matches nothing:
                // the whole batch is trivially done.
                None => return true,
            },
        });
    }
    let free_slot = |pos: ProbePos| match pos {
        ProbePos::Free(idx) => Some(idx),
        _ => None,
    };
    let slots = Slots {
        subject: free_slot(shape[0]),
        predicate: free_slot(shape[1]),
        object: free_slot(shape[2]),
    };
    let representative = |row: &[Option<TermId>]| -> Option<IdPattern> {
        let component = |pos: ProbePos| match pos {
            ProbePos::Const(id) => Some(Some(id)),
            // A `None` here breaks the uniformity precondition → bail out.
            ProbePos::Bound(idx) => row[idx].map(Some),
            ProbePos::Free(_) => Some(None),
        };
        Some(IdPattern {
            subject: component(shape[0])?,
            predicate: component(shape[1])?,
            object: component(shape[2])?,
        })
    };
    let Some(rep) = representative(first) else { return false };
    // `None` means the overlay is non-empty: the frozen slices alone no
    // longer tell the whole truth and only the nested loop is correct.
    let Some(probe) = graph.frozen_probe(rep) else { return false };

    // Every row's permuted probe key. All rows share the pattern's
    // Some/None structure, so they all route to `probe`'s permutation.
    let mut keys: Vec<[u32; 3]> = Vec::with_capacity(bindings.len());
    for row in bindings.iter() {
        let Some(pat) = representative(row) else { return false };
        keys.push(probe.key(pat));
    }

    match algo {
        JoinAlgo::Merge => {
            // The binding stream is sorted by the single varying key
            // component, so keys are non-decreasing: one forward cursor
            // visits each distinct key's range once without restarting.
            let mut prev: Option<([u32; 3], (usize, usize))> = None;
            for (row, key) in bindings.iter().zip(&keys) {
                let (lo, hi) = match prev {
                    Some((k, range)) if k == *key => range,
                    earlier => {
                        debug_assert!(
                            earlier.is_none_or(|(k, _)| k <= *key),
                            "merge probe keys regressed"
                        );
                        // Keys never regress when the plan's sortedness
                        // argument holds; restart from 0 if they somehow do
                        // (release-mode correctness over speed).
                        let from = match earlier {
                            Some((k, (_, prev_hi))) if k <= *key => prev_hi,
                            _ => 0,
                        };
                        let range = probe.bounds_from(from, *key);
                        *scanned += (range.1 - range.0) as u64;
                        prev = Some((*key, range));
                        range
                    }
                };
                for i in lo..hi {
                    let (s, p, o) = probe.triple(i);
                    try_push_extended(next, row, &slots, s, p, o);
                }
            }
        }
        _ => {
            // Gallop: sort + dedup the probe keys, locate each distinct
            // key's range once over a strictly shrinking index tail, then
            // emit per probe row in original row order.
            let mut distinct = keys.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let mut ranges: FxHashMap<[u32; 3], (usize, usize)> = FxHashMap::default();
            ranges.reserve(distinct.len());
            let mut from = 0;
            for key in &distinct {
                let (lo, hi) = probe.bounds_from(from, *key);
                *scanned += (hi - lo) as u64;
                ranges.insert(*key, (lo, hi));
                from = hi;
            }
            for (row, key) in bindings.iter().zip(&keys) {
                let (lo, hi) = ranges[key];
                for i in lo..hi {
                    let (s, p, o) = probe.triple(i);
                    try_push_extended(next, row, &slots, s, p, o);
                }
            }
        }
    }
    true
}

/// Where each variable of a pattern lands in the binding vector.
struct Slots {
    subject: Option<usize>,
    predicate: Option<usize>,
    object: Option<usize>,
}

enum BoundPattern {
    /// A concrete term in the pattern does not occur in the graph.
    NoMatch,
    Scan(IdPattern, Slots),
}

fn bind_pattern(
    graph: &Graph,
    tp: &TriplePattern,
    binding: &[Option<TermId>],
    var_index: &FxHashMap<&str, usize>,
) -> BoundPattern {
    let mut id_pattern = IdPattern { subject: None, predicate: None, object: None };
    let mut slots = Slots { subject: None, predicate: None, object: None };
    let positions: [(&Term, &mut Option<TermId>, &mut Option<usize>); 3] = [
        (&tp.subject, &mut id_pattern.subject, &mut slots.subject),
        (&tp.predicate, &mut id_pattern.predicate, &mut slots.predicate),
        (&tp.object, &mut id_pattern.object, &mut slots.object),
    ];
    for (term, id_slot, var_slot) in positions {
        match term {
            Term::Variable(v) => {
                let idx = var_index[v.as_str()];
                match binding[idx] {
                    Some(bound) => *id_slot = Some(bound),
                    None => *var_slot = Some(idx),
                }
            }
            concrete => match graph.term_id(concrete) {
                Some(id) => *id_slot = Some(id),
                None => return BoundPattern::NoMatch,
            },
        }
    }
    BoundPattern::Scan(id_pattern, slots)
}

/// Extends a binding with a scan result, checking repeated-variable
/// consistency (e.g. `?x ?p ?x`), and appends the extended row to `next`.
/// Validation runs **before** the row is copied, so rejected scan rows — the
/// overwhelming majority in a selective join — cost nothing; an emitted row
/// is one `extend_from_slice` into the table's flat buffer plus in-place slot
/// writes, never a per-row allocation. Returns whether a row was emitted.
fn try_push_extended(
    next: &mut IdTable,
    binding: &[Option<TermId>],
    slots: &Slots,
    s: TermId,
    p: TermId,
    o: TermId,
) -> bool {
    let parts = [(slots.subject, s), (slots.predicate, p), (slots.object, o)];
    for (i, (slot, value)) in parts.iter().enumerate() {
        let Some(idx) = slot else { continue };
        // Against the existing binding (scan patterns constrain bound
        // positions already, but a repeated variable may appear both bound
        // and free)…
        if binding[*idx].is_some_and(|existing| existing != *value) {
            return false;
        }
        // …and against the other free slots of this same triple
        // (`?x <p> ?x` with ?x unbound binds two slots to one column).
        for (other_slot, other_value) in &parts[..i] {
            if *other_slot == Some(*idx) && other_value != value {
                return false;
            }
        }
    }
    let start = next.data.len();
    next.data.extend_from_slice(binding);
    for (slot, value) in parts {
        if let Some(idx) = slot {
            next.data[start + idx] = Some(value);
        }
    }
    next.rows += 1;
    true
}

/// Runtime value for filter evaluation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Bool(bool),
    Num(f64),
    Str(String),
    Term(Term),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Term(_) => true,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Term(Term::Literal(l)) => l.as_f64(),
            _ => None,
        }
    }

    /// String coercion mirroring SPARQL `str()`.
    fn as_str_lossy(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => n.to_string(),
            Value::Str(s) => s.clone(),
            Value::Term(Term::Literal(l)) => l.lexical_form().to_string(),
            Value::Term(Term::Iri(iri)) => iri.as_str().to_string(),
            Value::Term(t) => t.to_string(),
        }
    }
}

fn eval_expr(
    expr: &Expr,
    row: &[Option<Term>],
    var_index: &FxHashMap<&str, usize>,
) -> Result<Value, SparqlError> {
    match expr {
        Expr::Var(v) => {
            let idx = var_index
                .get(v.as_str())
                .ok_or_else(|| SparqlError::eval(format!("unknown variable ?{v}")))?;
            match &row[*idx] {
                Some(term) => Ok(term_value(term)),
                None => Err(SparqlError::eval(format!("unbound variable ?{v}"))),
            }
        }
        Expr::Const(term) => Ok(term_value(term)),
        Expr::Cmp(lhs, op, rhs) => {
            let l = eval_expr(lhs, row, var_index)?;
            let r = eval_expr(rhs, row, var_index)?;
            Ok(Value::Bool(apply_cmp(&l, *op, &r)))
        }
        Expr::And(lhs, rhs) => Ok(Value::Bool(
            eval_expr(lhs, row, var_index)?.truthy() && eval_expr(rhs, row, var_index)?.truthy(),
        )),
        Expr::Or(lhs, rhs) => Ok(Value::Bool(
            eval_expr(lhs, row, var_index)?.truthy() || eval_expr(rhs, row, var_index)?.truthy(),
        )),
        Expr::Not(inner) => Ok(Value::Bool(!eval_expr(inner, row, var_index)?.truthy())),
        Expr::Arith(lhs, op, rhs) => {
            let l = eval_expr(lhs, row, var_index)?
                .as_num()
                .ok_or_else(|| SparqlError::eval("non-numeric operand"))?;
            let r = eval_expr(rhs, row, var_index)?
                .as_num()
                .ok_or_else(|| SparqlError::eval("non-numeric operand"))?;
            let v = match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => {
                    if r == 0.0 {
                        return Err(SparqlError::eval("division by zero"));
                    }
                    l / r
                }
            };
            Ok(Value::Num(v))
        }
        Expr::Regex { value, pattern, case_insensitive } => {
            let text = eval_expr(value, row, var_index)?.as_str_lossy();
            Ok(Value::Bool(simple_regex_match(&text, pattern, *case_insensitive)))
        }
        Expr::Lang(inner) => {
            let v = eval_expr(inner, row, var_index)?;
            match v {
                Value::Term(Term::Literal(l)) => {
                    Ok(Value::Str(l.language().unwrap_or("").to_string()))
                }
                _ => Err(SparqlError::eval("lang() of non-literal")),
            }
        }
        Expr::Datatype(inner) => {
            let v = eval_expr(inner, row, var_index)?;
            match v {
                Value::Term(Term::Literal(l)) => Ok(Value::Str(l.datatype_str().to_string())),
                _ => Err(SparqlError::eval("datatype() of non-literal")),
            }
        }
        Expr::Str(inner) => Ok(Value::Str(eval_expr(inner, row, var_index)?.as_str_lossy())),
        Expr::Bound(v) => {
            let idx = var_index
                .get(v.as_str())
                .ok_or_else(|| SparqlError::eval(format!("unknown variable ?{v}")))?;
            Ok(Value::Bool(row[*idx].is_some()))
        }
    }
}

fn term_value(term: &Term) -> Value {
    if let Term::Literal(l) = term {
        if let Some(n) = l.as_f64() {
            return Value::Num(n);
        }
        if l.datatype_str() == relpat_rdf::vocab::xsd::BOOLEAN {
            return Value::Bool(l.lexical_form() == "true");
        }
    }
    Value::Term(term.clone())
}

fn apply_cmp(l: &Value, op: CmpOp, r: &Value) -> bool {
    let ord = compare_raw(l, r);
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Three-way comparison across value kinds: numeric when both sides are
/// numeric, term identity for IRIs, otherwise lexical-form string comparison
/// (which orders ISO dates correctly).
fn compare_raw(l: &Value, r: &Value) -> Ordering {
    if let (Some(a), Some(b)) = (l.as_num(), r.as_num()) {
        return a.partial_cmp(&b).unwrap_or(Ordering::Equal);
    }
    if let (Value::Term(Term::Iri(a)), Value::Term(Term::Iri(b))) = (l, r) {
        return a.cmp(b);
    }
    l.as_str_lossy().cmp(&r.as_str_lossy())
}

/// Comparison for ORDER BY keys: unbound (None) sorts first, per SPARQL.
fn compare_values(l: &Option<Value>, r: &Option<Value>) -> Ordering {
    match (l, r) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(a), Some(b)) => compare_raw(a, b),
    }
}

/// Minimal regex dialect: `^` anchors at the start, `$` at the end, and the
/// remaining pattern is matched literally as a substring. This covers every
/// `FILTER regex` the pipeline and benchmark emit (label containment checks);
/// a full regex engine would be an unjustified dependency.
fn simple_regex_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (text, pattern) = if case_insensitive {
        (text.to_lowercase(), pattern.to_lowercase())
    } else {
        (text.to_string(), pattern.to_string())
    };
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && !pattern.ends_with("\\$");
    let core = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::vocab::{dbont, rdf, res};
    use relpat_rdf::Literal;

    fn library() -> Graph {
        let mut g = Graph::new();
        let ty = Term::iri(rdf::TYPE);
        let book = Term::iri(dbont::iri("Book"));
        let writer = Term::iri(dbont::iri("writer"));
        let label = Term::iri(relpat_rdf::vocab::rdfs::LABEL);
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        let lem = Term::iri(res::iri("Stanislaw Lem"));
        for (title, author, pages) in [
            ("Snow", &pamuk, 432),
            ("The Museum of Innocence", &pamuk, 536),
            ("Solaris", &lem, 204),
        ] {
            let b = Term::iri(res::iri(title));
            g.add(b.clone(), ty.clone(), book.clone());
            g.add(b.clone(), writer.clone(), author.clone());
            g.add(b.clone(), label.clone(), Term::Literal(Literal::lang(title, "en")));
            g.add(
                b,
                Term::iri(dbont::iri("numberOfPages")),
                Term::Literal(Literal::integer(pages)),
            );
        }
        g
    }

    fn select(g: &Graph, q: &str) -> Solutions {
        query(g, q).unwrap().into_solutions().unwrap()
    }

    #[test]
    fn paper_query_returns_both_books() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x WHERE { ?x rdf:type dbont:Book . ?x dbont:writer res:Orhan_Pamuk . }",
        );
        assert_eq!(sols.rows.len(), 2);
    }

    #[test]
    fn ask_true_and_false() {
        let g = library();
        assert!(query(&g, "ASK { res:Snow dbont:writer res:Orhan_Pamuk }")
            .unwrap()
            .into_boolean().unwrap());
        assert!(!query(&g, "ASK { res:Solaris dbont:writer res:Orhan_Pamuk }")
            .unwrap()
            .into_boolean().unwrap());
    }

    #[test]
    fn filter_numeric_comparison() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p > 400 && ?p < 500) }",
        );
        assert_eq!(sols.rows.len(), 1);
        assert_eq!(
            sols.get(0, "x"),
            Some(&Term::iri(res::iri("Snow")))
        );
    }

    #[test]
    fn filter_regex_on_label() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { ?x rdfs:label ?l FILTER(regex(str(?l), \"museum\", \"i\")) }",
        );
        assert_eq!(sols.rows.len(), 1);
    }

    #[test]
    fn filter_lang() {
        let g = library();
        let sols = select(&g, "SELECT ?l { res:Snow rdfs:label ?l FILTER(lang(?l) = \"en\") }");
        assert_eq!(sols.rows.len(), 1);
    }

    #[test]
    fn order_by_desc_with_limit() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x ?p { ?x dbont:numberOfPages ?p } ORDER BY DESC(?p) LIMIT 1",
        );
        assert_eq!(sols.rows.len(), 1);
        assert_eq!(
            sols.get(0, "x"),
            Some(&Term::iri(res::iri("The Museum of Innocence")))
        );
    }

    #[test]
    fn offset_skips_rows() {
        let g = library();
        let all = select(&g, "SELECT ?x { ?x rdf:type dbont:Book } ORDER BY ?x");
        let skipped = select(&g, "SELECT ?x { ?x rdf:type dbont:Book } ORDER BY ?x OFFSET 1");
        assert_eq!(skipped.rows.len(), all.rows.len() - 1);
        assert_eq!(skipped.rows[0], all.rows[1]);
    }

    #[test]
    fn distinct_dedups() {
        let g = library();
        // ?w appears once per book; DISTINCT should collapse Pamuk's two.
        let sols = select(&g, "SELECT DISTINCT ?w { ?x dbont:writer ?w }");
        assert_eq!(sols.rows.len(), 2);
    }

    #[test]
    fn select_star_projects_all_vars() {
        let g = library();
        let sols = select(&g, "SELECT * { ?x dbont:writer ?w }");
        assert_eq!(sols.variables, vec!["x".to_string(), "w".to_string()]);
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn repeated_variable_consistency() {
        let mut g = Graph::new();
        g.add(Term::iri("a"), Term::iri("p"), Term::iri("a"));
        g.add(Term::iri("a"), Term::iri("p"), Term::iri("b"));
        let sols = select(&g, "SELECT ?x { ?x <p> ?x }");
        assert_eq!(sols.rows.len(), 1);
    }

    #[test]
    fn unknown_concrete_term_yields_empty() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x dbont:writer res:Nobody }");
        assert!(sols.rows.is_empty());
    }

    #[test]
    fn erroring_filter_drops_row_not_query() {
        let g = library();
        // lang() of an IRI errors; the row is dropped, the query succeeds.
        let sols = select(&g, "SELECT ?x { ?x rdf:type dbont:Book FILTER(lang(?x) = \"en\") }");
        assert!(sols.rows.is_empty());
    }

    #[test]
    fn arithmetic_in_filters() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p * 2 > 1000) }");
        assert_eq!(sols.rows.len(), 1); // 536 * 2 = 1072
    }

    #[test]
    fn division_by_zero_drops_row() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x dbont:numberOfPages ?p FILTER(?p / 0 > 1) }");
        assert!(sols.rows.is_empty());
    }

    #[test]
    fn projection_of_unbound_var_is_none() {
        let g = library();
        let sols = select(&g, "SELECT ?ghost { res:Snow rdf:type dbont:Book }");
        assert_eq!(sols.rows.len(), 1);
        assert_eq!(sols.rows[0][0], None);
    }

    #[test]
    fn bare_limit_early_stops() {
        let g = library();
        let sols = select(&g, "SELECT ?x { ?x rdf:type dbont:Book } LIMIT 2");
        assert_eq!(sols.rows.len(), 2);
    }

    #[test]
    fn simple_regex_dialect() {
        assert!(simple_regex_match("Orhan Pamuk", "pamuk", true));
        assert!(!simple_regex_match("Orhan Pamuk", "pamuk", false));
        assert!(simple_regex_match("Snow", "^Sno", false));
        assert!(simple_regex_match("Snow", "now$", false));
        assert!(simple_regex_match("Snow", "^Snow$", false));
        assert!(!simple_regex_match("Snows", "^Snow$", false));
    }

    #[test]
    fn optional_left_join_keeps_unmatched_rows() {
        let mut g = library();
        // Only Pamuk gets a birth place.
        g.add(
            Term::iri(res::iri("Orhan Pamuk")),
            Term::iri(dbont::iri("birthPlace")),
            Term::iri(res::iri("Istanbul")),
        );
        let sols = select(
            &g,
            "SELECT ?w ?p { ?x dbont:writer ?w OPTIONAL { ?w dbont:birthPlace ?p } }",
        );
        assert_eq!(sols.rows.len(), 3);
        let bound: Vec<bool> = sols.rows.iter().map(|r| r[1].is_some()).collect();
        assert_eq!(bound.iter().filter(|b| **b).count(), 2); // Pamuk's two books
        assert_eq!(bound.iter().filter(|b| !**b).count(), 1); // Lem unextended
    }

    #[test]
    fn optional_variables_are_projectable() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x ?ghost { ?x rdf:type dbont:Book OPTIONAL { ?x dbont:writer ?ghost } }",
        );
        assert_eq!(sols.variables, vec!["x".to_string(), "ghost".to_string()]);
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn union_concatenates_alternatives() {
        let mut g = library();
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("author")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        let sols = select(
            &g,
            "SELECT ?x { { ?x dbont:writer res:Orhan_Pamuk } UNION { ?x dbont:author res:Orhan_Pamuk } }",
        );
        // 2 via writer + 1 via author (Snow appears twice: once per branch
        // it matches — writer and author — minus dedup-free union = 3).
        assert_eq!(sols.rows.len(), 3);
        let distinct = select(
            &g,
            "SELECT DISTINCT ?x { { ?x dbont:writer res:Orhan_Pamuk } UNION { ?x dbont:author res:Orhan_Pamuk } }",
        );
        assert_eq!(distinct.rows.len(), 2);
    }

    #[test]
    fn union_joins_with_surrounding_pattern() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { ?x rdf:type dbont:Book . \
             { ?x dbont:writer res:Orhan_Pamuk } UNION { ?x dbont:writer res:Stanislaw_Lem } }",
        );
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn plain_nested_group_merges_into_parent() {
        let g = library();
        let sols = select(&g, "SELECT ?x { { ?x rdf:type dbont:Book } }");
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn filter_inside_optional_scopes_locally() {
        let g = library();
        // The filter only constrains the optional extension; rows that fail
        // it stay unextended rather than disappearing.
        let sols = select(
            &g,
            "SELECT ?x ?p { ?x rdf:type dbont:Book OPTIONAL { ?x dbont:numberOfPages ?p FILTER(?p > 500) } }",
        );
        assert_eq!(sols.rows.len(), 3);
        assert_eq!(sols.rows.iter().filter(|r| r[1].is_some()).count(), 1); // 536 only
    }

    #[test]
    fn union_of_three_alternatives() {
        let g = library();
        let sols = select(
            &g,
            "SELECT ?x { { res:Snow rdfs:label ?x } UNION { res:Solaris rdfs:label ?x } \
             UNION { res:Snow dbont:numberOfPages ?x } }",
        );
        assert_eq!(sols.rows.len(), 3);
    }

    #[test]
    fn count_star_and_var() {
        let g = library();
        let sols = select(&g, "SELECT (COUNT(*) AS ?n) { ?x rdf:type dbont:Book }");
        assert_eq!(sols.variables, vec!["n".to_string()]);
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(3));

        let sols = select(&g, "SELECT (COUNT(?w) AS ?n) { ?x dbont:writer ?w }");
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(3));
    }

    #[test]
    fn count_distinct_collapses_duplicates() {
        let g = library();
        let sols = select(&g, "SELECT (COUNT(DISTINCT ?w) AS ?n) { ?x dbont:writer ?w }");
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn bare_count_defaults_alias() {
        let g = library();
        let sols = select(&g, "SELECT COUNT(?x) { ?x rdf:type dbont:Book }");
        assert_eq!(sols.variables, vec!["count".to_string()]);
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(3));
    }

    #[test]
    fn count_with_filter() {
        let g = library();
        let sols = select(
            &g,
            "SELECT (COUNT(?x) AS ?n) { ?x dbont:numberOfPages ?p FILTER(?p > 300) }",
        );
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn count_empty_pattern_is_zero() {
        let g = library();
        let sols = select(&g, "SELECT (COUNT(?x) AS ?n) { ?x dbont:writer res:Nobody }");
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_i64(), Some(0));
    }

    #[test]
    fn count_unknown_variable_errors() {
        let g = library();
        assert!(query(&g, "SELECT (COUNT(?zzz) AS ?n) { ?x ?p ?o }").is_err());
    }

    #[test]
    fn cross_pattern_join_on_shared_variable() {
        let mut g = library();
        g.add(
            Term::iri(res::iri("Orhan Pamuk")),
            Term::iri(dbont::iri("birthPlace")),
            Term::iri(res::iri("Istanbul")),
        );
        let sols = select(
            &g,
            "SELECT ?b ?c { ?b dbont:writer ?w . ?w dbont:birthPlace ?c }",
        );
        assert_eq!(sols.rows.len(), 2); // both Pamuk books join to Istanbul
    }
}
