//! Differential suite: the sorted join operators (merge + gallop) against
//! the nested-loop oracle.
//!
//! Every test runs the same parsed query through [`execute_traced`] (planner
//! picks merge/gallop where the sortedness argument allows) and
//! [`execute_nested_traced`] (identical join order, every step pinned to the
//! nested fallback), then asserts:
//!
//! 1. **bit-identical solutions** — not just equal multisets: both executors
//!    emit rows in the probe stream's original order, so the full solution
//!    *sequences* must match;
//! 2. **`rows_scanned` never grows** — merge/gallop locate each distinct
//!    probe key's range once, so their per-query scan total is ≤ the nested
//!    loop's per-row rescans.
//!
//! Coverage: all 8 triple-pattern shapes, every shared-variable orientation
//! of two-pattern joins, chains/stars, repeated variables, empty and
//! singleton slices, LIMIT pushdown, UNION/OPTIONAL/FILTER interaction, and
//! a seeded random-query fuzz over a seeded random graph.

use relpat_obs::Rng;
use relpat_rdf::{Graph, Term};
use relpat_sparql::{execute_nested_traced, execute_traced, parse_query, JoinAlgo};

/// Seeded random graph: `entities` node IRIs `<e0>..`, `preds` predicate
/// IRIs `<p0>..`, `triples` random edges plus a handful of guaranteed
/// self-loops (repeated-variable fodder), frozen so the sorted operators
/// are actually eligible.
fn random_graph(seed: u64, entities: usize, preds: usize, triples: usize) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    for _ in 0..triples {
        let s = rng.gen_range(0..entities);
        let p = rng.gen_range(0..preds);
        let o = rng.gen_range(0..entities);
        g.add(
            Term::iri(format!("e{s}")),
            Term::iri(format!("p{p}")),
            Term::iri(format!("e{o}")),
        );
    }
    for i in 0..entities.min(4) {
        g.add(Term::iri(format!("e{i}")), Term::iri("p0"), Term::iri(format!("e{i}")));
    }
    g.freeze();
    g
}

/// Runs `q` through both executors; asserts identical solution sequences
/// and a non-increasing scan total. Returns the operators the fast plan
/// actually executed, so callers can assert a sorted operator really ran.
fn assert_equivalent(g: &Graph, q: &str) -> Vec<JoinAlgo> {
    let parsed = parse_query(q).unwrap_or_else(|e| panic!("parse {q}: {e}"));
    let (fast, fast_trace) = execute_traced(g, &parsed).expect("fast execution");
    let (slow, slow_trace) = execute_nested_traced(g, &parsed).expect("oracle execution");
    assert_eq!(fast, slow, "solutions diverge for {q}");
    assert!(
        fast_trace.rows_scanned() <= slow_trace.rows_scanned(),
        "sorted operators scanned more than nested ({} > {}) for {q}",
        fast_trace.rows_scanned(),
        slow_trace.rows_scanned(),
    );
    assert!(
        slow_trace.steps.iter().all(|s| s.join_algo == JoinAlgo::Nested),
        "oracle must be pinned to nested for {q}"
    );
    fast_trace.steps.iter().map(|s| s.join_algo).collect()
}

#[test]
fn all_eight_pattern_shapes_match() {
    let g = random_graph(7, 12, 3, 60);
    // One concrete triple that definitely exists: random_graph guarantees
    // the <e0> <p0> <e0> self-loop.
    let (s, p, o) = ("<e0>", "<p0>", "<e0>");
    for q in [
        format!("SELECT * {{ {s} {p} {o} }}"),
        format!("SELECT ?o {{ {s} {p} ?o }}"),
        format!("SELECT ?pp {{ {s} ?pp {o} }}"),
        format!("SELECT ?p ?o {{ {s} ?p ?o }}"),
        format!("SELECT ?s {{ ?s {p} {o} }}"),
        format!("SELECT ?s ?o {{ ?s {p} ?o }}"),
        format!("SELECT ?s ?p {{ ?s ?p {o} }}"),
        "SELECT ?s ?p ?o { ?s ?p ?o }".to_string(),
    ] {
        assert_equivalent(&g, &q);
    }
}

#[test]
fn two_pattern_joins_in_every_orientation() {
    let g = random_graph(11, 10, 4, 80);
    // The shared variable sits at each (position-in-first, position-in-second)
    // combination; subject/object orientations exercise merge and gallop,
    // predicate joins exercise the rarely-sorted POS cases.
    let queries = [
        "SELECT * { ?x <p0> ?a . ?x <p1> ?b }",  // s-s
        "SELECT * { ?x <p0> ?a . ?b <p1> ?x }",  // s-o
        "SELECT * { ?a <p0> ?x . ?x <p1> ?b }",  // o-s
        "SELECT * { ?a <p0> ?x . ?b <p1> ?x }",  // o-o
        "SELECT * { ?x ?p ?a . ?x <p1> ?b }",    // s-s with open predicate
        "SELECT * { <e0> ?p ?a . ?b ?p <e1> }",  // p-p
        "SELECT * { ?x <p0> ?y . ?y <p1> ?x }",  // both vars shared (cycle)
    ];
    let mut sorted_operator_ran = false;
    for q in queries {
        let algos = assert_equivalent(&g, q);
        sorted_operator_ran |= algos.iter().any(|a| *a != JoinAlgo::Nested);
    }
    assert!(sorted_operator_ran, "at least one orientation must use merge/gallop");
}

#[test]
fn chains_and_stars_use_sorted_operators() {
    let g = random_graph(23, 16, 4, 160);
    let chain = "SELECT * { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?d }";
    // A predicate-only scan sorts by *object* (POS order), so a star on the
    // subject galops; anchoring the first step with a concrete object makes
    // its POS slice sorted by subject ?x, and the remaining steps merge.
    let star_gallop = "SELECT * { ?x <p0> ?a . ?x <p1> ?b . ?x <p2> ?c }";
    let star_merge = "SELECT * { ?x <p0> <e0> . ?x <p1> ?b . ?x <p2> ?c }";
    let algos_chain = assert_equivalent(&g, chain);
    let algos_gallop = assert_equivalent(&g, star_gallop);
    let algos_merge = assert_equivalent(&g, star_merge);
    assert_eq!(algos_chain[0], JoinAlgo::Nested, "first step is always a scan");
    assert!(
        algos_chain[1..]
            .iter()
            .chain(&algos_gallop[1..])
            .chain(&algos_merge[1..])
            .all(|a| *a != JoinAlgo::Nested),
        "later steps of single-shared-var joins run batched: \
         {algos_chain:?} {algos_gallop:?} {algos_merge:?}"
    );
    assert!(
        algos_gallop[1..].iter().all(|a| *a == JoinAlgo::Gallop),
        "subject joins over an object-sorted stream gallop: {algos_gallop:?}"
    );
    assert_eq!(
        algos_merge[1..],
        [JoinAlgo::Merge, JoinAlgo::Merge],
        "subject joins over a subject-sorted stream merge"
    );
}

#[test]
fn repeated_variables_within_a_pattern() {
    let g = random_graph(31, 8, 3, 50);
    for q in [
        "SELECT ?x { ?x <p0> ?x }",
        "SELECT * { ?x <p0> ?x . ?x <p1> ?y }",
        "SELECT * { ?y <p1> ?x . ?x <p0> ?x }",
        "SELECT * { ?x ?p ?x . ?x <p0> ?y }",
    ] {
        assert_equivalent(&g, q);
    }
}

#[test]
fn empty_and_singleton_slices() {
    let mut g = Graph::new();
    g.add(Term::iri("only-s"), Term::iri("only-p"), Term::iri("only-o"));
    g.add(Term::iri("a"), Term::iri("q"), Term::iri("b"));
    g.freeze();
    for q in [
        // Dead concrete term (never interned): everything downstream empty.
        "SELECT ?x { ?x <only-p> <missing> . ?x <q> ?y }",
        "SELECT * { ?x <q> ?y . ?x <nope> ?z }",
        // Singleton slice joined both ways.
        "SELECT * { ?s <only-p> ?o . ?s <q> ?y }",
        "SELECT * { ?s <q> ?o . ?s <only-p> ?y }",
        "SELECT ?s { ?s <only-p> <only-o> }",
    ] {
        assert_equivalent(&g, q);
    }
}

#[test]
fn limit_pushdown_interaction() {
    let g = random_graph(43, 14, 3, 120);
    for q in [
        // Capped final step downgrades to nested in both executors — the
        // truncated prefix must still agree because every earlier step
        // produced bit-identical streams.
        "SELECT * { ?a <p0> ?b . ?b <p1> ?c } LIMIT 3",
        "SELECT * { ?x <p0> ?a . ?x <p1> ?b } LIMIT 1",
        "SELECT ?s { ?s <p0> ?o } LIMIT 2",
        // Non-pushdown limits (DISTINCT / ORDER BY / OFFSET) for contrast.
        "SELECT DISTINCT ?a { ?a <p0> ?b . ?b <p1> ?c } LIMIT 4",
        "SELECT ?a { ?a <p0> ?b . ?b <p1> ?c } ORDER BY ?a LIMIT 4",
        "SELECT ?a { ?a <p0> ?b . ?b <p1> ?c } LIMIT 4 OFFSET 2",
    ] {
        assert_equivalent(&g, q);
    }
    let parsed = parse_query("SELECT * { ?a <p0> ?b . ?b <p1> ?c } LIMIT 3").unwrap();
    let (_, trace) = execute_traced(&g, &parsed).unwrap();
    let last = trace.steps.last().unwrap();
    assert!(last.limit_pushdown, "bare LIMIT arms the final step");
    assert_eq!(last.join_algo, JoinAlgo::Nested, "a capped step must run nested");
}

#[test]
fn union_optional_filter_groups_match() {
    let g = random_graph(53, 12, 4, 100);
    for q in [
        "SELECT * { ?x <p0> ?a . { ?x <p1> ?b } UNION { ?x <p2> ?b } }",
        "SELECT * { ?x <p0> ?a OPTIONAL { ?x <p1> ?b } }",
        "SELECT * { ?x <p0> ?a . ?a <p1> ?b FILTER(bound(?b)) }",
        "SELECT * { ?x <p0> ?a OPTIONAL { ?a <p1> ?b . ?b <p2> ?c } }",
        "ASK { ?x <p0> ?a . ?a <p1> ?b }",
        "ASK { ?x <p0> <missing> }",
    ] {
        assert_equivalent(&g, q);
    }
}

#[test]
fn seeded_query_fuzz_against_the_oracle() {
    let g = random_graph(97, 20, 5, 260);
    let mut rng = Rng::seed_from_u64(0xD1FF);
    let vars = ["a", "b", "c", "x", "y"];
    for case in 0..60 {
        let n_patterns = rng.gen_range(1..=4usize);
        let mut body = String::new();
        for i in 0..n_patterns {
            // Bias toward shared variables so joins actually connect; mix in
            // concrete entities and open predicates.
            let subj = if rng.gen_bool(0.7) {
                format!("?{}", vars[rng.gen_range(0..vars.len())])
            } else {
                format!("<e{}>", rng.gen_range(0..20))
            };
            let pred = if rng.gen_bool(0.8) {
                format!("<p{}>", rng.gen_range(0..5))
            } else {
                format!("?q{i}")
            };
            let obj = if rng.gen_bool(0.7) {
                format!("?{}", vars[rng.gen_range(0..vars.len())])
            } else {
                format!("<e{}>", rng.gen_range(0..20))
            };
            body.push_str(&format!("{subj} {pred} {obj} . "));
        }
        let q = format!("SELECT * {{ {body}}}");
        assert_equivalent(&g, &q);
        let _ = case;
    }
}
