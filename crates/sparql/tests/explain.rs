//! EXPLAIN ANALYZE integration tests: golden rendering of a fixed plan,
//! planner-estimate fidelity, counter consistency, and the allocation cost
//! of the explain-off path.
//!
//! The binary installs a counting global allocator so the overhead test can
//! assert that threading `trace: None` through the executor adds no
//! allocations per join step. All tests that execute queries serialize on
//! [`exec_lock`] — the allocation counter and the `sparql.rows_scanned`
//! counter are process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock};

use relpat_rdf::vocab::{dbont, rdf, res};
use relpat_rdf::{Graph, IdPattern, Term};
use relpat_sparql::{execute, execute_traced, parse_query, query_traced, QueryCache};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serializes tests that read process-global state (allocation counter,
/// `sparql.rows_scanned`).
fn exec_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A failed assertion elsewhere shouldn't cascade: poison is harmless
    // here (the guard protects no data).
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed library graph: 3 typed books by one author, plus unrelated
/// noise, frozen so planner estimates are exact index counts.
fn library() -> Graph {
    let mut g = Graph::new();
    let pamuk = Term::iri(res::iri("Orhan Pamuk"));
    for title in ["Snow", "My Name Is Red", "The White Castle"] {
        let book = Term::iri(res::iri(title));
        g.add(book.clone(), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book")));
        g.add(book, Term::iri(dbont::iri("author")), pamuk.clone());
    }
    g.add(
        Term::iri(res::iri("Ankara")),
        Term::iri(rdf::TYPE),
        Term::iri(dbont::iri("City")),
    );
    g.freeze();
    g
}

const QUERY: &str = "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }";

#[test]
fn golden_explain_rendering_is_stable() {
    let _guard = exec_lock();
    let g = library();
    let (result, trace) = query_traced(&g, QUERY).expect("query runs");
    assert_eq!(result.clone().into_solutions().unwrap().len(), 3);
    // Both patterns estimate 3 rows (3 typed books, 3 authored books); the
    // tie keeps the type pattern first, and once ?x is bound the author
    // pattern's score drops to 0.30 (one bound variable → ×0.1). Step 0's
    // POS scan leaves the binding stream sorted by ?x, so step 1 — joining
    // on ?x alone — runs as a sort-merge intersection: 3 distinct probe
    // keys, each point slice (1 row) counted once.
    assert_eq!(
        trace.render(),
        "plan: 2 steps, 6 rows scanned, 0 misestimates\n\
         \x20 #0 ?x rdf:type dbont:Book .  est=3 score=3.00 scanned=3 emitted=3 algo=nested\n\
         \x20 #1 ?x dbont:author res:Orhan_Pamuk .  est=3 score=0.30 scanned=3 emitted=3 algo=merge\n"
    );
    // Step timing is measured but deliberately excluded from the stable
    // rendering; it still reaches the JSON view.
    assert!(trace.steps.iter().all(|s| s.nanos > 0));
    assert!(trace.to_json().to_string().contains("\"nanos\""));
}

#[test]
fn step_estimates_match_graph_estimate_and_scan_sum_matches_counter() {
    let _guard = exec_lock();
    let g = library();
    let query = parse_query(QUERY).expect("parse");
    let before = relpat_obs::global().counter_value("sparql.rows_scanned");
    let (_, trace) = execute_traced(&g, &query).expect("execute");
    let delta = relpat_obs::global().counter_value("sparql.rows_scanned") - before;
    assert_eq!(trace.rows_scanned(), delta, "summed step scans must equal the counter delta");

    // Recompute each step's estimate straight from the index: it is
    // `graph.estimate()` over the pattern's concrete positions (variables
    // contribute nothing to the id-pattern, bound or not).
    let relpat_sparql::ast::Query::Select(sel) = &query else { panic!("SELECT expected") };
    let patterns = &sel.pattern.triples;
    assert_eq!(trace.steps.len(), patterns.len());
    for step in &trace.steps {
        let tp = &patterns[step.pattern_index];
        let id = |term: &Term| match term {
            Term::Variable(_) => None,
            concrete => Some(g.term_id(concrete).expect("term interned")),
        };
        let expected = g.estimate(IdPattern {
            subject: id(&tp.subject),
            predicate: id(&tp.predicate),
            object: id(&tp.object),
        });
        assert_eq!(step.estimate, expected, "step {} ({})", step.position, step.pattern);
        assert_eq!(step.pattern, tp.to_string());
    }
}

#[test]
fn cache_hits_trace_zero_scans_and_zero_counter_delta() {
    let _guard = exec_lock();
    let g = library();
    let cache = QueryCache::new(8);
    let (first, cold) = cache.query_traced(&g, QUERY).expect("cold query");
    assert!(!cold.cache_hit);
    let before = relpat_obs::global().counter_value("sparql.rows_scanned");
    let (second, hot) = cache.query_traced(&g, QUERY).expect("warm query");
    let delta = relpat_obs::global().counter_value("sparql.rows_scanned") - before;
    assert_eq!(first, second);
    assert!(hot.cache_hit);
    assert_eq!(hot.rows_scanned(), 0);
    assert_eq!(delta, 0, "a cache hit must not run the executor");
    assert_eq!(hot.render(), "plan: cache hit (0 rows scanned)\n");
}

/// Allocations of one call after `warmup` identical calls.
fn allocations_of(warmup: usize, f: impl Fn()) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let before = ALLOCATIONS.load(Relaxed);
    f();
    ALLOCATIONS.load(Relaxed) - before
}

#[test]
fn explain_off_path_allocates_nothing_for_tracing() {
    let _guard = exec_lock();
    let g = library();
    let one_step = parse_query("SELECT ?x { ?x rdf:type dbont:Book }").unwrap();
    let two_step = parse_query(QUERY).unwrap();

    // Steady state: the untraced path allocates a deterministic amount
    // (bindings and result rows only) — run-to-run equality means nothing
    // trace-related leaks into it.
    let off_a = allocations_of(3, || {
        let _ = std::hint::black_box(execute(&g, &two_step).unwrap());
    });
    let off_b = allocations_of(0, || {
        let _ = std::hint::black_box(execute(&g, &two_step).unwrap());
    });
    assert_eq!(off_a, off_b, "untraced execution must allocate deterministically");

    // The extra join step's untraced cost is bindings work only. If the
    // trace machinery allocated on the None path (clock boxes, step
    // buffers, pattern strings), this delta would jump by several
    // allocations per step; the real per-step overhead is zero.
    let off_one = allocations_of(3, || {
        let _ = std::hint::black_box(execute(&g, &one_step).unwrap());
    });
    let bindings_cost = off_b.saturating_sub(off_one);
    assert!(
        bindings_cost <= 16,
        "untraced per-step cost exploded: 1-step run {off_one}, 2-step run {off_b}"
    );

    // Tracing pays only on the traced path: strictly more allocations, at
    // least one per step (the PlanStep pattern string alone).
    let on = allocations_of(3, || {
        let _ = std::hint::black_box(execute_traced(&g, &two_step).unwrap());
    });
    assert!(
        on > off_b,
        "traced execution should allocate for its steps: on {on} <= off {off_b}"
    );
}

#[test]
fn nested_join_clones_only_surviving_rows() {
    let _guard = exec_lock();
    // `?x <p> ?x` scans every <p> row but only the self-loop survives the
    // repeated-variable check. The nested loop must validate *before*
    // cloning the probe binding, so doubling the rejected rows must not
    // change the allocation count — only emitted rows pay for a clone.
    let graph_with_noise = |noise: usize| {
        let mut g = Graph::new();
        let p = Term::iri("p");
        g.add(Term::iri("loop"), p.clone(), Term::iri("loop"));
        for i in 0..noise {
            g.add(Term::iri(format!("s{i}")), p.clone(), Term::iri(format!("o{i}")));
        }
        g.freeze();
        g
    };
    let small = graph_with_noise(64);
    let large = graph_with_noise(128);
    let q = parse_query("SELECT ?x { ?x <p> ?x }").unwrap();
    let small_allocs = allocations_of(3, || {
        let _ = std::hint::black_box(execute(&small, &q).unwrap());
    });
    let large_allocs = allocations_of(3, || {
        let _ = std::hint::black_box(execute(&large, &q).unwrap());
    });
    assert_eq!(
        small_allocs, large_allocs,
        "rejected scan rows must not allocate (64-noise vs 128-noise run)"
    );
}
