//! SPARQL engine integration against a realistic store: the full algebra
//! (joins, FILTER, OPTIONAL, UNION, COUNT, ORDER BY) over the generated
//! knowledge base rather than toy fixtures.

use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_sparql::{query, QueryResult};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

fn rows(q: &str) -> usize {
    match query(&kb().graph, q).unwrap_or_else(|e| panic!("{q}: {e}")) {
        QueryResult::Solutions(s) => s.len(),
        QueryResult::Boolean(_) => panic!("{q}: expected solutions"),
    }
}

#[test]
fn three_way_join_over_generated_facts() {
    // Books → authors → birth places: every row is fully bound.
    let q = "SELECT ?b ?w ?p { ?b rdf:type dbont:Book . ?b dbont:author ?w . \
             ?w dbont:birthPlace ?p }";
    let n = rows(q);
    assert!(n > 0);
    // Adding an unsatisfiable constraint empties it.
    let q2 = "SELECT ?b { ?b rdf:type dbont:Book . ?b dbont:author ?w . \
              ?w dbont:birthPlace res:Nowhere_City }";
    assert_eq!(rows(q2), 0);
}

#[test]
fn optional_preserves_join_cardinality() {
    let base = rows("SELECT ?b { ?b rdf:type dbont:Book }");
    let with_optional =
        rows("SELECT ?b ?pub { ?b rdf:type dbont:Book OPTIONAL { ?b dbont:publisher ?pub } }");
    // Left join never loses rows (and each book has ≤1 publisher here).
    assert!(with_optional >= base);
}

#[test]
fn union_counts_add_up() {
    let writers = rows("SELECT DISTINCT ?x { ?x rdf:type dbont:Writer }");
    let actors = rows("SELECT DISTINCT ?x { ?x rdf:type dbont:Actor }");
    let both = rows(
        "SELECT DISTINCT ?x { { ?x rdf:type dbont:Writer } UNION { ?x rdf:type dbont:Actor } }",
    );
    // Classes are disjoint in the generator, so the union is the sum.
    assert_eq!(both, writers + actors);
}

#[test]
fn count_agrees_with_materialized_rows() {
    let n = rows("SELECT ?x { ?x rdf:type dbont:City }");
    let counted = match query(
        &kb().graph,
        "SELECT (COUNT(?x) AS ?n) { ?x rdf:type dbont:City }",
    )
    .unwrap()
    {
        QueryResult::Solutions(s) => {
            s.first().unwrap().as_literal().unwrap().as_i64().unwrap() as usize
        }
        _ => unreachable!(),
    };
    assert_eq!(n, counted);
}

#[test]
fn order_by_returns_extremes_first() {
    let result = query(
        &kb().graph,
        "SELECT ?c ?p { ?c rdf:type dbont:Country . ?c dbont:populationTotal ?p } \
         ORDER BY DESC(?p) LIMIT 3",
    )
    .unwrap()
    .into_solutions().unwrap();
    let pops: Vec<i64> = result
        .rows
        .iter()
        .map(|r| r[1].as_ref().unwrap().as_literal().unwrap().as_i64().unwrap())
        .collect();
    assert!(pops.windows(2).all(|w| w[0] >= w[1]), "{pops:?}");
}

#[test]
fn filters_compose_with_joins() {
    let q = "SELECT ?c { ?c rdf:type dbont:City . ?c dbont:country res:Turkey . \
             ?c dbont:populationTotal ?p FILTER(?p > 1000000) }";
    let big_turkish = rows(q);
    let all_turkish = rows("SELECT ?c { ?c rdf:type dbont:City . ?c dbont:country res:Turkey }");
    assert!(big_turkish <= all_turkish);
    assert!(big_turkish >= 1); // Istanbul qualifies
}

#[test]
fn ask_over_optional_union() {
    let t = query(
        &kb().graph,
        "ASK { { res:Snow dbont:author ?w } UNION { res:Snow dbont:writer ?w } }",
    )
    .unwrap()
    .into_boolean().unwrap();
    assert!(t);
    let f = query(
        &kb().graph,
        "ASK { res:Snow dbont:director ?d }",
    )
    .unwrap()
    .into_boolean().unwrap();
    assert!(!f);
}

#[test]
fn distinct_interacts_with_union_and_projection() {
    let raw = rows(
        "SELECT ?w { { ?b dbont:author ?w } UNION { ?b dbont:author ?w } }",
    );
    let distinct = rows(
        "SELECT DISTINCT ?w { { ?b dbont:author ?w } UNION { ?b dbont:author ?w } }",
    );
    assert_eq!(raw % 2, 0, "duplicated union must double rows");
    assert!(distinct <= raw / 2);
}
