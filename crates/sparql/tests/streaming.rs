//! Streaming-execution observability test.
//!
//! `sparql.rows_scanned` lives on the process-global metrics registry, which
//! every test thread shares — so all counter-delta assertions sit in ONE test
//! function in their own integration-test binary, where no concurrent query
//! can perturb the deltas.

use relpat_rdf::{Graph, Term};
use relpat_rdf::vocab::{dbont, rdf, res};
use relpat_sparql::query;

fn scanned() -> u64 {
    relpat_obs::global().counter_value("sparql.rows_scanned")
}

/// Runs a query and returns (rows produced, rows scanned by its joins).
fn run(g: &Graph, q: &str) -> (usize, u64) {
    let before = scanned();
    let rows = query(g, q).unwrap().into_solutions().unwrap().rows.len();
    (rows, scanned() - before)
}

#[test]
fn bare_limit_stops_the_scan_early() {
    let mut g = Graph::new();
    let ty = Term::iri(rdf::TYPE);
    let book = Term::iri(dbont::iri("Book"));
    let writer = Term::iri(dbont::iri("writer"));
    let pamuk = Term::iri(res::iri("Orhan Pamuk"));
    const BOOKS: usize = 500;
    for i in 0..BOOKS {
        let b = Term::iri(res::iri(&format!("Book {i}")));
        g.add(b.clone(), ty.clone(), book.clone());
        g.add(b, writer.clone(), pamuk.clone());
    }
    g.freeze();

    // Unlimited: the single-pattern scan must walk every matching triple.
    let (rows_all, scanned_all) = run(&g, "SELECT ?x { ?x rdf:type dbont:Book }");
    assert_eq!(rows_all, BOOKS);
    assert_eq!(scanned_all, BOOKS as u64);

    // Bare LIMIT 1: the limit is pushed into the join loop, so the scan
    // stops after the first match instead of walking all 500.
    let (rows_one, scanned_one) = run(&g, "SELECT ?x { ?x rdf:type dbont:Book } LIMIT 1");
    assert_eq!(rows_one, 1);
    assert!(
        scanned_one < scanned_all,
        "LIMIT 1 must scan strictly fewer rows ({scanned_one} vs {scanned_all})"
    );
    assert_eq!(scanned_one, 1, "a selective first pattern should stop immediately");

    // Multi-pattern join: intermediate steps still run to completion; only
    // the final step may stop early, so the total stays below the unlimited
    // two-pattern cost (500 type rows + 500 writer probes).
    let (rows_join, scanned_join) = run(
        &g,
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:writer res:Orhan_Pamuk } LIMIT 1",
    );
    assert_eq!(rows_join, 1);
    let (rows_join_all, scanned_join_all) = run(
        &g,
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:writer res:Orhan_Pamuk }",
    );
    assert_eq!(rows_join_all, BOOKS);
    assert!(
        scanned_join < scanned_join_all,
        "join under LIMIT must scan strictly fewer rows ({scanned_join} vs {scanned_join_all})"
    );

    // ASK uses the same early-stop path (limit 1).
    let before = scanned();
    assert!(query(&g, "ASK { ?x rdf:type dbont:Book }").unwrap().into_boolean().unwrap());
    assert_eq!(scanned() - before, 1, "ASK should stop at the first match");

    // A filter blocks pushdown: the limit must not starve the filter of
    // candidate rows, so the full scan runs and the result is still correct.
    let (rows_f, scanned_f) = run(
        &g,
        "SELECT ?x { ?x rdf:type dbont:Book FILTER(regex(str(?x), \"Book\")) } LIMIT 1",
    );
    assert_eq!(rows_f, 1);
    assert_eq!(
        scanned_f, BOOKS as u64,
        "filtered LIMIT must not push down into the scan"
    );

    // LIMIT larger than the result set changes nothing.
    let (rows_big, scanned_big) = run(&g, "SELECT ?x { ?x rdf:type dbont:Book } LIMIT 9999");
    assert_eq!(rows_big, BOOKS);
    assert_eq!(scanned_big, BOOKS as u64);
}
