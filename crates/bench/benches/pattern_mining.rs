//! Perf P3: relational-pattern mining throughput — corpus synthesis,
//! mention detection + distant supervision, store/taxonomy construction —
//! as a function of corpus size.

use relpat_bench::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relpat_kb::{generate, KbConfig};
use relpat_patterns::{extract_occurrences, generate_corpus, mine, CorpusConfig, PatternStore};

fn bench_mining(c: &mut Criterion) {
    let kb = generate(&KbConfig::tiny());
    let mut group = c.benchmark_group("pattern_mining");
    group.sample_size(10);

    for realizations in [1usize, 2, 3] {
        let config = CorpusConfig { max_realizations: realizations, ..CorpusConfig::default() };
        let corpus = generate_corpus(&kb, &config);
        let sentences = corpus.len() as u64;

        group.throughput(Throughput::Elements(sentences));
        group.bench_with_input(
            BenchmarkId::new("corpus_gen", format!("r{realizations}({sentences}s)")),
            &config,
            |b, cfg| b.iter(|| black_box(generate_corpus(&kb, cfg)).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("extraction", format!("r{realizations}({sentences}s)")),
            &corpus,
            |b, corpus| b.iter(|| black_box(extract_occurrences(&kb, corpus)).len()),
        );
        let occurrences = extract_occurrences(&kb, &corpus);
        group.bench_with_input(
            BenchmarkId::new("store_build", format!("r{realizations}({sentences}s)")),
            &occurrences,
            |b, occ| b.iter(|| black_box(PatternStore::from_occurrences(occ)).pattern_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("full_mine", format!("r{realizations}")),
            &config,
            |b, cfg| b.iter(|| black_box(mine(&kb, cfg)).occurrences),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
