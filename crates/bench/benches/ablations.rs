//! Ablation latency benches: what each design ingredient costs in runtime.
//! (Quality impact is measured by `repro-ablations`; this bench shows the
//! *time* side of each trade-off on the same configurations.)

use relpat_bench::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use relpat_eval::ablation_suite;
use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_patterns::{mine, CorpusConfig};
use relpat_qa::Pipeline;
use std::sync::OnceLock;

const QUESTIONS: &[&str] = &[
    "Which book is written by Orhan Pamuk?",
    "Where did Abraham Lincoln die?",
    "How tall is Michael Jordan?",
    "Who is the wife of Barack Obama?",
];

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::default()))
}

fn bench_ablations(c: &mut Criterion) {
    let kb = kb();
    let mined = mine(kb, &CorpusConfig::default());
    let mut pipeline =
        Pipeline::with_pattern_store(kb, mined.store, relpat_qa::PipelineConfig::standard());

    let mut group = c.benchmark_group("ablation_latency");
    group.sample_size(20);
    for ablation in ablation_suite() {
        // Skip redundant threshold points to keep bench time sane.
        if ablation.name.starts_with("A4") && ablation.name != "A4-sim-0.70" {
            continue;
        }
        pipeline.set_config(ablation.config.clone());
        group.bench_with_input(
            BenchmarkId::from_parameter(ablation.name),
            &pipeline,
            |b, p| {
                b.iter(|| {
                    for q in QUESTIONS {
                        black_box(p.answer(q).is_answered());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
