//! Perf P6: lexical candidate lookup throughput — entity-pool and
//! property-candidate lookups/second with the lexical index against the
//! brute-force scan, on the Table-2 KB. Also reports the index's
//! pruned-vs-scored ratio and asserts the two paths return identical
//! candidates (the same guarantee CI enforces via the equivalence test).
//! The numbers land in EXPERIMENTS.md ("Mapping lookup throughput").
//!
//! Run with: `cargo bench -p relpat-bench --bench qa_mapping_throughput`
//!
//! Flags:
//! - `--smoke` — tiny KB and a single round (CI-friendly); without it, the
//!   default KB and best-of-5 rounds.

use relpat_kb::{generate, qald_questions, KbConfig, KnowledgeBase};
use relpat_obs::fx::FxHashMap;
use relpat_obs::Rng;
use relpat_patterns::{mine, CorpusConfig};
use relpat_qa::{similar_property_pairs, Mapper, MappingConfig, PredKind, PropertyCandidate};
use relpat_rdf::Iri;
use relpat_wordnet::embedded;
use std::time::Instant;

/// Fuzzy entity mentions: KB labels with one character dropped, so the
/// exact-label fast path misses and the similarity scan really runs.
fn fuzzy_mentions(kb: &KnowledgeBase, n: usize, rng: &mut Rng) -> Vec<String> {
    let mut labels: Vec<&str> = kb.labels_iter().map(|(l, _)| l).collect();
    labels.sort_unstable();
    let mut mentions = Vec::with_capacity(n);
    for i in 0..n {
        let label = labels[(i * 7919) % labels.len()];
        let chars: Vec<char> = label.chars().collect();
        if chars.len() < 3 {
            mentions.push(label.to_string());
            continue;
        }
        let drop = rng.gen_range(0usize..chars.len());
        mentions.push(
            chars
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != drop)
                .map(|(_, c)| c)
                .collect(),
        );
    }
    mentions
}

/// Predicate-word workload: every ontology name/label word plus the
/// alphabetic tokens of the QALD questions.
fn predicate_words(kb: &KnowledgeBase) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    for (name, label) in kb
        .ontology
        .object_properties
        .iter()
        .map(|p| (p.name, p.label))
        .chain(kb.ontology.data_properties.iter().map(|p| (p.name, p.label)))
    {
        words.push(name.to_string());
        words.extend(label.split_whitespace().map(str::to_string));
    }
    for q in qald_questions(kb) {
        words.extend(
            q.text
                .split(|c: char| !c.is_alphabetic())
                .filter(|w| w.len() > 2)
                .map(str::to_lowercase),
        );
    }
    words.sort();
    words.dedup();
    words
}

/// One full pass over both workloads; returns the outputs for equivalence
/// checking (entity pools + property candidates, in workload order).
fn run_workload(
    mapper: &Mapper<'_>,
    mentions: &[String],
    words: &[String],
) -> (Vec<Vec<Iri>>, Vec<Vec<PropertyCandidate>>) {
    let pools = mentions.iter().map(|m| mapper.entity_pool(m)).collect();
    let cands = words
        .iter()
        .flat_map(|w| {
            [PredKind::Verb, PredKind::Noun].map(|kind| mapper.property_candidates(w, w, kind))
        })
        .collect();
    (pools, cands)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (config, rounds) = if smoke { (KbConfig::tiny(), 1) } else { (KbConfig::default(), 5) };

    println!("=== QA mapping lookup throughput ({}) ===\n", if smoke { "smoke" } else { "full" });
    let kb = generate(&config);
    let mined = mine(&kb, &CorpusConfig::default());
    let pairs: FxHashMap<String, Vec<(String, f64)>> = similar_property_pairs(&kb, embedded());
    let mapper_with = |use_lexical_index: bool| Mapper {
        kb: &kb,
        wordnet: embedded(),
        patterns: &mined.store,
        similar_pairs: &pairs,
        config: MappingConfig { use_lexical_index, ..MappingConfig::default() },
    };

    let mut rng = Rng::seed_from_u64(0x10CA1);
    let mentions = fuzzy_mentions(&kb, if smoke { 40 } else { 400 }, &mut rng);
    let words = predicate_words(&kb);
    let lookups = mentions.len() + 2 * words.len();
    let ix = kb.lexical().stats();
    println!(
        "Knowledge base: {} labeled entities; workload: {} fuzzy mentions + {} predicate words ({lookups} lookups/round)",
        kb.entity_count(),
        mentions.len(),
        words.len()
    );
    println!(
        "Index: {} entity + {} property entries, {} units, {} bigram postings, {} exact words\n",
        ix.entity_entries, ix.property_entries, ix.units, ix.bigram_postings, ix.exact_words
    );

    // Equivalence spot check before timing: same candidates both ways.
    let indexed = mapper_with(true);
    let brute = mapper_with(false);
    assert_eq!(
        run_workload(&indexed, &mentions, &words),
        run_workload(&brute, &mentions, &words),
        "index and brute-force candidates diverged"
    );

    let mut baseline = None;
    for (name, mapper) in [("brute-force", &brute), ("lexical index", &indexed)] {
        let stats_before = kb.lexical().lookup_stats();
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            let out = run_workload(mapper, &mentions, &words);
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        let per_sec = lookups as f64 / best;
        let speedup = match baseline {
            None => {
                baseline = Some(best);
                String::new()
            }
            Some(b) => format!("  ({:.1}x vs brute force)", b / best),
        };
        println!("{name:<14} best of {rounds}: {best:>8.3} s  {per_sec:>10.0} lookups/s{speedup}");
        let d = kb.lexical().lookup_stats().delta_since(&stats_before);
        if d.probed > 0 {
            println!(
                "               index: {} units probed, {} pruned by bounds ({:.1}%), {} entries scored",
                d.probed,
                d.pruned,
                d.prune_rate() * 100.0,
                d.scored
            );
        }
    }
}
