//! Perf P1: NLP substrate throughput — tokenizer, tagger, dependency parser.
//!
//! The paper's pipeline calls Stanford CoreNLP once per question; our
//! substitute must be fast enough that parsing never dominates end-to-end
//! latency. Reports per-question cost of each layer.

use relpat_bench::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use relpat_nlp::{parse, parse_sentence, tag, tag_sentence, tokenize};

fn question_batch() -> Vec<&'static str> {
    vec![
        "Which book is written by Orhan Pamuk?",
        "What is the height of Michael Jordan?",
        "How tall is Michael Jordan?",
        "Where did Abraham Lincoln die?",
        "Who directed Titanic?",
        "Which films did James Cameron direct?",
        "Give me all books written by Orhan Pamuk.",
        "When was Albert Einstein born?",
        "Who is the wife of Barack Obama?",
        "Is Frank Herbert still alive?",
        "In which city was Ludwig van Beethoven born?",
        "How many people live in Turkey?",
    ]
}

fn bench_nlp(c: &mut Criterion) {
    let questions = question_batch();
    let mut group = c.benchmark_group("nlp");
    group.throughput(Throughput::Elements(questions.len() as u64));

    group.bench_function("tokenize", |b| {
        b.iter(|| {
            for q in &questions {
                black_box(tokenize(q));
            }
        })
    });

    group.bench_function("tag", |b| {
        b.iter(|| {
            for q in &questions {
                black_box(tag_sentence(q));
            }
        })
    });

    let tagged: Vec<_> = questions.iter().map(|q| tag(&tokenize(q))).collect();
    group.bench_function("parse_only", |b| {
        b.iter(|| {
            for t in &tagged {
                black_box(parse(t.clone()));
            }
        })
    });

    group.bench_function("full_parse", |b| {
        b.iter(|| {
            for q in &questions {
                black_box(parse_sentence(q));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nlp);
criterion_main!(benches);
