//! Perf P6: instrumentation overhead — per-record cost of the obs
//! primitives the serving plane leans on, so a regression in the
//! measurement layer itself is caught the same way a QA throughput
//! regression is.
//!
//! Six axes:
//! - counter add, registry enabled vs disabled;
//! - histogram record, registry enabled vs disabled;
//! - journal event emit, enabled (ring only) vs disabled;
//! - journal event emit with the JSONL file backend attached;
//! - SPARQL execution with EXPLAIN ANALYZE plan tracing on vs off — the
//!   explain-off path must stay within noise of the pre-trace executor;
//! - a span-instrumented workload with the continuous-profiling sampler
//!   off vs on at the serving rate (997 Hz) — the target is <2% overhead,
//!   since relpat-serve runs with the sampler on by default.
//!
//! Run with: `cargo bench -p relpat-bench --bench obs_overhead`
//!
//! Flags:
//! - `--smoke` — fewer iterations (CI-friendly); functional assertions
//!   (counts, not timings) still run.

use std::hint::black_box;
use std::time::Instant;

use relpat_obs::{EventJournal, Level, MetricsRegistry};

/// Best-of-`rounds` per-op cost in nanoseconds.
fn per_op(rounds: usize, n: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for i in 0..n {
            f(i);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, n_atomic, n_journal) =
        if smoke { (1, 1_000_000u64, 100_000u64) } else { (3, 20_000_000u64, 2_000_000u64) };
    println!("=== Observability overhead ({}) ===\n", if smoke { "smoke" } else { "full" });

    // Counters / histograms: the qa.* span path.
    let enabled = MetricsRegistry::new();
    let disabled = MetricsRegistry::disabled();
    let c_on = enabled.counter("bench.counter");
    let c_off = disabled.counter("bench.counter");
    let h_on = enabled.histogram("bench.histogram");
    let h_off = disabled.histogram("bench.histogram");

    let counter_on = per_op(rounds, n_atomic, |_| c_on.add(1));
    let counter_off = per_op(rounds, n_atomic, |_| c_off.add(1));
    // Spread values across buckets so branch prediction sees real traffic.
    let hist_on = per_op(rounds, n_atomic, |i| h_on.record(black_box(i & 0xf_ffff)));
    let hist_off = per_op(rounds, n_atomic, |i| h_off.record(black_box(i & 0xf_ffff)));

    println!("counter.add      enabled {counter_on:>7.2} ns/op   disabled {counter_off:>7.2} ns/op");
    println!("histogram.record enabled {hist_on:>7.2} ns/op   disabled {hist_off:>7.2} ns/op");

    // Journal: ring-only, disabled, and with the file backend attached.
    let emit = |journal: &EventJournal, i: u64| {
        // Mirrors the jevent! macro: the enabled check guards field
        // construction, so the disabled path allocates nothing.
        if journal.is_enabled() {
            journal.emit(
                Level::Debug,
                "bench.stage",
                vec![("i".to_string(), i.to_string())],
            );
        }
    };

    let ring = EventJournal::new(4096);
    let journal_ring = per_op(rounds, n_journal, |i| emit(&ring, i));
    assert_eq!(ring.emitted(), rounds as u64 * n_journal, "ring journal lost events");

    let off = EventJournal::new(4096);
    off.set_enabled(false);
    let journal_off = per_op(rounds, n_journal, |i| emit(&off, i));
    assert_eq!(off.emitted(), 0, "disabled journal must drop everything");

    let path = std::env::temp_dir().join(format!("obs_overhead_{}.jsonl", std::process::id()));
    let file = EventJournal::new(4096);
    file.attach_file(&path).expect("attach journal file");
    let journal_file = per_op(rounds, n_journal, |i| emit(&file, i));
    file.flush();
    let written = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let _ = std::fs::remove_file(&path);
    assert!(written > 0, "file backend wrote nothing");

    println!("journal.emit     enabled {journal_ring:>7.2} ns/op   disabled {journal_off:>7.2} ns/op");
    println!("journal.emit     +file   {journal_file:>7.2} ns/op   ({written} bytes JSONL)");

    // EXPLAIN ANALYZE: plan tracing on vs off over a fixed two-pattern
    // join. The off path threads `None` through the executor and must not
    // pay for the trace machinery.
    let graph = plan_bench_graph();
    let query =
        relpat_sparql::parse_query("SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author ?a }")
            .expect("bench query parses");
    let n_exec = if smoke { 2_000u64 } else { 50_000u64 };
    let explain_off = per_op(rounds, n_exec, |_| {
        black_box(relpat_sparql::execute(&graph, &query).expect("execute"));
    });
    let explain_on = per_op(rounds, n_exec, |_| {
        black_box(relpat_sparql::execute_traced(&graph, &query).expect("execute traced"));
    });
    println!("sparql.execute   explain-off {explain_off:>9.2} ns/op   explain-on {explain_on:>9.2} ns/op");

    // Traced and untraced executions agree, and the trace carries real
    // per-step measurements.
    let plain = relpat_sparql::execute(&graph, &query).unwrap();
    let (traced, trace) = relpat_sparql::execute_traced(&graph, &query).unwrap();
    assert_eq!(plain, traced, "explain must not change results");
    assert_eq!(trace.steps.len(), 2, "two join steps expected");
    assert!(trace.rows_scanned() > 0, "trace lost scan counts");

    // Continuous profiler: a span!-instrumented unit of work (the shape of
    // one question: an outer span, three stage spans, real compute inside)
    // with the sampler off, then on at the default serving rate. The
    // sampler runs on its own thread; the owner-side cost is two relaxed
    // stores per push plus a depth restore per pop, so the workload delta
    // is the number the serving plane actually pays.
    // Span density matters: the overhead is per push/pop, so it must be
    // weighed against stage-sized compute (a real stage runs µs–ms, not
    // ns). ~2 µs of work per 4 spans is still 10–100x more span-dense
    // than the live pipeline, making the printed figure an upper bound.
    let workload = |i: u64| {
        let _q = relpat_obs::span!("bench.prof.total");
        let mut acc = i;
        for name in ["bench.prof.extract", "bench.prof.map", "bench.prof.answer"] {
            let _s = relpat_obs::span!(name);
            for k in 0..2_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            black_box(acc);
        }
    };
    let n_prof = if smoke { 20_000u64 } else { 200_000u64 };
    let prof = relpat_obs::profiler();
    assert!(!prof.is_enabled(), "sampler must start disabled");
    workload(0); // warm: intern tags, register handles
    let sampler_off = per_op(rounds.max(3), n_prof, workload);

    // Full serving configuration: sampler at 997 Hz. On a single-core box
    // this number folds in the sampler thread's own CPU (two context
    // switches per tick), which production serving pays on another core.
    prof.enable(relpat_obs::prof::DEFAULT_HZ);
    workload(0); // warm: register this thread's stack
    let sampler_997 = per_op(rounds.max(3), n_prof, workload);
    let (samples, _dropped) = prof.counters();
    assert!(samples > 0, "sampler took no samples during the on-phase");

    // Sampler quiescent (1 Hz): isolates the owner-side push/pop cost —
    // the only part a request's latency pays when cores are available.
    prof.enable(1);
    let sampler_idle = per_op(rounds.max(3), n_prof, workload);
    prof.disable();

    let overhead_997 = (sampler_997 / sampler_off - 1.0) * 100.0;
    let overhead_owner = (sampler_idle / sampler_off - 1.0) * 100.0;
    println!(
        "prof.sampler     off {sampler_off:>11.2} ns/op   on (997 Hz) {sampler_997:>6.2} ns/op   \
         overhead {overhead_997:>+5.2}%"
    );
    println!(
        "prof.push/pop    owner-side cost {:>+7.2} ns/op ({overhead_owner:>+5.2}%) at 4 spans/op",
        sampler_idle - sampler_off
    );
    // Target <2% owner-side; the assertion bounds are deliberately loose
    // because best-of-N on a shared CI box still jitters by whole percents
    // — the printed figures are the honest numbers, the bounds only catch
    // a pathological sampler (e.g. one that stops the world).
    assert!(
        overhead_owner < 25.0,
        "owner-side span overhead {overhead_owner:.1}% — far past the <2% design target"
    );
    assert!(
        overhead_997 < 50.0,
        "sampler-on overhead {overhead_997:.1}% — the sampler is stalling the workload"
    );

    // Functional floor for the smoke gate: enabled paths actually recorded.
    let snapshot = enabled.snapshot();
    let total: u64 = rounds as u64 * n_atomic;
    assert_eq!(
        snapshot.counters.iter().find(|(name, _)| name == "bench.counter").map(|(_, v)| *v),
        Some(total),
        "enabled counter lost increments"
    );
    let hist = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "bench.histogram")
        .expect("histogram in snapshot");
    assert_eq!(hist.count, total, "enabled histogram lost records");
    assert_eq!(hist.min, 0, "min must track the smallest observation");
    println!("\nok: counts verified ({total} records per primitive)");
}

/// A small fixed graph: 32 books with authors plus link noise, enough that
/// the two-pattern bench join does real scan work per execution.
fn plan_bench_graph() -> relpat_rdf::Graph {
    use relpat_rdf::vocab::{dbont, rdf, res};
    use relpat_rdf::{Graph, Term};
    let mut g = Graph::new();
    for i in 0..32 {
        let book = Term::iri(res::iri(&format!("Book_{i}")));
        let author = Term::iri(res::iri(&format!("Author_{}", i % 8)));
        g.add(book.clone(), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book")));
        g.add(book.clone(), Term::iri(dbont::iri("author")), author.clone());
        g.add(book, Term::iri(relpat_rdf::vocab::WIKI_PAGE_LINK), author);
    }
    g.freeze();
    g
}
