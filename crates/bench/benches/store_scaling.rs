//! Perf P2: triple-store load time and SPARQL latency vs knowledge-base
//! size. Generates the synthetic DBpedia along the tier ladder in
//! [`relpat_bench::scaling`] — paper scale (~9.6k triples), 100k and 1M —
//! and measures the representative query shapes the QA pipeline emits.
//!
//! `--smoke` (the ci.sh gate) stops at the 100k tier and trims sample
//! counts so the whole bench finishes in seconds:
//! `cargo bench -p relpat-bench --bench store_scaling -- --smoke`
//!
//! Queries run uncached ([`relpat_kb::Kb::query_uncached`]): this bench
//! tracks the store's join latency, which the result cache would hide.

use relpat_bench::scaling::{QUERIES, SMOKE_TIERS, TIERS};
use relpat_bench::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relpat_kb::{generate, KbConfig, DEFAULT_KB_FINGERPRINT};

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_scaling");
    group.sample_size(if smoke() { 5 } else { 20 });

    let tiers = if smoke() { SMOKE_TIERS } else { TIERS };
    for &factor in tiers {
        let config = KbConfig::scaled(factor);
        let kb = generate(&config);
        let triples = kb.len() as u64;
        if factor == 1 {
            // The smoke gate doubles as the generator's byte-identity guard:
            // scaled(1) == default config, so its fingerprint is pinned.
            assert_eq!(
                kb.fingerprint(),
                DEFAULT_KB_FINGERPRINT,
                "default-scale KB drifted from the pinned fingerprint"
            );
        }

        group.throughput(Throughput::Elements(triples));
        // Re-generating the 100k/1M KBs per sample would dominate the run;
        // their one-off build cost is tracked by `repro-profile --bench-json`
        // (the BENCH_store_scaling.json trajectory), so the in-loop generate
        // measurement stays at paper scale.
        if factor <= 4 {
            group.bench_with_input(
                BenchmarkId::new("generate", format!("x{factor}({triples}t)")),
                &config,
                |b, cfg| b.iter(|| black_box(generate(cfg)).len()),
            );
        }

        for (name, query) in QUERIES {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("x{factor}({triples}t)")),
                &kb,
                |b, kb| {
                    b.iter(|| {
                        black_box(kb.query_uncached(query).expect("query runs"));
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
