//! Perf P2: triple-store load time and SPARQL latency vs knowledge-base
//! size. Generates the synthetic DBpedia at growing scales and measures
//! representative query shapes (the ones the QA pipeline emits).

use relpat_bench::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relpat_kb::{generate, KbConfig};

const QUERIES: &[(&str, &str)] = &[
    (
        "class_scan",
        "SELECT ?x { ?x rdf:type dbont:Book }",
    ),
    (
        "paper_join",
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }",
    ),
    (
        "subject_lookup",
        "SELECT ?h { res:Michael_Jordan dbont:height ?h }",
    ),
    (
        "filtered",
        "SELECT ?c { ?c rdf:type dbont:City . ?c dbont:populationTotal ?p FILTER(?p > 3000000) }",
    ),
    (
        "ask",
        "ASK { res:Snow dbont:author res:Orhan_Pamuk }",
    ),
];

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_scaling");
    group.sample_size(20);

    for factor in [1usize, 2, 4] {
        let config = KbConfig::scaled(factor);
        let kb = generate(&config);
        let triples = kb.len() as u64;

        group.throughput(Throughput::Elements(triples));
        group.bench_with_input(
            BenchmarkId::new("generate", format!("x{factor}({triples}t)")),
            &config,
            |b, cfg| b.iter(|| black_box(generate(cfg)).len()),
        );

        for (name, query) in QUERIES {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("x{factor}({triples}t)")),
                &kb,
                |b, kb| {
                    b.iter(|| {
                        black_box(kb.query(query).expect("query runs"));
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
