//! Perf P5: batch QA serving throughput — questions/second for
//! `Pipeline::answer_batch_with` at 1, 2, and N worker threads over the
//! QALD evaluated subset, plus the SPARQL query-cache hit rate the batch
//! observed. The numbers land in EXPERIMENTS.md ("Batch serving
//! throughput").
//!
//! Run with: `cargo bench -p relpat-bench --bench qa_batch_throughput`
//!
//! Flags:
//! - `--smoke` — tiny KB and a single round (CI-friendly, seconds not
//!   minutes); without it, the default KB and best-of-5 rounds.

use relpat_kb::{evaluated_subset, generate, qald_questions, KbConfig};
use relpat_qa::Pipeline;
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (config, rounds) = if smoke { (KbConfig::tiny(), 1) } else { (KbConfig::default(), 5) };

    println!("=== QA batch serving throughput ({}) ===\n", if smoke { "smoke" } else { "full" });
    let kb = generate(&config);
    let pipeline = Pipeline::new(&kb);
    let questions = qald_questions(&kb);
    let subset = evaluated_subset(&questions);
    let texts: Vec<&str> = subset.iter().map(|q| q.text.as_str()).collect();
    println!("Knowledge base: {} triples; batch: {} questions", kb.len(), texts.len());

    // Warm pass: mines patterns lazily if needed and fills the SPARQL query
    // cache, so every timed round sees the same steady-state cache.
    let warm_start = kb.cache_stats();
    pipeline.answer_batch_with(&texts, 1);
    let after_warm = kb.cache_stats();

    let hardware = std::thread::available_parallelism().map(usize::from).unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, 4.max(hardware.min(8))];
    thread_counts.dedup();

    let mut baseline = None;
    for &threads in &thread_counts {
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            let responses = pipeline.answer_batch_with(&texts, threads);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(responses.len(), texts.len());
            best = best.min(elapsed);
        }
        let qps = texts.len() as f64 / best;
        let speedup = match baseline {
            None => {
                baseline = Some(qps);
                1.0
            }
            Some(b) => qps / b,
        };
        println!(
            "threads={threads:<2}  best of {rounds}: {best:>8.3} s  {qps:>8.1} questions/s  ({speedup:.2}x vs 1 thread)",
        );
    }

    let steady = kb.cache_stats().delta_since(&after_warm);
    let warm_delta = after_warm.delta_since(&warm_start);
    println!(
        "\nSPARQL query cache: warm pass {} hits / {} misses; timed rounds {} hits / {} misses (hit rate {:.1}%)",
        warm_delta.hits,
        warm_delta.misses,
        steady.hits,
        steady.misses,
        steady.hit_rate() * 100.0
    );
}
