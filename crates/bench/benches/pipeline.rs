//! Perf P4: end-to-end QA latency per stage — triple extraction (§2.1),
//! mapping (§2.2), query construction + answer extraction (§2.3) — and the
//! full pipeline against both baselines.

use relpat_bench::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_patterns::{mine, CorpusConfig};
use relpat_qa::{
    build_queries, extract, similar_property_pairs, KeywordBaseline, Mapper, MappingConfig,
    Pipeline, PipelineConfig, TemplateBaseline,
};
use relpat_wordnet::embedded;
use std::sync::OnceLock;

const QUESTIONS: &[&str] = &[
    "Which book is written by Orhan Pamuk?",
    "What is the height of Michael Jordan?",
    "Where did Abraham Lincoln die?",
    "Who directed Titanic?",
    "When was Albert Einstein born?",
    "What is the capital of Turkey?",
];

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::default()))
}

fn bench_stages(c: &mut Criterion) {
    let kb = kb();
    let mined = mine(kb, &CorpusConfig::default());
    let pairs = similar_property_pairs(kb, embedded());
    let mapper = Mapper {
        kb,
        wordnet: embedded(),
        patterns: &mined.store,
        similar_pairs: &pairs,
        config: MappingConfig::default(),
    };

    let mut group = c.benchmark_group("pipeline_stages");
    group.throughput(Throughput::Elements(QUESTIONS.len() as u64));

    group.bench_function("extract", |b| {
        b.iter(|| {
            for q in QUESTIONS {
                black_box(extract(&relpat_nlp::parse_sentence(q)));
            }
        })
    });

    let analyses: Vec<_> = QUESTIONS
        .iter()
        .map(|q| extract(&relpat_nlp::parse_sentence(q)).expect("covered question"))
        .collect();
    group.bench_function("map", |b| {
        b.iter(|| {
            for a in &analyses {
                black_box(mapper.map(a));
            }
        })
    });

    let mapped: Vec<_> = analyses.iter().map(|a| mapper.map(a).expect("mapped")).collect();
    group.bench_function("build_queries", |b| {
        b.iter(|| {
            for (a, m) in analyses.iter().zip(mapped.iter()) {
                black_box(build_queries(kb, a, m, 50));
            }
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let kb = kb();
    let pipeline = Pipeline::new(kb);
    let parallel = Pipeline::with_config(
        kb,
        PipelineConfig {
            answer: relpat_qa::AnswerConfig { parallel: true, ..Default::default() },
            ..PipelineConfig::standard()
        },
    );
    let keyword = KeywordBaseline::new(kb);
    let template = TemplateBaseline::new(kb);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(30);
    group.throughput(Throughput::Elements(QUESTIONS.len() as u64));

    group.bench_function("relpat", |b| {
        b.iter(|| {
            for q in QUESTIONS {
                black_box(pipeline.answer(q).is_answered());
            }
        })
    });
    group.bench_function("relpat_parallel_queries", |b| {
        b.iter(|| {
            for q in QUESTIONS {
                black_box(parallel.answer(q).is_answered());
            }
        })
    });
    group.bench_function("baseline_keyword", |b| {
        b.iter(|| {
            for q in QUESTIONS {
                black_box(keyword.answer(q).is_some());
            }
        })
    });
    group.bench_function("baseline_template", |b| {
        b.iter(|| {
            for q in QUESTIONS {
                black_box(template.answer(q).is_some());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_end_to_end);
criterion_main!(benches);
