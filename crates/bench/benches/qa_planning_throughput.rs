//! Perf P7: query-planning throughput — plans/second for the beam planner
//! against the full cartesian product, over synthetic candidate lattices of
//! increasing width plus the real Table-2 mapped questions. Reports the
//! planner's expanded/pruned/emitted accounting and asserts both strategies
//! emit identical ranked query lists before timing (the same guarantee CI
//! enforces via the `planning_equivalence` test).
//! The numbers land in EXPERIMENTS.md ("Query planning throughput").
//!
//! Run with: `cargo bench -p relpat-bench --bench qa_planning_throughput`
//!
//! Flags:
//! - `--smoke` — tiny KB and a single round (CI-friendly); without it, the
//!   default KB and best-of-5 rounds.

use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_obs::Rng;
use relpat_qa::{
    build_queries_planned, extract, CandidateSource, MappedQuestion, MappedSlot, MappedTriple,
    PlanStats, PlannerStrategy, PropertyCandidate, QuestionAnalysis, ResolvedEntity,
};
use std::time::Instant;

/// One planning job: a mapped question plus its ranked-output cap.
struct Job {
    mapped: MappedQuestion,
    max: usize,
}

/// Synthetic lattices: `sets` relation triples with `width` candidates
/// each, weights drawn to force re-ranking work (negatives and ties mixed
/// in, mirroring pattern-weight normalization output).
fn lattice(kb: &KnowledgeBase, entity: &ResolvedEntity, sets: usize, width: usize, rng: &mut Rng) -> MappedQuestion {
    let props: Vec<&str> = kb.ontology.object_properties.iter().map(|p| p.name).collect();
    let triples = (0..sets)
        .map(|_| MappedTriple::Relation {
            subject: MappedSlot::Var,
            object: MappedSlot::Entity(entity.clone()),
            candidates: (0..width)
                .map(|_| PropertyCandidate {
                    property: props[rng.gen_range(0usize..props.len())].to_string(),
                    is_data: false,
                    preferred_inverse: match rng.gen_range(0u32..3) {
                        0 => None,
                        1 => Some(false),
                        _ => Some(true),
                    },
                    weight: rng.gen_range(0u32..40) as f64 - 15.0,
                    source: CandidateSource::RelationalPattern,
                })
                .collect(),
        })
        .collect();
    MappedQuestion { triples }
}

fn workload(kb: &KnowledgeBase, plans: usize, rng: &mut Rng) -> Vec<Job> {
    // A deterministic anchor entity: the first labeled resource.
    let (label, iris) = {
        let mut labels: Vec<(&str, &[relpat_rdf::Iri])> = kb.labels_iter().collect();
        labels.sort_unstable_by_key(|(l, _)| *l);
        labels[0]
    };
    let entity = ResolvedEntity { iri: iris[0].clone(), label: label.to_string(), score: 1.0 };
    // Lattice shapes from narrow (typical QALD question) to wide (where the
    // cartesian product materializes hundreds of combinations).
    let shapes = [(1, 4), (2, 4), (2, 8), (3, 6), (3, 10)];
    (0..plans)
        .map(|i| {
            let (sets, width) = shapes[i % shapes.len()];
            Job {
                mapped: lattice(kb, &entity, sets, width, rng),
                max: rng.gen_range(1usize..=20),
            }
        })
        .collect()
}

/// Plans every job under one strategy; returns the aggregate accounting and
/// total queries emitted (kept for the pre-timing equivalence check).
fn run_jobs(
    kb: &KnowledgeBase,
    analysis: &QuestionAnalysis,
    jobs: &[Job],
    strategy: PlannerStrategy,
) -> (PlanStats, Vec<Vec<relpat_qa::BuiltQuery>>) {
    let mut total = PlanStats::default();
    let mut outputs = Vec::with_capacity(jobs.len());
    for job in jobs {
        let (queries, stats) = build_queries_planned(kb, analysis, &job.mapped, job.max, strategy);
        total.expanded += stats.expanded;
        total.pruned += stats.pruned;
        total.emitted += stats.emitted;
        outputs.push(queries);
    }
    (total, outputs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (config, rounds, plans) =
        if smoke { (KbConfig::tiny(), 1, 200) } else { (KbConfig::default(), 5, 2000) };

    println!("=== QA query planning throughput ({}) ===\n", if smoke { "smoke" } else { "full" });
    let kb = generate(&config);
    let analysis = extract(&relpat_nlp::parse_sentence("Which book is written by Orhan Pamuk?"))
        .expect("analysis");
    let mut rng = Rng::seed_from_u64(0x91A7);
    let jobs = workload(&kb, plans, &mut rng);
    println!(
        "Workload: {} plans over candidate lattices up to 3 sets x 10 options ({} object properties)\n",
        jobs.len(),
        kb.ontology.object_properties.len()
    );

    // Equivalence check before timing: identical ranked lists both ways.
    let (_, beam_out) = run_jobs(&kb, &analysis, &jobs, PlannerStrategy::Beam);
    let (_, cart_out) = run_jobs(&kb, &analysis, &jobs, PlannerStrategy::CartesianExhaustive);
    for (i, (b, c)) in beam_out.iter().zip(cart_out.iter()).enumerate() {
        assert_eq!(b.len(), c.len(), "plan {i}: lengths diverged");
        for (x, y) in b.iter().zip(c.iter()) {
            assert_eq!(x.sparql, y.sparql, "plan {i}: queries diverged");
            assert_eq!(
                x.score.total_cmp(&y.score),
                std::cmp::Ordering::Equal,
                "plan {i}: scores diverged"
            );
        }
    }
    drop((beam_out, cart_out));

    let mut baseline = None;
    for (name, strategy) in [
        ("cartesian", PlannerStrategy::CartesianExhaustive),
        ("beam", PlannerStrategy::Beam),
    ] {
        let mut best = f64::INFINITY;
        let mut stats = PlanStats::default();
        for _ in 0..rounds {
            let start = Instant::now();
            let (s, out) = run_jobs(&kb, &analysis, &jobs, strategy);
            best = best.min(start.elapsed().as_secs_f64());
            stats = s;
            std::hint::black_box(out);
        }
        let per_sec = jobs.len() as f64 / best;
        let speedup = match baseline {
            None => {
                baseline = Some(best);
                String::new()
            }
            Some(b) => format!("  ({:.1}x vs cartesian)", b / best),
        };
        println!("{name:<10} best of {rounds}: {best:>8.3} s  {per_sec:>10.0} plans/s{speedup}");
        println!(
            "           qa.plan: {} expanded, {} pruned, {} emitted",
            stats.expanded, stats.pruned, stats.emitted
        );
    }
}
