//! Reproduces **Table 1** of the paper: expected answer types per question
//! word, and verifies each mapping empirically against the knowledge base's
//! class taxonomy by running one probe question per row through the
//! pipeline's type checker.
//!
//! Run with: `cargo run --release -p relpat-bench --bin repro-table1`

use relpat_kb::{generate, KbConfig};
use relpat_qa::{type_check, ExpectedType, QuestionKind};
use relpat_rdf::vocab::res;
use relpat_rdf::{Iri, Literal, Term};

fn main() {
    println!("=== Table 1 reproduction: expected answer types ===\n");
    println!("| Question Type | Expected answer type |");
    println!("|---|---|");
    let rows: &[(QuestionKind, &str, &str)] = &[
        (QuestionKind::Who, "Who", "Person, Organization, Company"),
        (QuestionKind::Where, "Where", "Place"),
        (QuestionKind::When, "When", "Date"),
        (QuestionKind::HowMany, "How many", "Numeric"),
    ];
    for (kind, word, types) in rows {
        let expected = ExpectedType::for_kind(*kind);
        println!("| {word} | {types} ({expected:?}) |");
    }
    println!();
    println!(
        "'Which' questions are constrained by the extracted rdf:type triple\n\
         instead of a type check ({:?}), as the paper notes.\n",
        ExpectedType::for_kind(QuestionKind::WhichClass)
    );

    // Empirical verification against the KB.
    let kb = generate(&KbConfig::default());
    let person = Term::Iri(Iri::new(res::iri("Orhan Pamuk")));
    let place = Term::Iri(Iri::new(res::iri("Ankara")));
    let date = Term::Literal(Literal::date(1952, 6, 7));
    let number = Term::Literal(Literal::double(1.98));

    println!("Verification against the synthetic DBpedia:");
    let checks: &[(&str, &Term, ExpectedType, bool)] = &[
        ("Who ← writer entity", &person, ExpectedType::PersonOrOrganization, true),
        ("Who ← city entity", &place, ExpectedType::PersonOrOrganization, false),
        ("Where ← city entity", &place, ExpectedType::Place, true),
        ("Where ← person entity", &person, ExpectedType::Place, false),
        ("When ← xsd:date literal", &date, ExpectedType::Date, true),
        ("When ← numeric literal", &number, ExpectedType::Date, false),
        ("How many ← numeric literal", &number, ExpectedType::Numeric, true),
        ("How many ← date literal", &date, ExpectedType::Numeric, false),
    ];
    let mut ok = true;
    for (label, term, expected, want) in checks {
        let got = type_check(&kb, term, *expected);
        let mark = if got == *want { "ok " } else { "FAIL" };
        ok &= got == *want;
        println!("  [{mark}] {label}: accepted={got} (expected {want})");
    }
    println!("\nTable 1 verification: {}", if ok { "ALL ROWS HOLD" } else { "MISMATCH" });
}
