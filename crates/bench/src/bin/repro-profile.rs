//! Profiles one full QALD benchmark run through the observability layer
//! (`relpat-obs`): per-stage latency percentiles, pipeline counters, the
//! process-global metrics snapshot, and one complete per-question trace.
//!
//! Run with: `cargo run --release -p relpat-bench --bin repro-profile`
//!
//! Flags:
//! - `--trace "<question>"` — trace this question instead of the default
//!   Figure-1 question;
//! - `--json <path>` — also write the full report JSON (counts +
//!   observability block + per-question results) to `path`;
//! - `--prom <path>` — dump the process-global metrics as Prometheus text
//!   exposition v0.0.4 (the exact renderer behind `relpat-serve`'s
//!   `GET /metrics`, so offline and live output cannot drift);
//! - `--traces <path>` — replay the run through a tail-sampled
//!   `TraceStore` and dump the retained traces as JSONL;
//! - `--plans <path>` — re-answer the Table-2 run with EXPLAIN ANALYZE and
//!   write one JSON object per question (question, stage, plan traces with
//!   planner estimates vs. actual rows scanned, misestimate totals) as
//!   JSONL;
//! - `--bench-json <path>` — skip the QALD profile and instead run the
//!   store-scaling study (the tier ladder in `relpat_bench::scaling`:
//!   paper scale / 100k / 1M triples), writing per-tier triple counts,
//!   build milliseconds and p50/p99 query latencies as JSON. This is how
//!   the committed `BENCH_store_scaling.json` trajectory is regenerated;
//! - `--flame [path]` — loop the Table-2 benchmark under the continuous
//!   profiler for ≥2 s of wall time and print the collapsed-stack profile
//!   (flamegraph-compatible `tag;tag count` lines) plus the per-tag self
//!   -time ranking. With a path, the collapsed text is also written there.
//!   Exits nonzero if the profile comes back empty or the hot tags are not
//!   the pipeline's real hot spots (mapping + SPARQL execution) — this is
//!   the CI proof that the sampler observes the actual workload.

use relpat_bench::scaling;
use relpat_eval::run_benchmark;
use relpat_kb::{generate, qald_questions, KbConfig};
use relpat_obs::{TraceStore, TraceStoreConfig};
use relpat_qa::{Pipeline, Stage};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };

    if let Some(path) = flag_value("--bench-json") {
        run_scaling_study(&path);
        return;
    }
    if args.iter().any(|a| a == "--flame") {
        // `--flame` may be last on the line; its path operand is optional.
        let out_path = flag_value("--flame").filter(|v| !v.starts_with("--"));
        run_flame(out_path.as_deref());
        return;
    }
    let trace_question = flag_value("--trace")
        .unwrap_or_else(|| "Which book is written by Orhan Pamuk?".to_string());
    let json_path = flag_value("--json");

    println!("=== Pipeline profile (observability layer) ===\n");
    let kb = generate(&KbConfig::default());
    println!("Knowledge base: {} triples, {} labeled entities", kb.len(), kb.entity_count());

    let pipeline = Pipeline::new(&kb);
    let questions = qald_questions(&kb);
    let report = run_benchmark(&pipeline, &questions);

    println!(
        "Benchmark: {} questions evaluated, {} answered, {} correct\n",
        report.counts.total, report.counts.answered, report.counts.correct
    );
    println!("--- Stage latency / counters (aggregated from question traces) ---\n");
    println!("{}", report.stats.render());

    let (hits, misses) = (
        report.stats.counter("sparql.cache.hits"),
        report.stats.counter("sparql.cache.misses"),
    );
    let lookups = hits + misses;
    let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 * 100.0 };
    println!("--- SPARQL query cache ---\n");
    println!("{hits} hits / {misses} misses over {lookups} lookups (hit rate {rate:.1}%)\n");

    let ix = kb.lexical().stats();
    println!("--- Lexical candidate index (qa.map.index.*) ---\n");
    println!(
        "shape: {} entity + {} property entries, {} units, {} bigram postings, {} exact words",
        ix.entity_entries, ix.property_entries, ix.units, ix.bigram_postings, ix.exact_words
    );
    let (probed, pruned, scored) = (
        report.stats.counter("map.index.probed"),
        report.stats.counter("map.index.pruned"),
        report.stats.counter("map.index.scored"),
    );
    let prate = if probed == 0 { 0.0 } else { pruned as f64 / probed as f64 * 100.0 };
    println!(
        "this run: {probed} units probed, {pruned} pruned by bounds ({prate:.1}%), {scored} entries scored\n"
    );

    let (expanded, pruned_states, emitted) = (
        report.stats.counter("qa.plan.expanded"),
        report.stats.counter("qa.plan.pruned"),
        report.stats.counter("qa.plan.emitted"),
    );
    println!("--- Query planner (qa.plan.*) ---\n");
    println!(
        "{expanded} lattice states expanded, {pruned_states} pruned unexplored, {emitted} queries emitted\n"
    );

    let (merge, gallop, nested) = (
        report.stats.counter("sparql.join.merge"),
        report.stats.counter("sparql.join.gallop"),
        report.stats.counter("sparql.join.nested"),
    );
    let steps = merge + gallop + nested;
    let share = |n: u64| if steps == 0 { 0.0 } else { n as f64 / steps as f64 * 100.0 };
    println!("--- SPARQL join operators (sparql.join.*) ---\n");
    println!(
        "{steps} join steps: {merge} merge ({:.1}%), {gallop} gallop ({:.1}%), \
         {nested} nested ({:.1}%)\n",
        share(merge),
        share(gallop),
        share(nested)
    );

    println!("--- Process-global metrics snapshot ---\n");
    let snapshot = relpat_obs::global().snapshot();
    println!("{}", snapshot.to_json().to_pretty());

    println!("\n--- Question trace: {trace_question:?} ---\n");
    let response = pipeline.answer(&trace_question);
    println!("{}", response.trace.to_json().to_pretty());

    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json()).expect("write JSON report");
        println!("\nJSON report written to {path}");
    }

    if let Some(path) = flag_value("--prom") {
        let text = relpat_obs::render_prometheus(&snapshot);
        std::fs::write(&path, text).expect("write Prometheus exposition");
        println!("\nPrometheus exposition written to {path}");
    }

    if let Some(path) = flag_value("--plans") {
        // Re-answer the evaluated questions with EXPLAIN ANALYZE. The warm
        // query cache means repeat queries show up as cache-hit plans —
        // exactly what the live server would report.
        let mut out = String::new();
        let mut questions_with_misestimates = 0u64;
        let mut total_misestimates = 0u64;
        for result in &report.results {
            let response = pipeline.answer_explained(&result.text);
            let misestimates: u64 =
                response.trace.plans.iter().map(|p| p.trace.misestimates).sum();
            total_misestimates += misestimates;
            questions_with_misestimates += u64::from(misestimates > 0);
            let line = relpat_obs::Json::obj()
                .set("id", result.id)
                .set("question", result.text.as_str())
                .set("stage", response.trace.stage.as_str())
                .set("misestimates", misestimates)
                .set(
                    "plans",
                    relpat_obs::Json::Arr(
                        response.trace.plans.iter().map(|p| p.to_json()).collect(),
                    ),
                );
            out.push_str(&line.to_string());
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write plan JSONL");
        println!(
            "\nPlan traces for {} questions written to {path} \
             ({total_misestimates} misestimated steps across {questions_with_misestimates} questions)",
            report.results.len()
        );
    }

    if let Some(path) = flag_value("--traces") {
        // Replay the evaluated questions through a tail-sampled store so
        // the dump exercises the same retention policy as the live server.
        let store = TraceStore::new(TraceStoreConfig::default());
        for result in &report.results {
            let response = pipeline.answer(&result.text);
            store.record(&response.trace, response.stage != Stage::Answered);
        }
        std::fs::write(&path, store.to_jsonl()).expect("write trace JSONL");
        let stats = store.stats();
        println!(
            "\n{} of {} traces retained ({} errored, {} slow-tail, {} sampled) written to {path}",
            stats.held, stats.seen, stats.errors, stats.slow_tail, stats.sampled
        );
    }
}

/// Loops the Table-2 benchmark under the sampler and prints the profile.
fn run_flame(out_path: Option<&str>) {
    use std::time::{Duration, Instant};

    println!("=== Continuous profile of the Table-2 benchmark run ===\n");
    let kb = generate(&KbConfig::default());
    let pipeline = Pipeline::new(&kb);
    let questions = qald_questions(&kb);

    let prof = relpat_obs::profiler();
    prof.reset_store();
    prof.enable(relpat_obs::prof::DEFAULT_HZ);
    let before = prof.snapshot();

    // One benchmark pass is fast; loop until the sampler has had ≥2 s of
    // wall time so the profile is statistically meaningful.
    let start = Instant::now();
    let mut rounds = 0u32;
    let mut last_counts = None;
    while rounds == 0 || start.elapsed() < Duration::from_secs(2) {
        // Cold query cache each round: with 900+ warm repeats of the same
        // 55 questions the cache absorbs nearly all SPARQL execution and
        // the profile would show cache probes, not the executor.
        kb.invalidate_query_cache();
        let report = run_benchmark(&pipeline, &questions);
        last_counts = Some((report.counts.total, report.counts.answered, report.counts.correct));
        rounds += 1;
    }
    let profile = prof.snapshot().delta_since(&before);
    prof.disable();

    let (total, answered, correct) = last_counts.expect("at least one round ran");
    println!(
        "{rounds} benchmark round(s) in {:.2} s ({total} questions, {answered} answered, \
         {correct} correct) at {} Hz: {} samples, {} dropped, {} distinct stacks\n",
        start.elapsed().as_secs_f64(),
        relpat_obs::prof::DEFAULT_HZ,
        profile.samples,
        profile.dropped,
        profile.stacks.len(),
    );

    let collapsed = profile.collapsed();
    println!("--- Collapsed stacks (flamegraph input: `tag;tag count`) ---\n");
    print!("{collapsed}");

    let top = profile.top_self_tags();
    println!("\n--- Self time by tag (samples where the tag was the leaf) ---\n");
    for (tag, count) in &top {
        let share = *count as f64 / profile.samples.max(1) as f64 * 100.0;
        println!("{count:>8}  ({share:>5.1}%)  {tag}");
    }

    if let Some(path) = out_path {
        std::fs::write(path, &collapsed).expect("write collapsed profile");
        println!("\nCollapsed profile written to {path}");
    }

    // Self-check: an empty profile, or a profile whose hot tags aren't the
    // pipeline's real hot spots, means the sampler is not observing the
    // workload — fail loudly so CI catches it.
    if collapsed.is_empty() || profile.samples == 0 {
        eprintln!("error: profiler produced an empty profile over a {rounds}-round run");
        std::process::exit(1);
    }
    let top3: Vec<&str> = top.iter().take(3).map(|(t, _)| t.as_str()).collect();
    let has_mapping = top3.contains(&"qa.map");
    let has_exec = top3.iter().any(|t| *t == "sparql.execute" || *t == "qa.answer");
    if !has_mapping || !has_exec {
        eprintln!(
            "error: expected mapping (qa.map) and SPARQL execution (sparql.execute/qa.answer) \
             among the top-3 self-time tags, got {top3:?}"
        );
        std::process::exit(1);
    }
    println!("\nflame self-check OK: hot tags are {top3:?}");
}

/// Runs the store-scaling tier ladder and writes the trajectory JSON.
fn run_scaling_study(path: &str) {
    const SAMPLES: usize = 200;
    println!("=== Store-scaling study (tiers {:?}) ===\n", scaling::TIERS);
    let mut reports = Vec::new();
    for &factor in scaling::TIERS {
        let report = scaling::measure_tier(factor, SAMPLES);
        println!(
            "x{}: {} triples / {} entities, built in {:.0} ms",
            report.factor, report.triples, report.entities, report.build_ms
        );
        for q in &report.queries {
            println!(
                "  {:<16} p50 {:>10.1} µs   p99 {:>10.1} µs   nested p50 {:>10.1} µs   \
                 scanned {:>9} vs {:>9} nested",
                q.name, q.p50_us, q.p99_us, q.p50_nested_us, q.rows_scanned, q.rows_scanned_nested
            );
        }
        reports.push(report);
    }
    let json = scaling::reports_to_json(&reports);
    std::fs::write(path, json.to_pretty() + "\n").expect("write bench JSON");
    println!("\nTrajectory written to {path}");
}
