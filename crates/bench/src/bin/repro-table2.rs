//! Reproduces **Table 2** of the paper: precision / recall / F1 of the
//! pipeline over the QALD-2-style benchmark — 100 questions, of which 55
//! survive the YAGO/`dbprop:` exclusion (paper §3).
//!
//! The paper reports: Precision 83 %, Recall 32 %, F1 46 %
//! (18 of 55 questions answered, 15 correctly).
//!
//! Run with: `cargo run --release -p relpat-bench --bin repro-table2`
//! Pass `--details` for the per-question breakdown the paper's project page
//! hosted.

use relpat_eval::run_benchmark;
use relpat_kb::{evaluated_subset, generate, qald_questions, KbConfig};
use relpat_qa::Pipeline;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let details = args.iter().any(|a| a == "--details");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    println!("=== Table 2 reproduction ===\n");
    let kb = generate(&KbConfig::default());
    println!(
        "Knowledge base: {} triples, {} labeled entities",
        kb.len(),
        kb.entity_count()
    );
    let questions = qald_questions(&kb);
    let excluded = questions.len() - evaluated_subset(&questions).len();
    println!(
        "Benchmark: {} questions, {excluded} excluded (YAGO classes/entities, raw RDF \
         properties) → {} evaluated\n",
        questions.len(),
        evaluated_subset(&questions).len()
    );

    let pipeline = Pipeline::new(&kb);
    let report = run_benchmark(&pipeline, &questions);

    println!("{}", report.table2());
    println!(
        "Answered {} of {} questions; {} correct.",
        report.counts.answered, report.counts.total, report.counts.correct
    );
    println!(
        "\nPaper reference:      | Our method | 83 % | 32 % | 46 % |  (18 answered, 15 correct)"
    );
    println!(
        "This reproduction:    | Our method | {:.0} % | {:.0} % | {:.0} % |  ({} answered, {} correct)",
        report.counts.precision() * 100.0,
        report.counts.recall() * 100.0,
        report.counts.f1() * 100.0,
        report.counts.answered,
        report.counts.correct
    );

    // The extended system (paper + §5/§6 future work), for comparison.
    let extended = Pipeline::extended(&kb);
    let ext_report = run_benchmark(&extended, &questions);
    println!(
        "Extended system (§5/§6): | Our method+ext | {:.0} % | {:.0} % | {:.0} % |  ({} answered, {} correct)",
        ext_report.counts.precision() * 100.0,
        ext_report.counts.recall() * 100.0,
        ext_report.counts.f1() * 100.0,
        ext_report.counts.answered,
        ext_report.counts.correct
    );

    println!("\nPrecision losses (answered but wrong):");
    for r in report.wrong() {
        println!("  q{:>3}  {}\n        answered: {}  |  gold: {}", r.id, r.text, r.answer, r.gold);
    }
    println!("\nRecall losses by stage:");
    let mut by_stage: Vec<(&str, usize)> = Vec::new();
    for r in report.unanswered() {
        match by_stage.iter_mut().find(|(s, _)| *s == r.stage.as_str()) {
            Some((_, n)) => *n += 1,
            None => by_stage.push((r.stage.as_str(), 1)),
        }
    }
    for (stage, n) in &by_stage {
        println!("  {stage}: {n}");
    }

    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json()).expect("write JSON report");
        println!("\nJSON report written to {path}");
    }

    if details {
        println!("\nPer-question results:");
        for r in &report.results {
            let mark = if r.correct {
                "✓"
            } else if r.answered {
                "✗"
            } else {
                "—"
            };
            println!("  {mark} q{:>3} [{}] {}", r.id, r.stage, r.text);
            if r.answered {
                println!("        → {}", r.answer);
            }
        }
    }
}
