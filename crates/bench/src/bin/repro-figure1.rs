//! Reproduces **Figure 1** of the paper: the dependency graph of
//! *"Which book is written by Orhan Pamuk"*, plus the triple bucket §2.1
//! derives from it and the candidate queries §2.3 builds (the paper's
//! Query1/Query2).
//!
//! Run with: `cargo run --release -p relpat-bench --bin repro-figure1`

use relpat_kb::{generate, KbConfig};
use relpat_nlp::parse_sentence;
use relpat_qa::{extract, Pipeline};

fn main() {
    let sentence = "Which book is written by Orhan Pamuk?";
    println!("=== Figure 1 reproduction ===\n");
    println!("Sentence: {sentence}\n");

    let graph = parse_sentence(sentence);
    println!("POS tags:");
    for t in &graph.tokens {
        print!("  {t}");
    }
    println!("\n\nDependency graph (paper Figure 1):\n");
    println!("{}", graph.to_tree_string());
    println!("Typed dependencies:");
    println!("{}", graph.to_relations_string());

    let analysis = extract(&graph).expect("Figure-1 sentence must extract");
    println!("Triple bucket (paper §2.1):");
    print!("{}", analysis.to_bucket_string());

    println!("\nCandidate queries (paper §2.3):");
    let kb = generate(&KbConfig::default());
    let pipeline = Pipeline::new(&kb);
    let response = pipeline.answer(sentence);
    for (i, q) in response.queries.iter().enumerate().take(5) {
        println!("Query{}: (score {:.1})\n   {}", i + 1, q.score, q.sparql);
    }
    match &response.answer {
        Some(ans) => {
            println!("\nAnswer (via {}):", ans.sparql);
            if let relpat_qa::AnswerValue::Terms(ts) = &ans.value {
                for t in ts {
                    let label = t
                        .as_iri()
                        .and_then(|i| kb.label_of(i))
                        .unwrap_or("?")
                        .to_string();
                    println!("   {label}");
                }
            }
        }
        None => println!("\nNo answer produced (stage {:?})", response.stage),
    }
}
