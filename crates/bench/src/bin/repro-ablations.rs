//! Ablation study over the pipeline's design choices (DESIGN.md §5):
//! relational patterns, WordNet expansion, type checking, similarity
//! threshold, centrality disambiguation — each re-evaluated on the full
//! Table-2 benchmark, plus the two baselines for context.
//!
//! Run with: `cargo run --release -p relpat-bench --bin repro-ablations`

use relpat_eval::{ablation_table, run_ablations, run_benchmark, Counts};
use relpat_kb::{evaluated_subset, generate, qald_questions, KbConfig};
use relpat_qa::{KeywordBaseline, TemplateBaseline};

fn main() {
    println!("=== Ablation study (Table-2 benchmark) ===\n");
    let kb = generate(&KbConfig::default());
    let questions = qald_questions(&kb);

    let results = run_ablations(&kb, &questions);
    println!("{}", ablation_table(&results));

    // Baselines over the same evaluated subset.
    println!("Baselines:");
    let evaluated = evaluated_subset(&questions);
    let keyword = KeywordBaseline::new(&kb);
    let template = TemplateBaseline::new(&kb);

    let mut rows: Vec<(&str, Counts)> = Vec::new();
    for (name, answer) in [
        ("keyword (bag-of-words)", &mut (|q: &str| keyword.answer(q)) as &mut dyn FnMut(&str) -> _),
        ("template (Unger-style)", &mut (|q: &str| template.answer(q))),
    ] {
        let mut answered = 0;
        let mut correct = 0;
        for q in &evaluated {
            if let Some(a) = answer(&q.text) {
                answered += 1;
                let gold = q.gold_answers(&kb);
                let ok = !gold.is_empty()
                    && a.terms.len() == gold.len()
                    && gold.iter().all(|g| a.terms.contains(g));
                correct += usize::from(ok);
            }
        }
        rows.push((name, Counts::new(evaluated.len(), answered, correct)));
    }
    println!("| System | Answered | Correct | Precision | Recall | F1 |");
    println!("|---|---|---|---|---|---|");
    for (name, c) in &rows {
        println!(
            "| {name} | {} | {} | {:.1} % | {:.1} % | {:.1} % |",
            c.answered,
            c.correct,
            c.precision() * 100.0,
            c.recall() * 100.0,
            c.f1() * 100.0
        );
    }

    // For context, the full pipeline row again.
    let pipeline = relpat_qa::Pipeline::new(&kb);
    let full = run_benchmark(&pipeline, &questions);
    println!(
        "| relpat (full) | {} | {} | {:.1} % | {:.1} % | {:.1} % |",
        full.counts.answered,
        full.counts.correct,
        full.counts.precision() * 100.0,
        full.counts.recall() * 100.0,
        full.counts.f1() * 100.0
    );
}
