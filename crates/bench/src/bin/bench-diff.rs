//! `bench-diff` — the perf-regression sentinel CLI.
//!
//! ```text
//! # Compare a fresh trajectory against the committed baseline:
//! cargo bench -p relpat-bench --bench store_scaling -- --json /tmp/new.json
//! cargo run --release -p relpat-bench --bin bench-diff -- \
//!     BENCH_store_scaling.json /tmp/new.json
//!
//! # CI self-test: prove the gate passes a clean run and fires on a
//! # synthetic 2x regression of the same baseline:
//! cargo run --release -p relpat-bench --bin bench-diff -- --smoke \
//!     BENCH_store_scaling.json
//! ```
//!
//! Exit code 0 means "no regression" (or, under `--smoke`, "the gate
//! demonstrably works"); anything else fails the CI step.

use std::process::ExitCode;

use relpat_bench::diff::{
    diff, parse_trajectory, scale_points, BenchPoint, DEFAULT_THRESHOLD, NOISE_FLOOR_US,
};

const USAGE: &str = "bench-diff — compare two store-scaling trajectories for p50 regressions

USAGE:
    bench-diff [--threshold <ratio>] <baseline.json> <current.json>
    bench-diff --smoke <baseline.json>

OPTIONS:
    --threshold <ratio>   regression threshold on current/baseline p50 [default: 1.5]
    --smoke               self-test: baseline vs itself must pass, baseline vs a
                          synthetic 2x slowdown must fail
    --help                print this help
";

fn load(path: &str) -> Result<Vec<BenchPoint>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_trajectory(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut smoke = false;
    let mut files: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let raw = match iter.next() {
                    Some(v) => v,
                    None => return fail("--threshold requires a value"),
                };
                threshold = match raw.parse::<f64>() {
                    Ok(v) if v > 1.0 => v,
                    _ => return fail("--threshold must be a ratio > 1.0"),
                };
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag {other}"));
            }
            path => files.push(path.to_string()),
        }
    }

    if smoke {
        if files.len() != 1 {
            return fail("--smoke takes exactly one baseline file");
        }
        return run_smoke(&files[0], threshold);
    }
    if files.len() != 2 {
        return fail("expected <baseline.json> <current.json>");
    }
    let (baseline, current) = match (load(&files[0]), load(&files[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };

    let report = diff(&baseline, &current, threshold);
    print!("{}", report.render());
    if report.passes() {
        println!(
            "\nOK: {} benchmarks within {threshold:.2}x of baseline (floor {NOISE_FLOOR_US} us)",
            report.rows.len()
        );
        ExitCode::SUCCESS
    } else {
        let regressed = report.regressions().count();
        println!(
            "\nFAIL: {regressed} regression(s) past {threshold:.2}x, {} benchmark(s) missing",
            report.missing.len()
        );
        ExitCode::FAILURE
    }
}

/// Self-test mode: the sentinel must stay quiet on a clean run AND must
/// actually fire on a regression, otherwise a silently broken gate would
/// pass CI forever.
fn run_smoke(path: &str, threshold: f64) -> ExitCode {
    let baseline = match load(path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    println!("smoke: {path} holds {} benchmarks", baseline.len());

    let clean = diff(&baseline, &baseline, threshold);
    if !clean.passes() {
        print!("{}", clean.render());
        return fail("baseline vs itself reported a regression — sentinel is broken");
    }
    println!("smoke: baseline vs itself → pass (as expected)");

    let slowed = scale_points(&baseline, 2.0);
    let regressed = diff(&baseline, &slowed, threshold);
    if regressed.passes() {
        print!("{}", regressed.render());
        return fail("baseline vs synthetic 2x slowdown passed — sentinel cannot fire");
    }
    println!(
        "smoke: baseline vs synthetic 2x slowdown → {} regression(s) flagged (as expected)",
        regressed.regressions().count()
    );
    println!("smoke: OK — the regression gate provably fires");
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}
