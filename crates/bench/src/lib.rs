//! # relpat-bench — benchmarks and paper-reproduction binaries
//!
//! Binaries (run with `cargo run --release -p relpat-bench --bin <name>`):
//!
//! - `repro-figure1` — the paper's Figure 1 (dependency graph) plus the
//!   derived triple bucket and candidate queries;
//! - `repro-table1`  — Table 1 (expected answer types), verified against
//!   the knowledge base;
//! - `repro-table2`  — Table 2 (precision/recall/F1 on the 55-question
//!   QALD-2-style benchmark);
//! - `repro-ablations` — the ablation study and baseline comparison;
//! - `repro-report`  — regenerates every artifact into one `REPORT.md`;
//! - `repro-profile` — QALD run with the observability layer on: per-stage
//!   latency percentiles, pipeline counters, and one full question trace.
//!
//! Benches (`cargo bench -p relpat-bench`): `nlp_throughput`,
//! `store_scaling`, `pattern_mining`, `pipeline`, `ablations`.
//!
//! ## The in-tree micro-bench harness
//!
//! The bench targets used to link `criterion`; the workspace now builds
//! with zero external dependencies, so this lib provides a drop-in subset
//! of criterion's API surface (`Criterion`, `BenchmarkGroup`, `Bencher`,
//! `Throughput`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!`). Each `Bencher::iter` call calibrates an iteration
//! count so one sample costs roughly [`TARGET_SAMPLE_NANOS`], collects
//! `sample_size` wall-clock samples, and prints min / median / mean
//! per-iteration time plus throughput when the group declared one. No
//! statistics beyond that — these are smoke-level latency numbers, not
//! criterion-grade confidence intervals.

use std::fmt::Display;
use std::time::Instant;

pub mod diff;
pub mod scaling;

pub use std::hint::black_box;

/// Per-sample time budget used to calibrate the inner iteration count.
pub const TARGET_SAMPLE_NANOS: u128 = 5_000_000;

/// Work-per-iteration declaration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration (questions, triples, ...).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A bench identifier: `name/parameter`, mirroring criterion's display form.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Entry point handed to every bench target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A named group of related benches sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.id, |b| f(b, input));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return; // the target never called iter()
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut line = format!(
            "{:<40} time: [min {} / median {} / mean {}]",
            format!("{}/{}", self.name, id),
            fmt_nanos(min),
            fmt_nanos(median),
            fmt_nanos(mean),
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem"),
                Throughput::Bytes(n) => (n as f64, "B"),
            };
            if median > 0.0 {
                let per_sec = amount / (median / 1e9);
                line.push_str(&format!("  thrpt: [{}/s]", fmt_quantity(per_sec, unit)));
            }
        }
        println!("{line}");
    }
}

/// Collects per-iteration wall-clock samples for one bench target.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, auto-calibrating how many calls make up one sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibration: one timed call decides the batch size per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 100_000) as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

/// Human-readable duration from nanoseconds.
fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Human-readable rate with K/M/G scaling.
fn fmt_quantity(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.2} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K{unit}", v / 1e3)
    } else {
        format!("{v:.1} {unit}")
    }
}

/// Defines a function running a list of bench targets (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a bench binary (criterion-compatible). Ignores CLI
/// arguments such as the `--bench` flag cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_scales_units() {
        assert_eq!(fmt_nanos(12.0), "12.0 ns");
        assert_eq!(fmt_nanos(12_345.0), "12.35 µs");
        assert_eq!(fmt_nanos(12_345_678.0), "12.35 ms");
        assert_eq!(fmt_quantity(1_500.0, "elem"), "1.50 Kelem");
        assert_eq!(fmt_quantity(2.5e6, "elem"), "2.50 Melem");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("scan", "x2").id, "scan/x2");
        assert_eq!(BenchmarkId::from_parameter("A1-full").id, "A1-full");
    }
}
