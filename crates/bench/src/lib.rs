//! # relpat-bench — benchmarks and paper-reproduction binaries
//!
//! Binaries (run with `cargo run --release -p relpat-bench --bin <name>`):
//!
//! - `repro-figure1` — the paper's Figure 1 (dependency graph) plus the
//!   derived triple bucket and candidate queries;
//! - `repro-table1`  — Table 1 (expected answer types), verified against
//!   the knowledge base;
//! - `repro-table2`  — Table 2 (precision/recall/F1 on the 55-question
//!   QALD-2-style benchmark);
//! - `repro-ablations` — the ablation study and baseline comparison;
//! - `repro-report`  — regenerates every artifact into one `REPORT.md`.
//!
//! Criterion benches (`cargo bench -p relpat-bench`): `nlp_throughput`,
//! `store_scaling`, `pattern_mining`, `pipeline`, `ablations`.
