//! Perf-regression sentinel: compare two `BENCH_store_scaling.json`
//! trajectory files and flag per-benchmark p50 regressions.
//!
//! The scaling study ([`crate::scaling`]) emits one JSON trajectory per
//! run; CI keeps the committed baseline at the repo root. `bench-diff`
//! loads both, matches benchmarks by `(tier factor, query name)`, and
//! reports the p50 ratio `current / baseline` for each. A benchmark
//! regresses when the ratio exceeds the threshold (default 1.5×) **and**
//! the current p50 clears an absolute noise floor (default 0.5 µs) —
//! sub-microsecond timings jitter by integer factors on shared CI
//! machines, so a ratio alone would page on noise.
//!
//! The binary (`src/bin/bench-diff.rs`) exits nonzero when any benchmark
//! regresses, which is what makes it a CI gate. Its `--smoke` mode is a
//! self-test: the baseline must pass against itself and must fail against
//! a synthetically 2×-slowed copy, proving the gate can actually fire.

use relpat_obs::json::{Json, JsonError};

/// Default regression threshold: current p50 must be > 1.5× baseline.
pub const DEFAULT_THRESHOLD: f64 = 1.5;

/// Absolute noise floor in microseconds: a benchmark whose current p50 is
/// at or below this never counts as a regression, whatever the ratio.
pub const NOISE_FLOOR_US: f64 = 0.5;

/// One benchmark's p50 in a trajectory file, keyed by tier and query.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// KB scale factor of the tier the measurement came from.
    pub factor: u64,
    /// Query name within the tier.
    pub name: String,
    /// Median latency in microseconds.
    pub p50_us: f64,
}

/// Comparison of one benchmark across the two files.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    pub factor: u64,
    pub name: String,
    pub baseline_us: f64,
    pub current_us: f64,
    /// `current / baseline`; `f64::INFINITY` when the baseline p50 is 0.
    pub ratio: f64,
    pub regressed: bool,
}

/// Full diff report: matched rows plus benchmarks present in only one file.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub rows: Vec<DiffRow>,
    /// `(factor, name)` pairs in the baseline but missing from current.
    pub missing: Vec<(u64, String)>,
    /// `(factor, name)` pairs in current but absent from the baseline.
    pub added: Vec<(u64, String)>,
}

impl DiffReport {
    /// Rows that crossed the regression threshold.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.regressed)
    }

    /// True when the current file is no worse than the baseline: no
    /// regressed rows and no benchmarks that silently disappeared.
    pub fn passes(&self) -> bool {
        self.missing.is_empty() && self.rows.iter().all(|r| !r.regressed)
    }

    /// Human-readable table, worst ratio first; regressions marked.
    pub fn render(&self) -> String {
        let mut rows: Vec<&DiffRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        let mut out = String::new();
        out.push_str("tier  benchmark                 baseline_us  current_us   ratio\n");
        for r in rows {
            let mark = if r.regressed { "  REGRESSED" } else { "" };
            out.push_str(&format!(
                "{:>4}  {:<24} {:>12.2} {:>11.2} {:>7.2}x{mark}\n",
                r.factor, r.name, r.baseline_us, r.current_us, r.ratio
            ));
        }
        for (factor, name) in &self.missing {
            out.push_str(&format!("{factor:>4}  {name:<24}  MISSING from current\n"));
        }
        for (factor, name) in &self.added {
            out.push_str(&format!("{factor:>4}  {name:<24}  new in current (no baseline)\n"));
        }
        out
    }
}

/// Extracts every `(tier, query)` p50 from a parsed trajectory document.
///
/// Returns an error string naming the first malformed element so a
/// truncated or hand-edited file fails loudly instead of diffing empty.
pub fn extract_points(doc: &Json) -> Result<Vec<BenchPoint>, String> {
    if doc.get("benchmark").and_then(Json::as_str) != Some("store_scaling") {
        return Err("not a store_scaling trajectory (missing benchmark tag)".to_string());
    }
    let tiers = doc
        .get("tiers")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing tiers array".to_string())?;
    let mut points = Vec::new();
    for (ti, tier) in tiers.iter().enumerate() {
        let factor = tier
            .get("factor")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("tier[{ti}] missing factor"))?;
        let queries = tier
            .get("queries")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("tier[{ti}] missing queries"))?;
        for (qi, q) in queries.iter().enumerate() {
            let name = q
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("tier[{ti}].queries[{qi}] missing name"))?;
            let p50_us = q
                .get("p50_us")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("tier[{ti}].queries[{qi}] missing p50_us"))?;
            points.push(BenchPoint { factor, name: name.to_string(), p50_us });
        }
    }
    if points.is_empty() {
        return Err("trajectory holds no benchmarks".to_string());
    }
    Ok(points)
}

/// Parses a trajectory file's text into benchmark points.
pub fn parse_trajectory(text: &str) -> Result<Vec<BenchPoint>, String> {
    let doc = Json::parse(text).map_err(|e: JsonError| format!("invalid JSON: {e:?}"))?;
    extract_points(&doc)
}

/// Diffs `current` against `baseline` at `threshold` (ratio) with the
/// [`NOISE_FLOOR_US`] absolute guard.
pub fn diff(baseline: &[BenchPoint], current: &[BenchPoint], threshold: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for b in baseline {
        match current.iter().find(|c| c.factor == b.factor && c.name == b.name) {
            Some(c) => {
                let ratio = if b.p50_us > 0.0 {
                    c.p50_us / b.p50_us
                } else if c.p50_us > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                let regressed = ratio > threshold && c.p50_us > NOISE_FLOOR_US;
                report.rows.push(DiffRow {
                    factor: b.factor,
                    name: b.name.clone(),
                    baseline_us: b.p50_us,
                    current_us: c.p50_us,
                    ratio,
                    regressed,
                });
            }
            None => report.missing.push((b.factor, b.name.clone())),
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.factor == c.factor && b.name == c.name) {
            report.added.push((c.factor, c.name.clone()));
        }
    }
    report
}

/// Synthesizes a uniformly `scale`×-slower copy of `points` — used by the
/// `--smoke` self-test to prove the gate fires on a real regression.
pub fn scale_points(points: &[BenchPoint], scale: f64) -> Vec<BenchPoint> {
    points.iter().map(|p| BenchPoint { p50_us: p.p50_us * scale, ..p.clone() }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(factor: u64, name: &str, p50_us: f64) -> BenchPoint {
        BenchPoint { factor, name: name.to_string(), p50_us }
    }

    #[test]
    fn identical_trajectories_pass() {
        let base = vec![point(1, "spo_probe", 2.0), point(12, "join_two", 40.0)];
        let report = diff(&base, &base, DEFAULT_THRESHOLD);
        assert!(report.passes());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| (r.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn two_x_slowdown_regresses() {
        let base = vec![point(1, "spo_probe", 2.0)];
        let cur = scale_points(&base, 2.0);
        let report = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert!(!report.passes());
        assert_eq!(report.regressions().count(), 1);
        let row = &report.rows[0];
        assert!((row.ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_forgives_sub_microsecond_jitter() {
        // 0.1 µs → 0.4 µs is a 4× ratio but still under the floor.
        let base = vec![point(1, "tiny", 0.1)];
        let cur = vec![point(1, "tiny", 0.4)];
        let report = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert!(report.passes(), "{}", report.render());
        // Once it clears the floor, the ratio counts.
        let cur = vec![point(1, "tiny", 0.6)];
        assert!(!diff(&base, &cur, DEFAULT_THRESHOLD).passes());
    }

    #[test]
    fn missing_benchmark_fails_added_is_informational() {
        let base = vec![point(1, "a", 2.0), point(1, "b", 2.0)];
        let cur = vec![point(1, "a", 2.0), point(1, "c", 2.0)];
        let report = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(report.missing, vec![(1, "b".to_string())]);
        assert_eq!(report.added, vec![(1, "c".to_string())]);
        assert!(!report.passes(), "a vanished benchmark must fail the gate");
    }

    #[test]
    fn zero_baseline_handled() {
        let base = vec![point(1, "z", 0.0)];
        let cur = vec![point(1, "z", 5.0)];
        let report = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert!(report.rows[0].ratio.is_infinite());
        assert!(!report.passes());
        // 0 → 0 is a clean pass, not NaN.
        let report = diff(&base, &base, DEFAULT_THRESHOLD);
        assert!(report.passes());
    }

    #[test]
    fn parses_real_trajectory_shape() {
        let text = r#"{"benchmark":"store_scaling","tiers":[
            {"factor":1,"triples":9600,"entities":1200,"build_ms":10.5,
             "queries":[{"name":"spo_probe","p50_us":2.25,"p99_us":4.0,
                         "p50_nested_us":9.0,"rows_scanned":3,
                         "rows_scanned_nested":40,"samples":200}]}]}"#;
        let points = parse_trajectory(text).unwrap();
        assert_eq!(points, vec![point(1, "spo_probe", 2.25)]);
    }

    #[test]
    fn malformed_trajectories_fail_loudly() {
        assert!(parse_trajectory("{}").is_err());
        assert!(parse_trajectory(r#"{"benchmark":"store_scaling"}"#).is_err());
        assert!(parse_trajectory(r#"{"benchmark":"store_scaling","tiers":[]}"#).is_err());
        assert!(parse_trajectory("not json").is_err());
    }
}
