//! Shared definitions for the store-scaling study.
//!
//! One place owns the tier ladder, the representative query set, and the
//! measurement routine, so the `store_scaling` bench and
//! `repro-profile --bench-json` (which writes the committed
//! `BENCH_store_scaling.json` trajectory file) cannot drift apart.
//!
//! Queries run through [`relpat_kb::Kb::query_uncached`]: the trajectory
//! tracks the triple store's join latency, which the result cache would
//! otherwise hide after the first iteration.

use std::time::Instant;

use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_obs::Json;

/// The representative query shapes the QA pipeline emits. `merge_join`,
/// `chain_join` and `agg_join` are the multi-pattern shapes the sorted join
/// operators target: each binds thousands of rows per step at the 1M tier,
/// and `agg_join` — where no term is ever materialized — is the headline
/// p50-vs-nested perf gate.
pub const QUERIES: &[(&str, &str)] = &[
    ("class_scan", "SELECT ?x { ?x rdf:type dbont:Book }"),
    (
        "paper_join",
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }",
    ),
    ("subject_lookup", "SELECT ?h { res:Michael_Jordan dbont:height ?h }"),
    (
        "filtered",
        "SELECT ?c { ?c rdf:type dbont:City . ?c dbont:populationTotal ?p FILTER(?p > 3000000) }",
    ),
    ("ask", "ASK { res:Snow dbont:author res:Orhan_Pamuk }"),
    (
        // The author scan wins the first slot and leaves the stream sorted
        // by ?a (its POS slice ascends by object); the birth-place step
        // joins on ?a alone → sort-merge, and multi-book writers repeat in
        // the probe stream so the merge strictly reduces rows scanned.
        "merge_join",
        "SELECT ?b ?c { ?b dbont:author ?a . ?a dbont:birthPlace ?c }",
    ),
    (
        // Three steps pivoting on ?a: the Writer type scan (cheapest at
        // every tier) sorts the stream by subject, the author step merges
        // and fans each writer out to their books, and the birth-place step
        // merges again over the now-repeating ?a keys — the high-repetition
        // case where batched key location pays off most.
        "chain_join",
        "SELECT ?b ?c { ?a rdf:type dbont:Writer . ?b dbont:author ?a . \
         ?a dbont:birthPlace ?c }",
    ),
    (
        // The same merge-join BGP under an aggregate: COUNT never
        // materializes terms, so the whole run is join work and the sorted
        // operators' saved searches and scans show up undiluted — the
        // headline ≥2× query of the operator rework.
        "agg_join",
        "SELECT (COUNT(?c) AS ?n) { ?b dbont:author ?a . ?a dbont:birthPlace ?c }",
    ),
];

/// Scale-factor ladder for the trajectory file: paper scale (~9.6k triples),
/// the 100k tier (~103k) and the million-triple tier (~1.01M).
pub const TIERS: &[usize] = &[1, 12, 119];

/// CI-sized subset: the 1M tier generates in seconds but would dominate a
/// smoke gate, so the gate stops at the 100k tier.
pub const SMOKE_TIERS: &[usize] = &[1, 12];

/// Latency percentiles for one query at one tier, with the nested-loop
/// baseline alongside: `p50_us`/`rows_scanned` come from the planner's
/// chosen operators (merge/gallop where sortedness allows), the `_nested`
/// twins pin every join step to the nested fallback. The gap is the sorted
/// operators' win; the differential suite guarantees identical results.
#[derive(Debug)]
pub struct QueryStats {
    pub name: &'static str,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p50_nested_us: f64,
    pub rows_scanned: u64,
    pub rows_scanned_nested: u64,
    pub samples: usize,
}

/// Measurements for one KB scale tier.
#[derive(Debug)]
pub struct TierReport {
    pub factor: usize,
    pub triples: usize,
    pub entities: usize,
    pub build_ms: f64,
    pub queries: Vec<QueryStats>,
}

/// Percentile over raw sample values (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Builds the KB at `factor` and measures every query `samples` times.
/// `build_ms` covers generation plus index freezing — the full cost of
/// standing up a servable store at that scale.
pub fn measure_tier(factor: usize, samples: usize) -> TierReport {
    let start = Instant::now();
    let kb = generate(&KbConfig::scaled(factor));
    let build_ms = start.elapsed().as_secs_f64() * 1e3;

    let queries = QUERIES
        .iter()
        .map(|&(name, text)| {
            let mut us: Vec<f64> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(kb.query_uncached(text).expect("query runs"));
                    start.elapsed().as_secs_f64() * 1e6
                })
                .collect();
            us.sort_by(|a, b| a.total_cmp(b));
            let mut nested_us: Vec<f64> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(
                        relpat_sparql::query_nested(&kb.graph, text).expect("query runs"),
                    );
                    start.elapsed().as_secs_f64() * 1e6
                })
                .collect();
            nested_us.sort_by(|a, b| a.total_cmp(b));
            let parsed = relpat_sparql::parse_query(text).expect("query parses");
            let (fast, fast_trace) =
                relpat_sparql::execute_traced(&kb.graph, &parsed).expect("traced run");
            let (slow, slow_trace) =
                relpat_sparql::execute_nested_traced(&kb.graph, &parsed).expect("nested run");
            assert_eq!(fast, slow, "{name}: sorted operators must not change results");
            QueryStats {
                name,
                p50_us: percentile(&us, 50.0),
                p99_us: percentile(&us, 99.0),
                p50_nested_us: percentile(&nested_us, 50.0),
                rows_scanned: fast_trace.rows_scanned(),
                rows_scanned_nested: slow_trace.rows_scanned(),
                samples,
            }
        })
        .collect();

    TierReport {
        factor,
        triples: kb.len(),
        entities: kb.entity_count(),
        build_ms,
        queries,
    }
}

/// Renders tier reports as the `BENCH_store_scaling.json` document.
pub fn reports_to_json(reports: &[TierReport]) -> Json {
    let tiers: Vec<Json> = reports
        .iter()
        .map(|t| {
            let queries: Vec<Json> = t
                .queries
                .iter()
                .map(|q| {
                    Json::obj()
                        .set("name", q.name)
                        .set("p50_us", round2(q.p50_us))
                        .set("p99_us", round2(q.p99_us))
                        .set("p50_nested_us", round2(q.p50_nested_us))
                        .set("rows_scanned", q.rows_scanned)
                        .set("rows_scanned_nested", q.rows_scanned_nested)
                        .set("samples", q.samples)
                })
                .collect();
            Json::obj()
                .set("factor", t.factor)
                .set("triples", t.triples)
                .set("entities", t.entities)
                .set("build_ms", round2(t.build_ms))
                .set("queries", queries)
        })
        .collect();
    Json::obj().set("benchmark", "store_scaling").set("tiers", tiers)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Convenience used by tests and the smoke gate: a generated KB at a factor.
pub fn build_kb(factor: usize) -> KnowledgeBase {
    generate(&KbConfig::scaled(factor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn measure_tier_reports_all_queries() {
        let report = measure_tier(1, 3);
        assert_eq!(report.factor, 1);
        assert!(report.triples > 9_000, "paper-scale KB is ~9.6k triples");
        assert_eq!(report.queries.len(), QUERIES.len());
        for q in &report.queries {
            assert!(q.p50_us <= q.p99_us, "{}: p50 must not exceed p99", q.name);
            assert!(
                q.rows_scanned <= q.rows_scanned_nested,
                "{}: sorted operators must never scan more rows ({} > {})",
                q.name,
                q.rows_scanned,
                q.rows_scanned_nested
            );
        }
        // The chain join must show a strict scan reduction even at paper
        // scale: writers repeat in the probe stream (one row per book), and
        // the batched operators locate each distinct key's range only once.
        // That reduction is what compounds at the 1M tier.
        for name in ["chain_join", "agg_join"] {
            let q = report.queries.iter().find(|q| q.name == name).unwrap();
            assert!(
                q.rows_scanned < q.rows_scanned_nested,
                "{name} must strictly reduce scans: {} vs {}",
                q.rows_scanned,
                q.rows_scanned_nested
            );
        }
        let json = reports_to_json(&[report]).to_pretty();
        for key in
            ["store_scaling", "paper_join", "merge_join", "chain_join", "agg_join", "p99_us",
             "build_ms", "p50_nested_us", "rows_scanned_nested"]
        {
            assert!(json.contains(key), "JSON missing {key}");
        }
    }
}
