//! Differential equivalence suite for the frozen flat permutation indexes.
//!
//! The [`Graph`] under test keeps three sorted `Vec<[u32; 3]>` permutations
//! plus a BTree delta/tombstone overlay; the reference model here is the
//! simplest possible store — one `BTreeSet` of index triples with linear
//! filtering. Seeded random insert/remove/freeze interleavings drive both,
//! and at every checkpoint all eight pattern shapes must agree, `estimate`
//! must equal the exact scan cardinality, and `scan_iter` must match the
//! materialized scan. Three regimes cover the overlay states: pure overlay
//! (below the compaction threshold), mixed explicit freezes, and a bulk load
//! that crosses the auto-compaction threshold followed by heavy churn.

use std::collections::BTreeSet;

use relpat_obs::Rng;
use relpat_rdf::{Graph, IdPattern, Term, Triple};

/// Shared entity universe: subjects and objects draw from the same pool so
/// OSP ranges interleave IRIs that also occur as subjects.
const ENTITIES: u32 = 40;
const PREDICATES: u32 = 6;

fn entity(i: u32) -> Term {
    Term::iri(format!("http://t/e{i}"))
}

fn predicate(j: u32) -> Term {
    Term::iri(format!("http://t/p{j}"))
}

fn triple(s: u32, p: u32, o: u32) -> Triple {
    Triple::new(entity(s), predicate(p), entity(o))
}

/// Reference store: index triples, linear filtering, no indexes.
type Model = BTreeSet<(u32, u32, u32)>;

fn model_matching(
    model: &Model,
    s: Option<u32>,
    p: Option<u32>,
    o: Option<u32>,
) -> BTreeSet<Triple> {
    model
        .iter()
        .filter(|&&(ts, tp, to)| {
            s.is_none_or(|v| v == ts) && p.is_none_or(|v| v == tp) && o.is_none_or(|v| v == to)
        })
        .map(|&(ts, tp, to)| triple(ts, tp, to))
        .collect()
}

/// Compares graph and model on all 8 shapes anchored at probe `(s, p, o)`,
/// and checks `estimate`/`scan_iter`/`scan` consistency at the id level.
fn check_probe(g: &Graph, model: &Model, s: u32, p: u32, o: u32) {
    let (st, pt, ot) = (entity(s), predicate(p), entity(o));
    for mask in 0..8u32 {
        let sq = (mask & 1 != 0).then_some(());
        let pq = (mask & 2 != 0).then_some(());
        let oq = (mask & 4 != 0).then_some(());
        let want = model_matching(model, sq.map(|_| s), pq.map(|_| p), oq.map(|_| o));
        let got: BTreeSet<Triple> = g
            .triples_matching(sq.map(|_| &st), pq.map(|_| &pt), oq.map(|_| &ot))
            .into_iter()
            .collect();
        assert_eq!(got, want, "shape {mask:03b} probe ({s},{p},{o})");

        // Id-level checks need every bound term to resolve; a miss means the
        // term occurs nowhere, which the term-level comparison covered.
        let ids = (
            sq.map(|_| g.term_id(&st)),
            pq.map(|_| g.term_id(&pt)),
            oq.map(|_| g.term_id(&ot)),
        );
        let (Some(si), Some(pi), Some(oi)) = (
            ids.0.map_or(Some(None), |id| id.map(Some)),
            ids.1.map_or(Some(None), |id| id.map(Some)),
            ids.2.map_or(Some(None), |id| id.map(Some)),
        ) else {
            continue;
        };
        let pat = IdPattern { subject: si, predicate: pi, object: oi };
        let scanned = g.scan(pat);
        assert_eq!(scanned.len(), want.len(), "scan cardinality, shape {mask:03b}");
        assert_eq!(g.estimate(pat), want.len(), "estimate exactness, shape {mask:03b}");
        let streamed: Vec<_> = g.scan_iter(pat).collect();
        assert_eq!(streamed, scanned, "scan_iter vs scan, shape {mask:03b}");
    }
}

/// Full checkpoint: cardinality, whole-graph scan, and probe points drawn
/// both from present triples and from the raw universe (absent positions).
fn checkpoint(g: &Graph, model: &Model, rng: &mut Rng) {
    assert_eq!(g.len(), model.len(), "triple count");
    let all: BTreeSet<Triple> = g.iter().collect();
    let want: BTreeSet<Triple> =
        model.iter().map(|&(s, p, o)| triple(s, p, o)).collect();
    assert_eq!(all, want, "full scan");

    for _ in 0..4 {
        let (s, p, o) = if !model.is_empty() && rng.gen_bool(0.5) {
            let nth = rng.gen_range(0..model.len());
            *model.iter().nth(nth).expect("in range")
        } else {
            (
                rng.gen_range(0..ENTITIES),
                rng.gen_range(0..PREDICATES),
                rng.gen_range(0..ENTITIES),
            )
        };
        check_probe(g, model, s, p, o);
    }
}

/// Drives `ops` random operations against both stores. `freeze_p` is the
/// per-op probability of an explicit freeze; removals target present triples
/// half of the time so tombstones actually exercise the frozen index.
fn run_regime(seed: u64, ops: usize, freeze_p: f64, remove_p: f64, checkpoint_every: usize) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let mut model: Model = BTreeSet::new();

    for step in 0..ops {
        if rng.gen_bool(freeze_p) {
            g.freeze();
            assert_eq!(g.overlay_len(), 0, "freeze must drain the overlay");
        } else if !model.is_empty() && rng.gen_bool(remove_p) {
            let (s, p, o) = if rng.gen_bool(0.5) {
                let nth = rng.gen_range(0..model.len());
                *model.iter().nth(nth).expect("in range")
            } else {
                (
                    rng.gen_range(0..ENTITIES),
                    rng.gen_range(0..PREDICATES),
                    rng.gen_range(0..ENTITIES),
                )
            };
            let was = model.remove(&(s, p, o));
            assert_eq!(g.remove(&triple(s, p, o)), was, "remove ({s},{p},{o})");
        } else {
            let (s, p, o) = (
                rng.gen_range(0..ENTITIES),
                rng.gen_range(0..PREDICATES),
                rng.gen_range(0..ENTITIES),
            );
            let fresh = model.insert((s, p, o));
            assert_eq!(g.insert(&triple(s, p, o)), fresh, "insert ({s},{p},{o})");
        }
        if (step + 1) % checkpoint_every == 0 {
            checkpoint(&g, &model, &mut rng);
        }
    }
    checkpoint(&g, &model, &mut rng);
}

#[test]
fn overlay_regime_matches_reference() {
    // Small enough that the overlay never hits the compaction threshold:
    // every read merges frozen (possibly empty) with a live delta.
    run_regime(11, 400, 0.02, 0.25, 80);
}

#[test]
fn mixed_freeze_regime_matches_reference() {
    // Frequent explicit freezes interleave tombstone creation, resurrection
    // and re-freezing across several seeds.
    for seed in [1, 2, 3, 4] {
        run_regime(seed, 1200, 0.05, 0.35, 200);
    }
}

#[test]
fn compacted_regime_matches_reference() {
    // Bulk phase crosses MIN_COMPACT_OVERLAY (4096) so auto-compaction fires
    // mid-load, then heavy churn stresses tombstones over a large frozen set.
    let mut rng = Rng::seed_from_u64(77);
    let mut g = Graph::new();
    let mut model: Model = BTreeSet::new();
    for _ in 0..6000 {
        let (s, p, o) = (
            rng.gen_range(0..ENTITIES),
            rng.gen_range(0..PREDICATES),
            rng.gen_range(0..ENTITIES),
        );
        let fresh = model.insert((s, p, o));
        assert_eq!(g.insert(&triple(s, p, o)), fresh);
    }
    assert!(
        g.overlay_len() < 6000,
        "bulk load should have auto-compacted at least once"
    );
    checkpoint(&g, &model, &mut rng);

    for step in 0..600 {
        if !model.is_empty() && rng.gen_bool(0.5) {
            let nth = rng.gen_range(0..model.len());
            let key = *model.iter().nth(nth).expect("in range");
            model.remove(&key);
            assert!(g.remove(&triple(key.0, key.1, key.2)));
        } else {
            let (s, p, o) = (
                rng.gen_range(0..ENTITIES),
                rng.gen_range(0..PREDICATES),
                rng.gen_range(0..ENTITIES),
            );
            let fresh = model.insert((s, p, o));
            assert_eq!(g.insert(&triple(s, p, o)), fresh);
        }
        if (step + 1) % 150 == 0 {
            checkpoint(&g, &model, &mut rng);
        }
    }
    g.freeze();
    checkpoint(&g, &model, &mut rng);
}

#[test]
fn estimate_is_exact_at_every_scale_regime() {
    // Scale sweep: empty, singleton, overlay-sized, and past the compaction
    // threshold. At each size, before and after freeze, estimate == scan len
    // for every shape at several probe points.
    for &n in &[0usize, 1, 50, 1000, 6000] {
        let mut rng = Rng::seed_from_u64(n as u64 + 1000);
        let mut g = Graph::new();
        let mut model: Model = BTreeSet::new();
        for _ in 0..n {
            let (s, p, o) = (
                rng.gen_range(0..ENTITIES),
                rng.gen_range(0..PREDICATES),
                rng.gen_range(0..ENTITIES),
            );
            model.insert((s, p, o));
            g.insert(&triple(s, p, o));
        }
        checkpoint(&g, &model, &mut rng);
        g.freeze();
        checkpoint(&g, &model, &mut rng);
    }
}

#[test]
fn predicates_agree_with_reference_under_churn() {
    let mut rng = Rng::seed_from_u64(5150);
    let mut g = Graph::new();
    let mut model: Model = BTreeSet::new();
    for step in 0..800 {
        if !model.is_empty() && rng.gen_bool(0.4) {
            let nth = rng.gen_range(0..model.len());
            let key = *model.iter().nth(nth).expect("in range");
            model.remove(&key);
            g.remove(&triple(key.0, key.1, key.2));
        } else {
            let (s, p, o) = (
                rng.gen_range(0..ENTITIES),
                rng.gen_range(0..PREDICATES),
                rng.gen_range(0..ENTITIES),
            );
            model.insert((s, p, o));
            g.insert(&triple(s, p, o));
        }
        if step == 400 {
            g.freeze();
        }
        let want: BTreeSet<Term> =
            model.iter().map(|&(_, p, _)| predicate(p)).collect();
        let got: BTreeSet<Term> = g.predicates().into_iter().collect();
        assert_eq!(got, want, "predicate set after step {step}");
    }
}
