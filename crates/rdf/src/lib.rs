//! # relpat-rdf — RDF data model and in-memory triple store
//!
//! The storage substrate of the `relpat` question-answering system. It
//! provides:
//!
//! - an RDF 1.1-style term model ([`Iri`], [`Literal`], [`Term`]);
//! - a term [`Interner`] mapping terms to dense `u32` ids;
//! - an indexed, in-memory [`Graph`] with frozen flat SPO/POS/OSP permutation
//!   indexes (plus a mutable delta overlay) so that any partially bound
//!   triple pattern is a contiguous slice scan located in O(log n);
//! - Turtle and N-Triples parsing/serialization for fixtures and interchange;
//! - the vocabulary constants (`rdf:`, `rdfs:`, `xsd:`, `dbont:`, `res:`) that
//!   the paper's examples use.
//!
//! ```
//! use relpat_rdf::{Graph, Term, vocab::{dbont, res}};
//!
//! let mut g = Graph::new();
//! g.add(
//!     Term::iri(res::iri("Snow")),
//!     Term::iri(dbont::iri("writer")),
//!     Term::iri(res::iri("Orhan Pamuk")),
//! );
//! let hits = g.subjects_with(
//!     &Term::iri(dbont::iri("writer")),
//!     &Term::iri(res::iri("Orhan Pamuk")),
//! );
//! assert_eq!(hits.len(), 1);
//! ```

mod error;
mod graph;
mod io;
mod interner;
mod ntriples;
mod term;
mod turtle;

pub mod vocab;

pub use error::RdfError;
pub use graph::{
    sort_major_position, FrozenProbe, Graph, GraphStats, IdPattern, IdTriple, ScanIter, Triple,
};
pub use interner::{Interner, TermId};
pub use io::{load_path, save_ntriples, save_turtle};
pub use ntriples::{parse_ntriples, to_ntriples};
pub use term::{BlankNode, Iri, Literal, Term};
pub use turtle::{load_turtle, parse_turtle, render_term, to_turtle};
