//! N-Triples import/export.
//!
//! N-Triples is a line-oriented subset of Turtle with only absolute IRIs, so
//! we reuse the Turtle parser per line (it accepts a superset) and provide a
//! strict serializer. Used for round-trip tests and data interchange.

use std::fmt::Write as _;

use crate::error::RdfError;
use crate::graph::{Graph, Triple};
use crate::turtle::parse_turtle;

/// Parses an N-Triples document (one triple per non-empty, non-comment line).
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>, RdfError> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut triples = parse_turtle(trimmed).map_err(|e| match e {
            RdfError::Parse { message, .. } => {
                RdfError::Parse { line: lineno + 1, message }
            }
            other => other,
        })?;
        if triples.len() != 1 {
            return Err(RdfError::Parse {
                line: lineno + 1,
                message: format!("expected exactly one triple per line, got {}", triples.len()),
            });
        }
        out.push(triples.pop().unwrap());
    }
    Ok(out)
}

/// Serializes a graph as N-Triples (absolute IRIs, one triple per line,
/// sorted for determinism).
pub fn to_ntriples(graph: &Graph) -> String {
    let mut triples: Vec<Triple> = graph.iter().collect();
    triples.sort();
    let mut out = String::new();
    for t in triples {
        let _ = writeln!(out, "{t}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let doc = "\n# header\n<http://e/s> <http://e/p> \"v\" .\n\n";
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn rejects_multi_triple_lines() {
        let doc = "<http://e/s> <http://e/p> <http://e/o> . <http://e/s2> <http://e/p> <http://e/o> .";
        assert!(parse_ntriples(doc).is_err());
    }

    #[test]
    fn error_line_is_document_relative() {
        let doc = "<http://e/s> <http://e/p> <http://e/o> .\n<http://bad";
        match parse_ntriples(doc) {
            Err(RdfError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip() {
        let mut g = Graph::new();
        g.add(Term::iri("http://e/s"), Term::iri("http://e/p"), Term::literal("hello\nworld"));
        g.add(Term::iri("http://e/s"), Term::iri("http://e/q"), Term::iri("http://e/o"));
        let nt = to_ntriples(&g);
        let parsed = parse_ntriples(&nt).unwrap();
        assert_eq!(parsed.len(), 2);
        for t in parsed {
            assert!(g.contains(&t));
        }
    }
}
