//! Well-known vocabularies used throughout the system.
//!
//! The DBpedia-style namespaces (`dbont:`, `res:`) mirror the prefixes the
//! paper uses: `dbont:` for the DBpedia ontology (classes and properties) and
//! `res:` for resources (entities). The synthetic knowledge base mints all of
//! its identifiers inside these namespaces so that queries printed by the
//! system look exactly like the paper's examples.

/// `rdf:` — the RDF core vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

/// `rdfs:` — RDF Schema.
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
}

/// `owl:` — the little of OWL we need to describe the ontology itself.
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
}

/// `xsd:` — XML Schema datatypes.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const NON_NEGATIVE_INTEGER: &str =
        "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const G_YEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
}

/// `dbont:` — the DBpedia ontology namespace (classes + properties).
pub mod dbont {
    pub const NS: &str = "http://dbpedia.org/ontology/";

    /// Mints an ontology IRI string for a local name (`writer` →
    /// `http://dbpedia.org/ontology/writer`).
    pub fn iri(local: &str) -> String {
        format!("{NS}{local}")
    }
}

/// `res:` — the DBpedia resource namespace (entities).
pub mod res {
    pub const NS: &str = "http://dbpedia.org/resource/";

    /// Mints a resource IRI string. Spaces become underscores, matching how
    /// DBpedia derives identifiers from Wikipedia page titles.
    pub fn iri(title: &str) -> String {
        let mut out = String::with_capacity(NS.len() + title.len());
        out.push_str(NS);
        for c in title.chars() {
            out.push(if c == ' ' { '_' } else { c });
        }
        out
    }
}

/// Page links between resources (DBpedia's `dbont:wikiPageWikiLink`), used by
/// the named-entity disambiguation step (paper §2.2.5).
pub const WIKI_PAGE_LINK: &str = "http://dbpedia.org/ontology/wikiPageWikiLink";

/// The default prefix table used by parsers and serializers.
pub fn default_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", rdf::NS),
        ("rdfs", rdfs::NS),
        ("owl", owl::NS),
        ("xsd", xsd::NS),
        ("dbont", dbont::NS),
        ("res", res::NS),
    ]
}

/// Renders an IRI using the default prefixes when possible (`dbont:writer`),
/// falling back to the angle-bracketed absolute form.
pub fn shorten(iri: &str) -> String {
    for (prefix, ns) in default_prefixes() {
        if let Some(local) = iri.strip_prefix(ns) {
            // Only shorten when the local part is a simple name; otherwise the
            // prefixed form would not re-parse.
            if !local.is_empty()
                && local.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                return format!("{prefix}:{local}");
            }
        }
    }
    format!("<{iri}>")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn res_iri_replaces_spaces() {
        assert_eq!(res::iri("Orhan Pamuk"), "http://dbpedia.org/resource/Orhan_Pamuk");
    }

    #[test]
    fn dbont_iri_concats() {
        assert_eq!(dbont::iri("birthPlace"), "http://dbpedia.org/ontology/birthPlace");
    }

    #[test]
    fn shorten_uses_known_prefixes() {
        assert_eq!(shorten("http://dbpedia.org/ontology/writer"), "dbont:writer");
        assert_eq!(shorten(rdf::TYPE), "rdf:type");
        assert_eq!(shorten("http://example.org/x"), "<http://example.org/x>");
    }

    #[test]
    fn shorten_refuses_complex_local_names() {
        assert_eq!(
            shorten("http://dbpedia.org/resource/A(B)"),
            "<http://dbpedia.org/resource/A(B)>"
        );
    }

    #[test]
    fn default_prefixes_are_unique() {
        let prefixes = default_prefixes();
        let mut names: Vec<_> = prefixes.iter().map(|(p, _)| *p).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), prefixes.len());
    }
}
