//! RDF term model: IRIs, literals, blank nodes and variables.
//!
//! The model follows the RDF 1.1 abstract syntax closely enough for a
//! DBpedia-style knowledge base: IRIs identify resources, literals carry an
//! optional datatype IRI or language tag, and blank nodes are scoped,
//! label-identified existentials. Variables are not RDF terms proper but are
//! included so that query layers (SPARQL triple patterns) can reuse the same
//! enum without a parallel hierarchy.

use std::borrow::Cow;
use std::fmt;

use crate::vocab::xsd;

/// An IRI (we do not distinguish IRI from URI; DBpedia identifiers are ASCII).
///
/// Stored as a single owned string. Equality and ordering are plain string
/// comparisons, which matches RDF semantics (IRIs are compared codepoint-wise).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Iri(String);

impl Iri {
    /// Creates an IRI from any string-like value. No validation beyond
    /// non-emptiness is performed: knowledge-base generation controls its own
    /// identifier space, and the Turtle parser validates syntax separately.
    pub fn new(value: impl Into<String>) -> Self {
        let s = value.into();
        debug_assert!(!s.is_empty(), "IRI must not be empty");
        Iri(s)
    }

    /// The full IRI string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The part after the last `/` or `#`, commonly the "local name".
    ///
    /// `http://dbpedia.org/ontology/birthPlace` → `birthPlace`.
    pub fn local_name(&self) -> &str {
        match self.0.rfind(['/', '#']) {
            Some(idx) => &self.0[idx + 1..],
            None => &self.0,
        }
    }

    /// The namespace part including the trailing separator, complement of
    /// [`Iri::local_name`].
    pub fn namespace(&self) -> &str {
        let local = self.local_name();
        &self.0[..self.0.len() - local.len()]
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(value: &str) -> Self {
        Iri::new(value)
    }
}

impl From<String> for Iri {
    fn from(value: String) -> Self {
        Iri::new(value)
    }
}

/// An RDF literal: a lexical form plus either a datatype IRI or a language tag.
///
/// Plain literals are represented with datatype `xsd:string` and no language
/// tag, per RDF 1.1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    lexical: String,
    /// `None` means `xsd:string` (the overwhelmingly common case, so we avoid
    /// storing the datatype IRI for it).
    datatype: Option<Iri>,
    language: Option<String>,
}

impl Literal {
    /// A plain (`xsd:string`) literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), datatype: None, language: None }
    }

    /// A language-tagged literal (`"Ankara"@en`). Tags are lower-cased.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(tag.into().to_ascii_lowercase()),
        }
    }

    /// A typed literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: Iri) -> Self {
        let lexical = lexical.into();
        if datatype.as_str() == xsd::STRING {
            return Literal::plain(lexical);
        }
        Literal { lexical, datatype: Some(datatype), language: None }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), Iri::new(xsd::INTEGER))
    }

    /// An `xsd:double` literal. The lexical form uses Rust's shortest
    /// round-trippable representation.
    pub fn double(value: f64) -> Self {
        Literal::typed(value.to_string(), Iri::new(xsd::DOUBLE))
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(value.to_string(), Iri::new(xsd::BOOLEAN))
    }

    /// An `xsd:date` literal from year/month/day (no validation of calendars;
    /// generation code is trusted to produce valid dates).
    pub fn date(year: i32, month: u32, day: u32) -> Self {
        Literal::typed(format!("{year:04}-{month:02}-{day:02}"), Iri::new(xsd::DATE))
    }

    /// The lexical form (the quoted part).
    pub fn lexical_form(&self) -> &str {
        &self.lexical
    }

    /// The datatype IRI as a string; `xsd:string` for plain literals and
    /// `rdf:langString` for language-tagged ones.
    pub fn datatype_str(&self) -> &str {
        if self.language.is_some() {
            crate::vocab::rdf::LANG_STRING
        } else {
            self.datatype.as_ref().map_or(xsd::STRING, |d| d.as_str())
        }
    }

    /// The language tag, if any.
    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// True if the datatype is one of the XSD numeric types we support.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.datatype_str(),
            xsd::INTEGER | xsd::DOUBLE | xsd::DECIMAL | xsd::FLOAT | xsd::NON_NEGATIVE_INTEGER
        )
    }

    /// Parses the lexical form as a double if the literal is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        if self.is_numeric() {
            self.lexical.parse().ok()
        } else {
            None
        }
    }

    /// Parses the lexical form as an integer if the datatype is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self.datatype_str() {
            xsd::INTEGER | xsd::NON_NEGATIVE_INTEGER => self.lexical.parse().ok(),
            _ => None,
        }
    }

    /// True if the datatype is `xsd:date` or `xsd:dateTime`.
    pub fn is_date(&self) -> bool {
        matches!(self.datatype_str(), xsd::DATE | xsd::DATE_TIME | xsd::G_YEAR)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(tag) = &self.language {
            write!(f, "@{tag}")
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")
        } else {
            Ok(())
        }
    }
}

/// Escapes a literal's lexical form for Turtle/N-Triples output.
pub(crate) fn escape_literal(s: &str) -> Cow<'_, str> {
    if s.chars().any(|c| matches!(c, '"' | '\\' | '\n' | '\r' | '\t')) {
        let mut out = String::with_capacity(s.len() + 4);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                other => out.push(other),
            }
        }
        Cow::Owned(out)
    } else {
        Cow::Borrowed(s)
    }
}

/// A blank node, identified by label within a single graph/document.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlankNode(pub String);

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF term (or a query variable, for the benefit of pattern layers).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    Iri(Iri),
    Literal(Literal),
    Blank(BlankNode),
    /// Query variable; never stored in a [`crate::Graph`].
    Variable(String),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(Iri::new(value))
    }

    /// Convenience constructor for a plain literal term.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(value))
    }

    /// Convenience constructor for a variable term (no leading `?`).
    pub fn var(name: impl Into<String>) -> Self {
        Term::Variable(name.into())
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    pub fn is_variable(&self) -> bool {
        matches!(self, Term::Variable(_))
    }

    /// True for terms that may appear in a stored triple (not variables).
    pub fn is_concrete(&self) -> bool {
        !self.is_variable()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => iri.fmt(f),
            Term::Literal(lit) => lit.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Variable(v) => write!(f, "?{v}"),
        }
    }
}

impl From<Iri> for Term {
    fn from(value: Iri) -> Self {
        Term::Iri(value)
    }
}

impl From<Literal> for Term {
    fn from(value: Literal) -> Self {
        Term::Literal(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name_splits_on_slash_and_hash() {
        assert_eq!(Iri::new("http://dbpedia.org/ontology/birthPlace").local_name(), "birthPlace");
        assert_eq!(
            Iri::new("http://www.w3.org/1999/02/22-rdf-syntax-ns#type").local_name(),
            "type"
        );
        assert_eq!(Iri::new("urn:nothing").local_name(), "urn:nothing");
    }

    #[test]
    fn iri_namespace_is_complement_of_local_name() {
        let iri = Iri::new("http://dbpedia.org/resource/Orhan_Pamuk");
        assert_eq!(iri.namespace(), "http://dbpedia.org/resource/");
        assert_eq!(format!("{}{}", iri.namespace(), iri.local_name()), iri.as_str());
    }

    #[test]
    fn plain_literal_has_string_datatype() {
        let lit = Literal::plain("hello");
        assert_eq!(lit.datatype_str(), xsd::STRING);
        assert_eq!(lit.language(), None);
        assert!(!lit.is_numeric());
    }

    #[test]
    fn typed_string_literal_collapses_to_plain() {
        let lit = Literal::typed("x", Iri::new(xsd::STRING));
        assert_eq!(lit, Literal::plain("x"));
    }

    #[test]
    fn lang_literal_reports_rdf_langstring() {
        let lit = Literal::lang("Ankara", "EN");
        assert_eq!(lit.language(), Some("en"));
        assert_eq!(lit.datatype_str(), crate::vocab::rdf::LANG_STRING);
    }

    #[test]
    fn numeric_literals_parse() {
        assert_eq!(Literal::integer(42).as_i64(), Some(42));
        assert_eq!(Literal::integer(42).as_f64(), Some(42.0));
        assert_eq!(Literal::double(1.98).as_f64(), Some(1.98));
        assert_eq!(Literal::plain("42").as_i64(), None);
    }

    #[test]
    fn date_literal_formats_iso() {
        let lit = Literal::date(1952, 6, 7);
        assert_eq!(lit.lexical_form(), "1952-06-07");
        assert!(lit.is_date());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(Term::literal("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Term::var("x").to_string(), "?x");
        assert_eq!(Term::Blank(BlankNode("b0".into())).to_string(), "_:b0");
        assert_eq!(
            Literal::lang("Roman", "de").to_string(),
            "\"Roman\"@de"
        );
        assert_eq!(
            Literal::integer(5).to_string(),
            format!("\"5\"^^<{}>", xsd::INTEGER)
        );
    }

    #[test]
    fn escape_round_trip_characters() {
        let escaped = escape_literal("line1\nline2\t\"q\"\\end");
        assert_eq!(escaped, "line1\\nline2\\t\\\"q\\\"\\\\end");
    }

    #[test]
    fn term_accessors() {
        let t = Term::iri("http://e/x");
        assert!(t.as_iri().is_some());
        assert!(t.as_literal().is_none());
        assert!(t.is_concrete());
        assert!(Term::var("v").is_variable());
    }
}
