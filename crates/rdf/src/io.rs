//! File persistence for graphs (N-Triples and Turtle).
//!
//! The store is in-memory; these helpers let examples and tools persist a
//! generated knowledge base and reload it without regenerating, and let
//! users bring their own data.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::error::RdfError;
use crate::graph::Graph;
use crate::ntriples::{parse_ntriples, to_ntriples};
use crate::turtle::{parse_turtle, to_turtle};

/// Saves a graph as N-Triples (sorted, deterministic).
pub fn save_ntriples(graph: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(to_ntriples(graph).as_bytes())
}

/// Saves a graph as Turtle with the default prefixes.
pub fn save_turtle(graph: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(to_turtle(graph).as_bytes())
}

/// Loads a graph from a file; the format is chosen by extension
/// (`.nt` → N-Triples, anything else → Turtle, which is a superset).
pub fn load_path(path: impl AsRef<Path>) -> Result<Graph, RdfError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)
        .map_err(|e| RdfError::Invalid(format!("cannot read {}: {e}", path.display())))?;
    let triples = if path.extension().is_some_and(|e| e == "nt") {
        parse_ntriples(&text)?
    } else {
        parse_turtle(&text)?
    };
    let mut graph = Graph::new();
    for t in &triples {
        graph.insert(t);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.add(Term::iri("http://e/s"), Term::iri("http://e/p"), Term::literal("v"));
        g.add(Term::iri("http://e/s"), Term::iri("http://e/q"), Term::iri("http://e/o"));
        g
    }

    #[test]
    fn ntriples_file_round_trip() {
        let g = sample();
        let path = std::env::temp_dir().join("relpat_io_test.nt");
        save_ntriples(&g, &path).unwrap();
        let loaded = load_path(&path).unwrap();
        assert_eq!(loaded.len(), g.len());
        for t in g.iter() {
            assert!(loaded.contains(&t));
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn turtle_file_round_trip() {
        let g = sample();
        let path = std::env::temp_dir().join("relpat_io_test.ttl");
        save_turtle(&g, &path).unwrap();
        let loaded = load_path(&path).unwrap();
        assert_eq!(loaded.len(), g.len());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_reported() {
        let err = load_path("/nonexistent/relpat.nt").unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }
}
