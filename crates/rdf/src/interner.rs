//! Term interning.
//!
//! The triple store never compares full [`Term`] values on its hot paths.
//! Every distinct term is assigned a dense `u32` id ([`TermId`]) on first
//! insertion; the three index permutations then operate on `(u32, u32, u32)`
//! keys, which keeps them small and makes range scans cache-friendly (see the
//! "Type Sizes" guidance in the Rust Performance Book).

use relpat_obs::fx::FxHashMap;

use crate::term::Term;

/// Dense identifier for an interned [`Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between [`Term`] values and dense [`TermId`]s.
///
/// Ids are never recycled; a term, once interned, stays resolvable for the
/// lifetime of the interner. This is the right trade-off for a research store
/// that only grows.
#[derive(Debug, Default)]
pub struct Interner {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Pre-sizes both sides of the map for `additional` more distinct terms.
    /// Bulk loaders call this to avoid rehash/regrow churn while interning
    /// millions of terms.
    pub fn reserve(&mut self, additional: usize) {
        self.terms.reserve(additional);
        self.ids.reserve(additional);
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("interner capacity exceeded (2^32 terms)"),
        );
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Looks up the id of a term without interning it.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term. Panics on a foreign id, which would
    /// indicate index corruption.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Resolves an id if it is valid.
    pub fn try_resolve(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let a1 = interner.intern(&Term::iri("http://e/a"));
        let b = interner.intern(&Term::iri("http://e/b"));
        let a2 = interner.intern(&Term::iri("http://e/a"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let term = Term::literal("value");
        let id = interner.intern(&term);
        assert_eq!(interner.resolve(id), &term);
        assert_eq!(interner.get(&term), Some(id));
    }

    #[test]
    fn get_does_not_intern() {
        let interner = Interner::new();
        assert_eq!(interner.get(&Term::iri("http://e/a")), None);
        assert!(interner.is_empty());
    }

    #[test]
    fn distinct_term_kinds_get_distinct_ids() {
        let mut interner = Interner::new();
        // An IRI and a literal with the same text must not collide.
        let iri = interner.intern(&Term::iri("x"));
        let lit = interner.intern(&Term::literal("x"));
        assert_ne!(iri, lit);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut interner = Interner::new();
        let ids: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|s| interner.intern(&Term::literal(*s)))
            .collect();
        let seen: Vec<_> = interner.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }

    #[test]
    fn try_resolve_rejects_foreign_ids() {
        let interner = Interner::new();
        assert!(interner.try_resolve(TermId(7)).is_none());
    }
}
