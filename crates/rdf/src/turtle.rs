//! Turtle (subset) parser and serializer.
//!
//! Supported syntax — enough for ontology files and test fixtures:
//! `@prefix` directives, prefixed names, absolute IRIs, the `a` keyword,
//! `;` and `,` abbreviations, string literals with `@lang` / `^^datatype`,
//! numeric and boolean shorthand literals, blank node labels (`_:b0`) and
//! `#` comments. Not supported: collections, anonymous blank nodes `[]`,
//! multi-line strings.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::RdfError;
use crate::graph::{Graph, Triple};
use crate::term::{BlankNode, Iri, Literal, Term};
use crate::vocab::{self, rdf, xsd};

/// Parses a Turtle document into a list of triples.
pub fn parse_turtle(input: &str) -> Result<Vec<Triple>, RdfError> {
    Parser::new(input).parse_document()
}

/// Parses a Turtle document directly into a graph, returning the number of
/// triples inserted (duplicates collapse).
pub fn load_turtle(graph: &mut Graph, input: &str) -> Result<usize, RdfError> {
    let triples = parse_turtle(input)?;
    let mut added = 0;
    for t in &triples {
        if graph.insert(t) {
            added += 1;
        }
    }
    Ok(added)
}

/// Serializes a graph to Turtle using the default prefix table, grouping
/// triples by subject with `;` abbreviations.
pub fn to_turtle(graph: &Graph) -> String {
    let mut out = String::new();
    for (prefix, ns) in vocab::default_prefixes() {
        let _ = writeln!(out, "@prefix {prefix}: <{ns}> .");
    }
    out.push('\n');
    let mut triples: Vec<Triple> = graph.iter().collect();
    triples.sort();
    let mut i = 0;
    while i < triples.len() {
        let subject = triples[i].subject.clone();
        let _ = write!(out, "{} ", render_term(&subject));
        let mut first = true;
        while i < triples.len() && triples[i].subject == subject {
            if !first {
                out.push_str(" ;\n    ");
            }
            first = false;
            let t = &triples[i];
            let pred = if t.predicate == Term::iri(rdf::TYPE) {
                "a".to_string()
            } else {
                render_term(&t.predicate)
            };
            let _ = write!(out, "{pred} {}", render_term(&t.object));
            i += 1;
        }
        out.push_str(" .\n");
    }
    out
}

/// Renders one term in Turtle syntax (prefixed where possible).
pub fn render_term(term: &Term) -> String {
    match term {
        Term::Iri(iri) => vocab::shorten(iri.as_str()),
        other => other.to_string(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let mut prefixes = HashMap::new();
        for (p, ns) in vocab::default_prefixes() {
            prefixes.insert(p.to_string(), ns.to_string());
        }
        Parser { bytes: input.as_bytes(), pos: 0, line: 1, prefixes }
    }

    fn err(&self, msg: impl Into<String>) -> RdfError {
        RdfError::Parse { line: self.line, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), RdfError> {
        self.skip_ws();
        match self.bump() {
            Some(b) if b == expected => Ok(()),
            other => Err(self.err(format!(
                "expected '{}', found {:?}",
                expected as char,
                other.map(|b| b as char)
            ))),
        }
    }

    fn parse_document(&mut self) -> Result<Vec<Triple>, RdfError> {
        let mut triples = Vec::new();
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(triples);
            }
            if self.starts_with("@prefix") {
                self.parse_prefix()?;
                continue;
            }
            self.parse_statement(&mut triples)?;
        }
    }

    fn starts_with(&self, kw: &str) -> bool {
        self.bytes[self.pos..].starts_with(kw.as_bytes())
    }

    fn parse_prefix(&mut self) -> Result<(), RdfError> {
        self.pos += "@prefix".len();
        self.skip_ws();
        let mut name = String::new();
        while let Some(b) = self.peek() {
            if b == b':' {
                break;
            }
            if b.is_ascii_whitespace() {
                return Err(self.err("whitespace in prefix name"));
            }
            name.push(self.bump().unwrap() as char);
        }
        self.eat(b':')?;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.eat(b'.')?;
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_statement(&mut self, triples: &mut Vec<Triple>) -> Result<(), RdfError> {
        let subject = self.parse_term()?;
        if matches!(subject, Term::Literal(_)) {
            return Err(self.err("literal cannot be a subject"));
        }
        loop {
            // predicate-object list
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_term()?;
                triples.push(Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b';') => {
                    self.bump();
                    self.skip_ws();
                    // Trailing `;` before `.` is legal Turtle.
                    if self.peek() == Some(b'.') {
                        self.bump();
                        return Ok(());
                    }
                }
                Some(b'.') => {
                    self.bump();
                    return Ok(());
                }
                other => {
                    return Err(self.err(format!(
                        "expected ';' or '.', found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, RdfError> {
        self.skip_ws();
        // The `a` keyword must be followed by whitespace to avoid eating
        // prefixed names starting with "a".
        if self.peek() == Some(b'a') {
            let next = self.bytes.get(self.pos + 1).copied();
            if next.is_none() || next.is_some_and(|b| b.is_ascii_whitespace()) {
                self.bump();
                return Ok(Term::iri(rdf::TYPE));
            }
        }
        let t = self.parse_term()?;
        match t {
            Term::Iri(_) => Ok(t),
            _ => Err(self.err("predicate must be an IRI")),
        }
    }

    fn parse_term(&mut self) -> Result<Term, RdfError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref()?))),
            Some(b'"') => self.parse_literal(),
            Some(b'_') => self.parse_blank(),
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => self.parse_number(),
            Some(_) => {
                if self.starts_with("true") && !ident_continues(self.bytes, self.pos + 4) {
                    self.pos += 4;
                    return Ok(Term::Literal(Literal::boolean(true)));
                }
                if self.starts_with("false") && !ident_continues(self.bytes, self.pos + 5) {
                    self.pos += 5;
                    return Ok(Term::Literal(Literal::boolean(false)));
                }
                self.parse_prefixed_name()
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_iri_ref(&mut self) -> Result<String, RdfError> {
        self.eat(b'<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some(b'>') => return Ok(iri),
                Some(b'\n') | None => return Err(self.err("unterminated IRI")),
                Some(b) => iri.push(b as char),
            }
        }
    }

    fn parse_literal(&mut self) -> Result<Term, RdfError> {
        self.eat(b'"')?;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b'r') => value.push('\r'),
                    Some(b't') => value.push('\t'),
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    other => {
                        return Err(
                            self.err(format!("bad escape {:?}", other.map(|b| b as char)))
                        )
                    }
                },
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    if b < 0x80 {
                        value.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                        let s = std::str::from_utf8(slice)
                            .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                        value.push_str(s);
                        self.pos = end;
                    }
                }
                None => return Err(self.err("unterminated literal")),
            }
        }
        match self.peek() {
            Some(b'@') => {
                self.bump();
                let mut tag = String::new();
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        tag.push(self.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return Err(self.err("empty language tag"));
                }
                Ok(Term::Literal(Literal::lang(value, tag)))
            }
            Some(b'^') => {
                self.bump();
                self.eat(b'^')?;
                self.skip_ws();
                let dt = match self.peek() {
                    Some(b'<') => Iri::new(self.parse_iri_ref()?),
                    _ => match self.parse_prefixed_name()? {
                        Term::Iri(iri) => iri,
                        _ => return Err(self.err("datatype must be an IRI")),
                    },
                };
                Ok(Term::Literal(Literal::typed(value, dt)))
            }
            _ => Ok(Term::Literal(Literal::plain(value))),
        }
    }

    fn parse_blank(&mut self) -> Result<Term, RdfError> {
        self.eat(b'_')?;
        self.eat(b':')?;
        let mut label = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                label.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::Blank(BlankNode(label)))
    }

    fn parse_number(&mut self) -> Result<Term, RdfError> {
        let mut text = String::new();
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            text.push(self.bump().unwrap() as char);
        }
        let mut is_double = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => text.push(self.bump().unwrap() as char),
                b'.' => {
                    // A '.' only continues the number if a digit follows;
                    // otherwise it terminates the statement.
                    if self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
                        is_double = true;
                        text.push(self.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                b'e' | b'E' => {
                    is_double = true;
                    text.push(self.bump().unwrap() as char);
                    if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                        text.push(self.bump().unwrap() as char);
                    }
                }
                _ => break,
            }
        }
        let dt = if is_double { xsd::DOUBLE } else { xsd::INTEGER };
        // Validate the lexical form eagerly so malformed numbers fail at
        // parse time rather than at query time.
        if is_double {
            text.parse::<f64>().map_err(|_| self.err("invalid double"))?;
        } else {
            text.parse::<i64>().map_err(|_| self.err("invalid integer"))?;
        }
        Ok(Term::Literal(Literal::typed(text, Iri::new(dt))))
    }

    fn parse_prefixed_name(&mut self) -> Result<Term, RdfError> {
        let mut prefix = String::new();
        while let Some(b) = self.peek() {
            if b == b':' {
                break;
            }
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                prefix.push(self.bump().unwrap() as char);
            } else {
                return Err(self.err(format!("unexpected character '{}'", b as char)));
            }
        }
        self.eat(b':')?;
        let mut local = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                local.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.err(format!("unknown prefix '{prefix}:'")))?;
        Ok(Term::iri(format!("{ns}{local}")))
    }
}

fn ident_continues(bytes: &[u8], pos: usize) -> bool {
    bytes
        .get(pos)
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_triple() {
        let triples =
            parse_turtle("<http://e/s> <http://e/p> <http://e/o> .").unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].subject, Term::iri("http://e/s"));
    }

    #[test]
    fn parses_prefixed_names_and_a_keyword() {
        let doc = r#"
            @prefix ex: <http://example.org/> .
            ex:snow a dbont:Book ;
                dbont:writer res:Orhan_Pamuk .
        "#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].predicate, Term::iri(rdf::TYPE));
        assert_eq!(
            triples[1].object,
            Term::iri("http://dbpedia.org/resource/Orhan_Pamuk")
        );
    }

    #[test]
    fn parses_object_lists_and_literals() {
        let doc = r#"
            res:X rdfs:label "Snow"@en, "Kar"@tr ;
                dbont:height 1.98 ;
                dbont:pages 432 ;
                dbont:extinct false .
        "#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 5);
        let lits: Vec<_> = triples.iter().filter_map(|t| t.object.as_literal()).collect();
        assert!(lits.iter().any(|l| l.language() == Some("tr")));
        assert!(lits.iter().any(|l| l.as_f64() == Some(1.98)));
        assert!(lits.iter().any(|l| l.as_i64() == Some(432)));
        assert!(lits.iter().any(|l| l.lexical_form() == "false"));
    }

    #[test]
    fn parses_typed_literal_with_datatype() {
        let doc = r#"res:X dbont:birthDate "1952-06-07"^^xsd:date ."#;
        let triples = parse_turtle(doc).unwrap();
        let lit = triples[0].object.as_literal().unwrap();
        assert!(lit.is_date());
    }

    #[test]
    fn parses_escapes_and_comments() {
        let doc = "# comment line\nres:X rdfs:label \"a \\\"quoted\\\" name\" . # trailing\n";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(
            triples[0].object.as_literal().unwrap().lexical_form(),
            "a \"quoted\" name"
        );
    }

    #[test]
    fn parses_unicode_literals() {
        let doc = "res:X rdfs:label \"Kar — роман\" .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(
            triples[0].object.as_literal().unwrap().lexical_form(),
            "Kar — роман"
        );
    }

    #[test]
    fn parses_blank_nodes() {
        let doc = "_:b0 dbont:writer res:X .";
        let triples = parse_turtle(doc).unwrap();
        assert!(matches!(triples[0].subject, Term::Blank(_)));
    }

    #[test]
    fn rejects_unknown_prefix() {
        let err = parse_turtle("zzz:a zzz:b zzz:c .").unwrap_err();
        assert!(err.to_string().contains("unknown prefix"));
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse_turtle("\"lit\" dbont:p res:X .").is_err());
    }

    #[test]
    fn rejects_unterminated_literal() {
        assert!(parse_turtle("res:X rdfs:label \"oops .").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let doc = "res:A dbont:p res:B .\nres:C dbont:p \"bad\\q\" .";
        match parse_turtle(doc) {
            Err(RdfError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_through_serializer() {
        let doc = r#"
            res:Snow a dbont:Book ;
                dbont:writer res:Orhan_Pamuk ;
                rdfs:label "Snow"@en ;
                dbont:pages 432 .
        "#;
        let mut g = Graph::new();
        load_turtle(&mut g, doc).unwrap();
        let serialized = to_turtle(&g);
        let mut g2 = Graph::new();
        load_turtle(&mut g2, &serialized).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn trailing_semicolon_before_dot_is_legal() {
        let doc = "res:X a dbont:Book ; .";
        assert_eq!(parse_turtle(doc).unwrap().len(), 1);
    }

    #[test]
    fn load_counts_only_fresh_triples() {
        let mut g = Graph::new();
        let doc = "res:X a dbont:Book .";
        assert_eq!(load_turtle(&mut g, doc).unwrap(), 1);
        assert_eq!(load_turtle(&mut g, doc).unwrap(), 0);
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let doc = "res:X dbont:delta -12 ; dbont:eps 1.5e-3 .";
        let triples = parse_turtle(doc).unwrap();
        assert!(triples.iter().any(|t| t.object.as_literal().unwrap().as_i64() == Some(-12)));
        assert!(triples
            .iter()
            .any(|t| t.object.as_literal().unwrap().as_f64() == Some(0.0015)));
    }
}
