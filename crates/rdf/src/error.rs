//! Error type for the RDF layer.

use std::fmt;

/// Errors produced while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error with its 1-based source line.
    Parse { line: usize, message: String },
    /// A semantic constraint violation (e.g. literal in subject position
    /// reaching the store).
    Invalid(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            RdfError::Invalid(message) => write!(f, "invalid RDF: {message}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = RdfError::Parse { line: 3, message: "boom".into() };
        assert_eq!(e.to_string(), "parse error at line 3: boom");
    }

    #[test]
    fn invalid_display() {
        let e = RdfError::Invalid("nope".into());
        assert_eq!(e.to_string(), "invalid RDF: nope");
    }
}
