//! In-memory indexed triple store.
//!
//! The store keeps three **frozen flat permutation indexes** — sorted
//! `Vec<[u32; 3]>` arrays in SPO, POS and OSP order over interned term ids —
//! so that any triple pattern with a bound prefix resolves to one contiguous
//! slice located by two `partition_point` binary searches (Hexastore-lite:
//! three of the six permutations suffice when we do not need ordered results
//! on the unbound positions). Flat arrays replace the previous per-node
//! `BTreeSet` permutations: range scans become pointer-bump slice iteration
//! instead of tree walks, and cardinality estimates become exact O(log n)
//! instead of O(range length).
//!
//! Mutation goes through a small **delta overlay**: freshly inserted triples
//! land in mutable `BTreeSet` permutations, removals of frozen triples become
//! tombstones, and [`Graph::freeze`] (or automatic compaction once the
//! overlay outgrows a threshold) merges everything back into the flat arrays
//! with one linear pass. Readers see the union `frozen − dead ∪ delta`
//! through a zero-allocation merge iterator ([`ScanIter`]), so the
//! insert/remove API is unchanged while the hot read path stays flat.

use std::collections::btree_set;
use std::collections::BTreeSet;

use crate::interner::{Interner, TermId};
use crate::term::Term;

/// A concrete RDF triple (no variables).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: impl Into<Term>, predicate: impl Into<Term>, object: impl Into<Term>) -> Self {
        let t = Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        };
        debug_assert!(
            t.subject.is_concrete() && t.predicate.is_concrete() && t.object.is_concrete(),
            "stored triples must not contain variables"
        );
        t
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An id-level triple, the store's internal currency.
pub type IdTriple = (TermId, TermId, TermId);

/// Which positions of a pattern are bound; used for index selection and by
/// the SPARQL planner's selectivity heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdPattern {
    pub subject: Option<TermId>,
    pub predicate: Option<TermId>,
    pub object: Option<TermId>,
}

impl IdPattern {
    pub fn bound_count(&self) -> u32 {
        self.subject.is_some() as u32
            + self.predicate.is_some() as u32
            + self.object.is_some() as u32
    }
}

// Permutation indexes into the `frozen`/`delta`/`dead` arrays.
const SPO: usize = 0;
const POS: usize = 1;
const OSP: usize = 2;

/// Reorders an SPO triple into the key layout of one permutation.
#[inline]
fn permute(perm: usize, s: u32, p: u32, o: u32) -> [u32; 3] {
    match perm {
        SPO => [s, p, o],
        POS => [p, o, s],
        _ => [o, s, p],
    }
}

/// Recovers the SPO reading of a permuted key.
#[inline]
fn unpermute(perm: usize, k: [u32; 3]) -> IdTriple {
    let (s, p, o) = match perm {
        SPO => (k[0], k[1], k[2]),
        POS => (k[2], k[0], k[1]),
        _ => (k[1], k[2], k[0]),
    };
    (TermId(s), TermId(p), TermId(o))
}

/// Routes a pattern to the permutation whose sort order turns its bound
/// positions into a range prefix: `s??`/`sp?` → SPO, `?p?`/`?po` → POS,
/// `??o`/`s?o` → OSP, `spo` → SPO point probe, `???` → full SPO scan.
/// Returns `(permutation, permuted key, prefix length)`.
#[inline]
fn route(pattern: IdPattern) -> (usize, [u32; 3], usize) {
    let IdPattern { subject, predicate, object } = pattern;
    match (subject, predicate, object) {
        (Some(s), Some(p), Some(o)) => (SPO, [s.0, p.0, o.0], 3),
        (Some(s), Some(p), None) => (SPO, [s.0, p.0, 0], 2),
        (Some(s), None, Some(o)) => (OSP, [o.0, s.0, 0], 2),
        (Some(s), None, None) => (SPO, [s.0, 0, 0], 1),
        (None, Some(p), Some(o)) => (POS, [p.0, o.0, 0], 2),
        (None, Some(p), None) => (POS, [p.0, 0, 0], 1),
        (None, None, Some(o)) => (OSP, [o.0, 0, 0], 1),
        (None, None, None) => (SPO, [0, 0, 0], 0),
    }
}

/// The SPO position (0 = subject, 1 = predicate, 2 = object) that a scan of
/// `pattern` is primarily sorted by: the first *free* component of the routed
/// permutation. `None` for a fully bound point probe. This is the sortedness
/// fact merge joins build on — [`Graph::scan_iter`] and [`FrozenProbe`] both
/// yield a pattern's matches ascending by this position's term id.
pub fn sort_major_position(pattern: IdPattern) -> Option<usize> {
    let (perm, _, prefix_len) = route(pattern);
    if prefix_len == 3 {
        return None;
    }
    // Component order of each permutation, expressed as SPO positions.
    const ORDER: [[usize; 3]; 3] = [[0, 1, 2], [1, 2, 0], [2, 0, 1]];
    Some(ORDER[perm][prefix_len])
}

/// The contiguous `[lo, hi)` slice of a sorted flat index whose entries start
/// with `key[..len]` — two `partition_point` binary searches, O(log n).
#[inline]
fn prefix_bounds(index: &[[u32; 3]], key: [u32; 3], len: usize) -> (usize, usize) {
    if len == 0 {
        return (0, index.len());
    }
    let prefix = &key[..len];
    let lo = index.partition_point(|t| t[..len] < *prefix);
    let hi = lo + index[lo..].partition_point(|t| t[..len] == *prefix);
    (lo, hi)
}

/// The overlay entries matching a prefix, as a sorted `BTreeSet` range.
#[inline]
fn overlay_range(set: &BTreeSet<[u32; 3]>, key: [u32; 3], len: usize) -> btree_set::Range<'_, [u32; 3]> {
    let mut lo = [0u32; 3];
    let mut hi = [u32::MAX; 3];
    lo[..len].copy_from_slice(&key[..len]);
    hi[..len].copy_from_slice(&key[..len]);
    set.range(lo..=hi)
}

#[derive(Debug, Default)]
pub struct Graph {
    interner: Interner,
    /// Flat sorted permutation indexes (SPO/POS/OSP), rebuilt on compaction.
    frozen: [Vec<[u32; 3]>; 3],
    /// Inserted triples not yet merged into `frozen` (disjoint from it).
    delta: [BTreeSet<[u32; 3]>; 3],
    /// Tombstones for removed frozen triples (always a subset of `frozen`).
    dead: [BTreeSet<[u32; 3]>; 3],
    /// Completed overlay merges (explicit `freeze()` calls that did work
    /// plus automatic compactions).
    compactions: u64,
    /// Wall-clock cost of the most recent merge, in nanoseconds.
    last_freeze_nanos: u64,
}

/// Point-in-time store health, the payload behind the `store.*` gauges and
/// `GET /debug/store`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Entries in the frozen SPO index (including tombstoned ones).
    pub frozen_triples: usize,
    /// Live triple count (`frozen − dead ∪ delta`).
    pub triples: usize,
    /// Pending overlay entries (inserts + tombstones) awaiting a merge.
    pub overlay_len: usize,
    /// Tombstoned frozen triples awaiting compaction.
    pub tombstones: usize,
    /// Completed overlay merges since construction.
    pub compactions: u64,
    /// Duration of the most recent merge in nanoseconds (0 if never frozen).
    pub last_freeze_nanos: u64,
}

impl Graph {
    /// Overlay size floor below which compaction never triggers; above it the
    /// threshold grows with the frozen index so bulk loads amortize to O(n)
    /// total merge work (each compaction grows the index geometrically).
    const MIN_COMPACT_OVERLAY: usize = 4096;

    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples stored.
    pub fn len(&self) -> usize {
        self.frozen[SPO].len() + self.delta[SPO].len() - self.dead[SPO].len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of overlay entries (pending inserts + tombstones) not yet
    /// merged into the frozen flat indexes. Zero after [`Graph::freeze`].
    pub fn overlay_len(&self) -> usize {
        self.delta[SPO].len() + self.dead[SPO].len()
    }

    /// Access to the interner for id↔term translation.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interns a term (for building id-level patterns ahead of a scan).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.interner.intern(term)
    }

    /// Pre-sizes the interner for an expected number of distinct terms
    /// (bulk-load hint; see [`Interner::reserve`]).
    pub fn reserve_terms(&mut self, additional: usize) {
        self.interner.reserve(additional);
    }

    /// Looks up a term's id without interning. A miss means the term occurs
    /// nowhere in the graph, so any pattern binding it matches nothing.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.interner.intern(&triple.subject).0;
        let p = self.interner.intern(&triple.predicate).0;
        let o = self.interner.intern(&triple.object).0;
        self.insert_ids(s, p, o)
    }

    fn insert_ids(&mut self, s: u32, p: u32, o: u32) -> bool {
        let key = [s, p, o];
        if self.frozen[SPO].binary_search(&key).is_ok() {
            // Already frozen: present unless tombstoned; re-insert resurrects.
            if self.dead[SPO].remove(&key) {
                self.dead[POS].remove(&permute(POS, s, p, o));
                self.dead[OSP].remove(&permute(OSP, s, p, o));
                return true;
            }
            return false;
        }
        let fresh = self.delta[SPO].insert(key);
        if fresh {
            self.delta[POS].insert(permute(POS, s, p, o));
            self.delta[OSP].insert(permute(OSP, s, p, o));
            self.maybe_compact();
        }
        fresh
    }

    /// Convenience: insert from raw terms.
    pub fn add(
        &mut self,
        subject: impl Into<Term>,
        predicate: impl Into<Term>,
        object: impl Into<Term>,
    ) -> bool {
        self.insert(&Triple::new(subject, predicate, object))
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let (s, p, o) = (s.0, p.0, o.0);
        let key = [s, p, o];
        if self.delta[SPO].remove(&key) {
            self.delta[POS].remove(&permute(POS, s, p, o));
            self.delta[OSP].remove(&permute(OSP, s, p, o));
            return true;
        }
        if self.frozen[SPO].binary_search(&key).is_ok() && self.dead[SPO].insert(key) {
            self.dead[POS].insert(permute(POS, s, p, o));
            self.dead[OSP].insert(permute(OSP, s, p, o));
            self.maybe_compact();
            return true;
        }
        false
    }

    /// Membership test at the term level.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => {
                let key = [s.0, p.0, o.0];
                self.delta[SPO].contains(&key)
                    || (self.frozen[SPO].binary_search(&key).is_ok()
                        && !self.dead[SPO].contains(&key))
            }
            _ => false,
        }
    }

    /// Merges the delta overlay and tombstones into the frozen flat indexes
    /// (one linear three-way merge per permutation). Idempotent; afterwards
    /// every scan is pure slice iteration and every estimate is two binary
    /// searches. Called automatically once the overlay outgrows
    /// `max(4096, frozen/4)` entries, and by bulk-build paths.
    pub fn freeze(&mut self) {
        if self.delta[SPO].is_empty() && self.dead[SPO].is_empty() {
            return;
        }
        let started = std::time::Instant::now();
        let frozen_before = self.frozen[SPO].len();
        let (delta_len, dead_len) = (self.delta[SPO].len(), self.dead[SPO].len());
        for perm in [SPO, POS, OSP] {
            let delta = std::mem::take(&mut self.delta[perm]);
            let dead = std::mem::take(&mut self.dead[perm]);
            let frozen = std::mem::take(&mut self.frozen[perm]);
            let mut merged = Vec::with_capacity(frozen.len() + delta.len() - dead.len());
            let mut delta_it = delta.iter().peekable();
            let mut dead_it = dead.iter().peekable();
            for key in frozen {
                while delta_it.peek().is_some_and(|&&d| d < key) {
                    merged.push(*delta_it.next().expect("peeked"));
                }
                if dead_it.peek() == Some(&&key) {
                    dead_it.next();
                    continue;
                }
                merged.push(key);
            }
            merged.extend(delta_it.copied());
            self.frozen[perm] = merged;
        }
        let nanos = started.elapsed().as_nanos() as u64;
        self.compactions += 1;
        self.last_freeze_nanos = nanos;
        relpat_obs::counter!("store.compactions");
        relpat_obs::jevent!(
            relpat_obs::Level::Info,
            "store.compact",
            "frozen_before" => frozen_before,
            "frozen_after" => self.frozen[SPO].len(),
            "delta" => delta_len,
            "tombstones" => dead_len,
            "nanos" => nanos,
        );
    }

    /// Point-in-time store health (frozen/overlay/tombstone sizes, merge
    /// count and cost) — the source for the `store.*` gauges.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            frozen_triples: self.frozen[SPO].len(),
            triples: self.len(),
            overlay_len: self.overlay_len(),
            tombstones: self.dead[SPO].len(),
            compactions: self.compactions,
            last_freeze_nanos: self.last_freeze_nanos,
        }
    }

    fn maybe_compact(&mut self) {
        let threshold = Self::MIN_COMPACT_OVERLAY.max(self.frozen[SPO].len() / 4);
        if self.overlay_len() > threshold {
            self.freeze();
        }
    }

    /// Id-level pattern scan as a zero-allocation streaming iterator: the
    /// frozen slice addressed by two `partition_point` searches, merged with
    /// the (usually empty) delta range, minus tombstones. Yields `(s, p, o)`
    /// ids in the canonical order of the chosen permutation.
    pub fn scan_iter(&self, pattern: IdPattern) -> ScanIter<'_> {
        let (perm, key, len) = route(pattern);
        let (lo, hi) = prefix_bounds(&self.frozen[perm], key, len);
        let mut delta = overlay_range(&self.delta[perm], key, len);
        let mut dead = overlay_range(&self.dead[perm], key, len);
        let delta_next = delta.next();
        let dead_next = dead.next();
        ScanIter {
            perm,
            frozen: self.frozen[perm][lo..hi].iter(),
            delta,
            delta_next,
            dead,
            dead_next,
        }
    }

    /// Id-level pattern scan, materialized. Prefer [`Graph::scan_iter`] in
    /// inner loops; this remains for callers that need an owned result.
    pub fn scan(&self, pattern: IdPattern) -> Vec<IdTriple> {
        self.scan_iter(pattern).collect()
    }

    /// Routes a pattern *shape* (only the `Some`/`None` skeleton matters) to
    /// its frozen permutation index for batched prefix probes: callers build
    /// a permuted key per concrete pattern via [`FrozenProbe::key`] and
    /// locate each key's slice with [`FrozenProbe::bounds_from`], reusing
    /// sorted-key monotonicity to shrink every search tail.
    ///
    /// Returns `None` while the overlay holds pending inserts or tombstones:
    /// raw slice access cannot see them, so callers must fall back to the
    /// merging [`Graph::scan_iter`].
    pub fn frozen_probe(&self, shape: IdPattern) -> Option<FrozenProbe<'_>> {
        if self.overlay_len() != 0 {
            return None;
        }
        let (perm, _, prefix_len) = route(shape);
        Some(FrozenProbe { index: &self.frozen[perm], perm, prefix_len })
    }

    /// Exact number of matches for a pattern, used by the query planner.
    /// On a frozen graph this is two `partition_point` binary searches —
    /// O(log n) with no range walking. With a live overlay it additionally
    /// counts the (threshold-bounded) delta/tombstone entries in the range,
    /// staying exact across insert/remove/freeze interleavings.
    pub fn estimate(&self, pattern: IdPattern) -> usize {
        let (perm, key, len) = route(pattern);
        let (lo, hi) = prefix_bounds(&self.frozen[perm], key, len);
        let mut n = hi - lo;
        if !self.delta[perm].is_empty() {
            n += overlay_range(&self.delta[perm], key, len).count();
        }
        if !self.dead[perm].is_empty() {
            n -= overlay_range(&self.dead[perm], key, len).count();
        }
        n
    }

    /// Term-level pattern scan: `None` positions are wildcards. Converts ids
    /// back to terms; prefer [`Graph::scan_iter`] in inner loops.
    pub fn triples_matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let to_id = |t: Option<&Term>| -> Result<Option<TermId>, ()> {
            match t {
                None => Ok(None),
                Some(term) => match self.interner.get(term) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()), // unknown term: zero matches
                },
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (to_id(subject), to_id(predicate), to_id(object)) else {
            return Vec::new();
        };
        self.scan_iter(IdPattern { subject: s, predicate: p, object: o })
            .map(|(s, p, o)| Triple {
                subject: self.interner.resolve(s).clone(),
                predicate: self.interner.resolve(p).clone(),
                object: self.interner.resolve(o).clone(),
            })
            .collect()
    }

    /// All objects of `(subject, predicate, ?)`.
    pub fn objects_of(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .into_iter()
            .map(|t| t.object)
            .collect()
    }

    /// All subjects of `(?, predicate, object)`.
    pub fn subjects_with(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        self.triples_matching(None, Some(predicate), Some(object))
            .into_iter()
            .map(|t| t.subject)
            .collect()
    }

    /// The set of distinct predicates in the graph, in id order. Skips from
    /// one distinct predicate to the next with a `partition_point` gallop
    /// over the frozen POS index — O(#predicates · log n), never a full
    /// index walk.
    pub fn predicates(&self) -> Vec<Term> {
        let pos = &self.frozen[POS];
        let mut ids: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < pos.len() {
            let p = pos[i][0];
            ids.push(p);
            i += pos[i..].partition_point(|t| t[0] == p);
        }
        // Overlay inserts may introduce predicates the frozen index lacks
        // (`ids` stays sorted, so binary insertion preserves id order).
        for t in &self.delta[POS] {
            if let Err(at) = ids.binary_search(&t[0]) {
                ids.insert(at, t[0]);
            }
        }
        // Tombstones may have emptied a predicate entirely.
        if !self.dead[POS].is_empty() {
            ids.retain(|&p| {
                self.estimate(IdPattern {
                    subject: None,
                    predicate: Some(TermId(p)),
                    object: None,
                }) > 0
            });
        }
        ids.into_iter().map(|p| self.interner.resolve(TermId(p)).clone()).collect()
    }

    /// Iterates over all triples at the term level (SPO order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.scan_iter(IdPattern { subject: None, predicate: None, object: None }).map(
            |(s, p, o)| Triple {
                subject: self.interner.resolve(s).clone(),
                predicate: self.interner.resolve(p).clone(),
                object: self.interner.resolve(o).clone(),
            },
        )
    }
}

/// Zero-allocation streaming scan over one permutation index: a sorted
/// frozen slice merged with the sorted delta range, minus tombstones.
/// Yields `(s, p, o)` ids in the permutation's canonical order.
pub struct ScanIter<'a> {
    perm: usize,
    frozen: std::slice::Iter<'a, [u32; 3]>,
    delta: btree_set::Range<'a, [u32; 3]>,
    delta_next: Option<&'a [u32; 3]>,
    dead: btree_set::Range<'a, [u32; 3]>,
    dead_next: Option<&'a [u32; 3]>,
}

impl Iterator for ScanIter<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        loop {
            // Take the smaller head of the two sorted streams (they are
            // disjoint by construction: delta never duplicates frozen).
            let take_frozen = match (self.frozen.as_slice().first(), self.delta_next) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(f), Some(d)) => f < d,
            };
            let key = if take_frozen {
                let key = *self.frozen.next().expect("peeked frozen head");
                // Tombstones are a sorted subset of the frozen stream, so one
                // forward pointer suffices to filter them out.
                while self.dead_next.is_some_and(|d| *d < key) {
                    self.dead_next = self.dead.next();
                }
                if self.dead_next.is_some_and(|d| *d == key) {
                    self.dead_next = self.dead.next();
                    continue;
                }
                key
            } else {
                let key = *self.delta_next.expect("checked above");
                self.delta_next = self.delta.next();
                key
            };
            return Some(unpermute(self.perm, key));
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let frozen = self.frozen.as_slice().len();
        let delta = self.delta_next.is_some() as usize;
        // Tombstones can only shrink the frozen stream.
        (delta, Some(frozen + delta + self.delta.size_hint().1.unwrap_or(0)))
    }
}

/// A read-only handle on one frozen permutation index, routed for a fixed
/// pattern shape. Obtained from [`Graph::frozen_probe`], which refuses to
/// hand one out while the delta/tombstone overlay is non-empty — the whole
/// point of the type is raw sorted-slice access without overlay merging.
#[derive(Debug, Clone, Copy)]
pub struct FrozenProbe<'a> {
    index: &'a [[u32; 3]],
    perm: usize,
    prefix_len: usize,
}

impl FrozenProbe<'_> {
    /// Number of bound positions in the routed shape (the permuted key
    /// prefix length searches compare on).
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Entries in the underlying permutation index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The permuted search key for a concrete pattern of this probe's shape.
    pub fn key(&self, pattern: IdPattern) -> [u32; 3] {
        let (perm, key, len) = route(pattern);
        debug_assert_eq!(
            (perm, len),
            (self.perm, self.prefix_len),
            "pattern shape must match the probe's routed shape"
        );
        key
    }

    /// `[lo, hi)` bounds of the entries whose first `prefix_len` components
    /// equal `key`'s, searching only `[from..]`. Callers probing keys in
    /// ascending order pass the previous range's end as `from`, so each
    /// `partition_point` pair gallops over a strictly shrinking tail.
    pub fn bounds_from(&self, from: usize, key: [u32; 3]) -> (usize, usize) {
        let (lo, hi) = prefix_bounds(&self.index[from..], key, self.prefix_len);
        (from + lo, from + hi)
    }

    /// The SPO reading of index entry `i`.
    pub fn triple(&self, i: usize) -> IdTriple {
        unpermute(self.perm, self.index[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{dbont, rdf, res};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        let snow = Term::iri(res::iri("Snow"));
        let museum = Term::iri(res::iri("The Museum of Innocence"));
        let writer = Term::iri(dbont::iri("writer"));
        let book = Term::iri(dbont::iri("Book"));
        let ty = Term::iri(rdf::TYPE);
        g.add(snow.clone(), ty.clone(), book.clone());
        g.add(museum.clone(), ty.clone(), book.clone());
        g.add(snow.clone(), writer.clone(), pamuk.clone());
        g.add(museum, writer, pamuk);
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(g.insert(&t));
        assert!(!g.insert(&t));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_and_remove() {
        let mut g = Graph::new();
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(!g.contains(&t));
        g.insert(&t);
        assert!(g.contains(&t));
        assert!(g.remove(&t));
        assert!(!g.contains(&t));
        assert!(!g.remove(&t));
        assert!(g.is_empty());
    }

    #[test]
    fn all_eight_pattern_shapes_agree() {
        let g = sample_graph();
        let snow = Term::iri(res::iri("Snow"));
        let writer = Term::iri(dbont::iri("writer"));
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));

        // ???
        assert_eq!(g.triples_matching(None, None, None).len(), 4);
        // s??
        assert_eq!(g.triples_matching(Some(&snow), None, None).len(), 2);
        // ?p?
        assert_eq!(g.triples_matching(None, Some(&writer), None).len(), 2);
        // ??o
        assert_eq!(g.triples_matching(None, None, Some(&pamuk)).len(), 2);
        // sp?
        assert_eq!(g.triples_matching(Some(&snow), Some(&writer), None).len(), 1);
        // ?po
        assert_eq!(g.triples_matching(None, Some(&writer), Some(&pamuk)).len(), 2);
        // s?o
        assert_eq!(g.triples_matching(Some(&snow), None, Some(&pamuk)).len(), 1);
        // spo
        assert_eq!(
            g.triples_matching(Some(&snow), Some(&writer), Some(&pamuk)).len(),
            1
        );
    }

    #[test]
    fn scan_returns_canonical_spo_order_of_ids() {
        let g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        for (s, p, o) in g.scan(IdPattern { subject: None, predicate: Some(writer), object: None })
        {
            assert_eq!(p, writer);
            assert!(g.term(s).as_iri().is_some());
            assert!(g.term(o).as_iri().is_some());
        }
    }

    #[test]
    fn unknown_term_matches_nothing() {
        let g = sample_graph();
        let ghost = Term::iri("http://nowhere/x");
        assert!(g.triples_matching(Some(&ghost), None, None).is_empty());
    }

    #[test]
    fn estimate_matches_scan_cardinality() {
        let g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        let snow = g.term_id(&Term::iri(res::iri("Snow"))).unwrap();
        for pat in [
            IdPattern { subject: None, predicate: None, object: None },
            IdPattern { subject: Some(snow), predicate: None, object: None },
            IdPattern { subject: None, predicate: Some(writer), object: None },
            IdPattern { subject: Some(snow), predicate: Some(writer), object: None },
        ] {
            assert_eq!(g.estimate(pat), g.scan(pat).len());
        }
    }

    #[test]
    fn helpers_objects_and_subjects() {
        let g = sample_graph();
        let snow = Term::iri(res::iri("Snow"));
        let writer = Term::iri(dbont::iri("writer"));
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        assert_eq!(g.objects_of(&snow, &writer), vec![pamuk.clone()]);
        let mut subs = g.subjects_with(&writer, &pamuk);
        subs.sort();
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn predicates_are_deduplicated() {
        let g = sample_graph();
        let preds = g.predicates();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn iter_yields_all_triples() {
        let g = sample_graph();
        assert_eq!(g.iter().count(), g.len());
        for t in g.iter() {
            assert!(g.contains(&t));
        }
    }

    #[test]
    fn literals_and_iris_do_not_collide_in_indexes() {
        let mut g = Graph::new();
        g.add(Term::iri("s"), Term::iri("p"), Term::literal("o"));
        g.add(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.triples_matching(None, None, Some(&Term::literal("o"))).len(),
            1
        );
    }

    // ------------------------------------------------- frozen/overlay layer

    /// Every pattern shape over (subject, predicate, object) id options.
    fn all_shapes(s: TermId, p: TermId, o: TermId) -> [IdPattern; 8] {
        let some = [Some(s), Some(p), Some(o)];
        let mut shapes = [IdPattern { subject: None, predicate: None, object: None }; 8];
        for (i, shape) in shapes.iter_mut().enumerate() {
            *shape = IdPattern {
                subject: (i & 1 != 0).then_some(some[0].unwrap()),
                predicate: (i & 2 != 0).then_some(some[1].unwrap()),
                object: (i & 4 != 0).then_some(some[2].unwrap()),
            };
        }
        shapes
    }

    #[test]
    fn freeze_is_idempotent_and_preserves_scans() {
        let mut g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        let snow = g.term_id(&Term::iri(res::iri("Snow"))).unwrap();
        let pamuk = g.term_id(&Term::iri(res::iri("Orhan Pamuk"))).unwrap();
        let before: Vec<Vec<IdTriple>> =
            all_shapes(snow, writer, pamuk).iter().map(|&pat| g.scan(pat)).collect();
        assert!(g.overlay_len() > 0);
        g.freeze();
        assert_eq!(g.overlay_len(), 0);
        g.freeze(); // idempotent
        let after: Vec<Vec<IdTriple>> =
            all_shapes(snow, writer, pamuk).iter().map(|&pat| g.scan(pat)).collect();
        assert_eq!(before, after);
        for &pat in &all_shapes(snow, writer, pamuk) {
            assert_eq!(g.estimate(pat), g.scan(pat).len());
        }
    }

    #[test]
    fn tombstone_then_resurrect_round_trips() {
        let mut g = sample_graph();
        g.freeze();
        let t = Triple::new(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("writer")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        let len = g.len();
        assert!(g.remove(&t)); // tombstones a frozen triple
        assert!(!g.contains(&t));
        assert_eq!(g.len(), len - 1);
        assert!(g.insert(&t)); // resurrect clears the tombstone
        assert!(g.contains(&t));
        assert_eq!(g.len(), len);
        assert_eq!(g.overlay_len(), 0, "resurrection must not leave overlay residue");
    }

    #[test]
    fn overlay_scan_merges_in_sorted_order() {
        let mut g = Graph::new();
        // Interleave so ids do not arrive pre-sorted, then freeze half.
        for i in [5u32, 1, 9, 3] {
            g.add(Term::iri(format!("s{i}")), Term::iri("p"), Term::iri(format!("o{i}")));
        }
        g.freeze();
        for i in [4u32, 0, 7] {
            g.add(Term::iri(format!("s{i}")), Term::iri("p"), Term::iri(format!("o{i}")));
        }
        let p = g.term_id(&Term::iri("p")).unwrap();
        let scan = g.scan(IdPattern { subject: None, predicate: Some(p), object: None });
        assert_eq!(scan.len(), 7);
        // POS order: sorted by (p, o, s) — objects ascending by id.
        let objects: Vec<u32> = scan.iter().map(|&(_, _, o)| o.0).collect();
        let mut sorted = objects.clone();
        sorted.sort_unstable();
        assert_eq!(objects, sorted, "merged scan must keep permutation order");
    }

    #[test]
    fn estimate_is_exact_across_overlay_states() {
        let mut g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        let snow = g.term_id(&Term::iri(res::iri("Snow"))).unwrap();
        let pamuk = g.term_id(&Term::iri(res::iri("Orhan Pamuk"))).unwrap();
        let check = |g: &Graph| {
            for &pat in &all_shapes(snow, writer, pamuk) {
                assert_eq!(g.estimate(pat), g.scan(pat).len(), "pattern {pat:?}");
            }
        };
        check(&g); // pure delta
        g.freeze();
        check(&g); // pure frozen
        let t = Triple::new(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("writer")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        g.remove(&t);
        check(&g); // frozen + tombstone
        g.add(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("writer")),
            Term::iri(res::iri("Stanislaw Lem")),
        );
        check(&g); // frozen + tombstone + delta
    }

    #[test]
    fn auto_compaction_triggers_on_bulk_load() {
        let mut g = Graph::new();
        let n = Graph::MIN_COMPACT_OVERLAY + 10;
        for i in 0..n {
            g.add(Term::iri(format!("s{i}")), Term::iri("p"), Term::iri(format!("o{i}")));
        }
        assert!(
            g.overlay_len() < n,
            "bulk load must compact: overlay still holds {}",
            g.overlay_len()
        );
        assert_eq!(g.len(), n);
        let p = g.term_id(&Term::iri("p")).unwrap();
        assert_eq!(
            g.estimate(IdPattern { subject: None, predicate: Some(p), object: None }),
            n
        );
    }

    #[test]
    fn predicates_skip_works_on_frozen_and_overlay() {
        let mut g = sample_graph();
        g.freeze();
        assert_eq!(g.predicates().len(), 2);
        // A predicate that only exists in the overlay.
        g.add(Term::iri("a"), Term::iri("newpred"), Term::iri("b"));
        assert_eq!(g.predicates().len(), 3);
        // Tombstoning every triple of a predicate removes it from the list.
        let writer = Term::iri(dbont::iri("writer"));
        for t in g.triples_matching(None, Some(&writer), None) {
            g.remove(&t);
        }
        assert_eq!(g.predicates().len(), 2);
    }

    #[test]
    fn stats_track_freeze_and_compaction_lifecycle() {
        let mut g = sample_graph();
        let s = g.stats();
        assert_eq!((s.frozen_triples, s.overlay_len, s.tombstones, s.compactions), (0, 4, 0, 0));
        assert_eq!(s.triples, 4);
        assert_eq!(s.last_freeze_nanos, 0);
        g.freeze();
        let s = g.stats();
        assert_eq!((s.frozen_triples, s.overlay_len, s.compactions), (4, 0, 1));
        assert!(s.last_freeze_nanos > 0, "freeze must record its cost");
        g.freeze(); // idempotent no-op: no merge happened, count unchanged
        assert_eq!(g.stats().compactions, 1);
        let t = Triple::new(
            Term::iri(res::iri("Snow")),
            Term::iri(dbont::iri("writer")),
            Term::iri(res::iri("Orhan Pamuk")),
        );
        g.remove(&t);
        let s = g.stats();
        assert_eq!((s.tombstones, s.overlay_len), (1, 1));
        assert_eq!(s.triples, 3);
        assert_eq!(s.frozen_triples, 4, "tombstoned entries stay frozen until merged");
        g.freeze();
        let s = g.stats();
        assert_eq!((s.frozen_triples, s.tombstones, s.compactions), (3, 0, 2));
    }

    #[test]
    fn freeze_emits_a_compaction_journal_event() {
        let journal = relpat_obs::global_journal();
        let before = journal.emitted();
        let mut g = sample_graph();
        g.freeze();
        assert!(journal.emitted() > before, "freeze must journal the merge");
        let event = journal
            .tail(64)
            .into_iter()
            .rev()
            .find(|e| e.stage == "store.compact")
            .expect("store.compact event");
        let field = |k: &str| {
            event.fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()).unwrap_or_default()
        };
        assert_eq!(field("frozen_before"), "0");
        assert_eq!(field("frozen_after"), "4");
        assert_eq!(field("delta"), "4");
        assert_eq!(field("tombstones"), "0");
        assert!(field("nanos").parse::<u64>().unwrap() > 0);
    }

    #[test]
    fn sort_major_position_matches_scan_order() {
        let mut g = Graph::new();
        for i in [4u32, 1, 7, 2] {
            for j in [3u32, 0, 5] {
                g.add(
                    Term::iri(format!("s{i}")),
                    Term::iri(format!("p{j}")),
                    Term::iri(format!("o{}", (i + j) % 4)),
                );
            }
        }
        g.freeze();
        let s = g.term_id(&Term::iri("s4")).unwrap();
        let p = g.term_id(&Term::iri("p3")).unwrap();
        let o = g.term_id(&Term::iri("o3")).unwrap();
        for &pat in &all_shapes(s, p, o) {
            let major = sort_major_position(pat);
            if pat.bound_count() == 3 {
                assert_eq!(major, None);
                continue;
            }
            let major = major.expect("non-point patterns have a sort-major position");
            // The routed major position must be a free one, and the scan
            // must come back ascending by it.
            let bound = [pat.subject, pat.predicate, pat.object];
            assert!(bound[major].is_none(), "major position must be free: {pat:?}");
            let ids: Vec<u32> = g
                .scan(pat)
                .iter()
                .map(|&(s, p, o)| [s.0, p.0, o.0][major])
                .collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "scan of {pat:?} not sorted on position {major}");
        }
    }

    #[test]
    fn frozen_probe_bounds_match_scan() {
        let mut g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        let snow = g.term_id(&Term::iri(res::iri("Snow"))).unwrap();
        let pamuk = g.term_id(&Term::iri(res::iri("Orhan Pamuk"))).unwrap();
        assert!(
            g.frozen_probe(IdPattern { subject: None, predicate: None, object: None }).is_none(),
            "a live overlay must refuse raw probes"
        );
        g.freeze();
        for &pat in &all_shapes(snow, writer, pamuk) {
            let probe = g.frozen_probe(pat).expect("frozen graph probes");
            let key = probe.key(pat);
            let (lo, hi) = probe.bounds_from(0, key);
            let via_probe: Vec<IdTriple> = (lo..hi).map(|i| probe.triple(i)).collect();
            assert_eq!(via_probe, g.scan(pat), "probe slice must equal scan for {pat:?}");
            // Restarting the search mid-index at the slice's own start
            // finds the same bounds (the tail-shrinking contract).
            assert_eq!(probe.bounds_from(lo, key), (lo, hi));
        }
    }

    #[test]
    fn scan_iter_matches_scan_everywhere() {
        let mut g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        let snow = g.term_id(&Term::iri(res::iri("Snow"))).unwrap();
        let pamuk = g.term_id(&Term::iri(res::iri("Orhan Pamuk"))).unwrap();
        g.freeze();
        g.add(Term::iri(res::iri("Snow")), Term::iri(dbont::iri("writer")), Term::iri("x"));
        for &pat in &all_shapes(snow, writer, pamuk) {
            let streamed: Vec<IdTriple> = g.scan_iter(pat).collect();
            assert_eq!(streamed, g.scan(pat));
        }
    }
}
