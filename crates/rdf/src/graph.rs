//! In-memory indexed triple store.
//!
//! The store maintains three sorted permutations of every triple — SPO, POS
//! and OSP — over interned term ids, so that any triple pattern with at least
//! one bound position resolves to a contiguous range scan of one index. This
//! is the classic design of in-memory RDF stores (Hexastore-lite: three of
//! the six permutations suffice when we do not need ordered results on the
//! unbound positions).

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::interner::{Interner, TermId};
use crate::term::Term;

/// A concrete RDF triple (no variables).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: impl Into<Term>, predicate: impl Into<Term>, object: impl Into<Term>) -> Self {
        let t = Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        };
        debug_assert!(
            t.subject.is_concrete() && t.predicate.is_concrete() && t.object.is_concrete(),
            "stored triples must not contain variables"
        );
        t
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An id-level triple, the store's internal currency.
pub type IdTriple = (TermId, TermId, TermId);

/// Which positions of a pattern are bound; used for index selection and by
/// the SPARQL planner's selectivity heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdPattern {
    pub subject: Option<TermId>,
    pub predicate: Option<TermId>,
    pub object: Option<TermId>,
}

impl IdPattern {
    pub fn bound_count(&self) -> u32 {
        self.subject.is_some() as u32
            + self.predicate.is_some() as u32
            + self.object.is_some() as u32
    }
}

#[derive(Debug, Default)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
}

impl Graph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples stored.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Access to the interner for id↔term translation.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interns a term (for building id-level patterns ahead of a scan).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.interner.intern(term)
    }

    /// Looks up a term's id without interning. A miss means the term occurs
    /// nowhere in the graph, so any pattern binding it matches nothing.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.interner.intern(&triple.subject).0;
        let p = self.interner.intern(&triple.predicate).0;
        let o = self.interner.intern(&triple.object).0;
        let fresh = self.spo.insert((s, p, o));
        if fresh {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        fresh
    }

    /// Convenience: insert from raw terms.
    pub fn add(
        &mut self,
        subject: impl Into<Term>,
        predicate: impl Into<Term>,
        object: impl Into<Term>,
    ) -> bool {
        self.insert(&Triple::new(subject, predicate, object))
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let present = self.spo.remove(&(s.0, p.0, o.0));
        if present {
            self.pos.remove(&(p.0, o.0, s.0));
            self.osp.remove(&(o.0, s.0, p.0));
        }
        present
    }

    /// Membership test at the term level.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s.0, p.0, o.0)),
            _ => false,
        }
    }

    /// Id-level pattern scan. Returns matching triples as `(s, p, o)` ids.
    ///
    /// Chooses the index whose sort order turns the bound positions into a
    /// range prefix:
    /// `s??`/`sp?` → SPO, `?p?`/`?po` → POS, `??o`/`s?o` → OSP,
    /// `spo` → membership probe, `???` → full SPO scan.
    pub fn scan(&self, pattern: IdPattern) -> Vec<IdTriple> {
        let IdPattern { subject, predicate, object } = pattern;
        let mut out = Vec::new();
        match (subject, predicate, object) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s.0, p.0, o.0)) {
                    out.push((s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for &(a, b, c) in range2(&self.spo, s.0, p.0) {
                    out.push((TermId(a), TermId(b), TermId(c)));
                }
            }
            (Some(s), None, Some(o)) => {
                for &(a, b, c) in range2(&self.osp, o.0, s.0) {
                    // osp stores (o, s, p)
                    out.push((TermId(b), TermId(c), TermId(a)));
                }
            }
            (Some(s), None, None) => {
                for &(a, b, c) in range1(&self.spo, s.0) {
                    out.push((TermId(a), TermId(b), TermId(c)));
                }
            }
            (None, Some(p), Some(o)) => {
                for &(a, b, c) in range2(&self.pos, p.0, o.0) {
                    // pos stores (p, o, s)
                    out.push((TermId(c), TermId(a), TermId(b)));
                }
            }
            (None, Some(p), None) => {
                for &(a, b, c) in range1(&self.pos, p.0) {
                    out.push((TermId(c), TermId(a), TermId(b)));
                }
            }
            (None, None, Some(o)) => {
                for &(a, b, c) in range1(&self.osp, o.0) {
                    out.push((TermId(b), TermId(c), TermId(a)));
                }
            }
            (None, None, None) => {
                for &(a, b, c) in &self.spo {
                    out.push((TermId(a), TermId(b), TermId(c)));
                }
            }
        }
        out
    }

    /// Estimated number of matches for a pattern, used by the query planner.
    /// Exact for fully-bound and fully-unbound patterns; for partially bound
    /// patterns it counts the range (O(range length)), which is acceptable at
    /// our scale and far more accurate than static heuristics.
    pub fn estimate(&self, pattern: IdPattern) -> usize {
        let IdPattern { subject, predicate, object } = pattern;
        match (subject, predicate, object) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s.0, p.0, o.0))),
            (Some(s), Some(p), None) => range2(&self.spo, s.0, p.0).count(),
            (Some(s), None, Some(o)) => range2(&self.osp, o.0, s.0).count(),
            (Some(s), None, None) => range1(&self.spo, s.0).count(),
            (None, Some(p), Some(o)) => range2(&self.pos, p.0, o.0).count(),
            (None, Some(p), None) => range1(&self.pos, p.0).count(),
            (None, None, Some(o)) => range1(&self.osp, o.0).count(),
            (None, None, None) => self.spo.len(),
        }
    }

    /// Term-level pattern scan: `None` positions are wildcards. Converts ids
    /// back to terms; prefer [`Graph::scan`] in inner loops.
    pub fn triples_matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let to_id = |t: Option<&Term>| -> Result<Option<TermId>, ()> {
            match t {
                None => Ok(None),
                Some(term) => match self.interner.get(term) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()), // unknown term: zero matches
                },
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (to_id(subject), to_id(predicate), to_id(object)) else {
            return Vec::new();
        };
        self.scan(IdPattern { subject: s, predicate: p, object: o })
            .into_iter()
            .map(|(s, p, o)| Triple {
                subject: self.interner.resolve(s).clone(),
                predicate: self.interner.resolve(p).clone(),
                object: self.interner.resolve(o).clone(),
            })
            .collect()
    }

    /// All objects of `(subject, predicate, ?)`.
    pub fn objects_of(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .into_iter()
            .map(|t| t.object)
            .collect()
    }

    /// All subjects of `(?, predicate, object)`.
    pub fn subjects_with(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        self.triples_matching(None, Some(predicate), Some(object))
            .into_iter()
            .map(|t| t.subject)
            .collect()
    }

    /// The set of distinct predicates in the graph, in id order.
    pub fn predicates(&self) -> Vec<Term> {
        let mut last: Option<u32> = None;
        let mut out = Vec::new();
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                last = Some(p);
                out.push(self.interner.resolve(TermId(p)).clone());
            }
        }
        out
    }

    /// Iterates over all triples at the term level (SPO order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple {
            subject: self.interner.resolve(TermId(s)).clone(),
            predicate: self.interner.resolve(TermId(p)).clone(),
            object: self.interner.resolve(TermId(o)).clone(),
        })
    }
}

/// Range over a BTreeSet of id-triples with the first position fixed.
fn range1(set: &BTreeSet<(u32, u32, u32)>, a: u32) -> impl Iterator<Item = &(u32, u32, u32)> {
    set.range((Bound::Included((a, 0, 0)), Bound::Included((a, u32::MAX, u32::MAX))))
}

/// Range with the first two positions fixed.
fn range2(
    set: &BTreeSet<(u32, u32, u32)>,
    a: u32,
    b: u32,
) -> impl Iterator<Item = &(u32, u32, u32)> {
    set.range((Bound::Included((a, b, 0)), Bound::Included((a, b, u32::MAX))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{dbont, rdf, res};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        let snow = Term::iri(res::iri("Snow"));
        let museum = Term::iri(res::iri("The Museum of Innocence"));
        let writer = Term::iri(dbont::iri("writer"));
        let book = Term::iri(dbont::iri("Book"));
        let ty = Term::iri(rdf::TYPE);
        g.add(snow.clone(), ty.clone(), book.clone());
        g.add(museum.clone(), ty.clone(), book.clone());
        g.add(snow.clone(), writer.clone(), pamuk.clone());
        g.add(museum, writer, pamuk);
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(g.insert(&t));
        assert!(!g.insert(&t));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_and_remove() {
        let mut g = Graph::new();
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(!g.contains(&t));
        g.insert(&t);
        assert!(g.contains(&t));
        assert!(g.remove(&t));
        assert!(!g.contains(&t));
        assert!(!g.remove(&t));
        assert!(g.is_empty());
    }

    #[test]
    fn all_eight_pattern_shapes_agree() {
        let g = sample_graph();
        let snow = Term::iri(res::iri("Snow"));
        let writer = Term::iri(dbont::iri("writer"));
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));

        // ???
        assert_eq!(g.triples_matching(None, None, None).len(), 4);
        // s??
        assert_eq!(g.triples_matching(Some(&snow), None, None).len(), 2);
        // ?p?
        assert_eq!(g.triples_matching(None, Some(&writer), None).len(), 2);
        // ??o
        assert_eq!(g.triples_matching(None, None, Some(&pamuk)).len(), 2);
        // sp?
        assert_eq!(g.triples_matching(Some(&snow), Some(&writer), None).len(), 1);
        // ?po
        assert_eq!(g.triples_matching(None, Some(&writer), Some(&pamuk)).len(), 2);
        // s?o
        assert_eq!(g.triples_matching(Some(&snow), None, Some(&pamuk)).len(), 1);
        // spo
        assert_eq!(
            g.triples_matching(Some(&snow), Some(&writer), Some(&pamuk)).len(),
            1
        );
    }

    #[test]
    fn scan_returns_canonical_spo_order_of_ids() {
        let g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        for (s, p, o) in g.scan(IdPattern { subject: None, predicate: Some(writer), object: None })
        {
            assert_eq!(p, writer);
            assert!(g.term(s).as_iri().is_some());
            assert!(g.term(o).as_iri().is_some());
        }
    }

    #[test]
    fn unknown_term_matches_nothing() {
        let g = sample_graph();
        let ghost = Term::iri("http://nowhere/x");
        assert!(g.triples_matching(Some(&ghost), None, None).is_empty());
    }

    #[test]
    fn estimate_matches_scan_cardinality() {
        let g = sample_graph();
        let writer = g.term_id(&Term::iri(dbont::iri("writer"))).unwrap();
        let snow = g.term_id(&Term::iri(res::iri("Snow"))).unwrap();
        for pat in [
            IdPattern { subject: None, predicate: None, object: None },
            IdPattern { subject: Some(snow), predicate: None, object: None },
            IdPattern { subject: None, predicate: Some(writer), object: None },
            IdPattern { subject: Some(snow), predicate: Some(writer), object: None },
        ] {
            assert_eq!(g.estimate(pat), g.scan(pat).len());
        }
    }

    #[test]
    fn helpers_objects_and_subjects() {
        let g = sample_graph();
        let snow = Term::iri(res::iri("Snow"));
        let writer = Term::iri(dbont::iri("writer"));
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        assert_eq!(g.objects_of(&snow, &writer), vec![pamuk.clone()]);
        let mut subs = g.subjects_with(&writer, &pamuk);
        subs.sort();
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn predicates_are_deduplicated() {
        let g = sample_graph();
        let preds = g.predicates();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn iter_yields_all_triples() {
        let g = sample_graph();
        assert_eq!(g.iter().count(), g.len());
        for t in g.iter() {
            assert!(g.contains(&t));
        }
    }

    #[test]
    fn literals_and_iris_do_not_collide_in_indexes() {
        let mut g = Graph::new();
        g.add(Term::iri("s"), Term::iri("p"), Term::literal("o"));
        g.add(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.triples_matching(None, None, Some(&Term::literal("o"))).len(),
            1
        );
    }
}
