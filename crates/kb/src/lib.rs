//! # relpat-kb — synthetic DBpedia and QALD-2-style benchmark
//!
//! The data substrate the paper ran against: a deterministic, seeded
//! DBpedia-style knowledge base (ontology + entities + facts + page links)
//! and a 100-question QALD-2-style benchmark with gold SPARQL queries, of
//! which 55 survive the paper's YAGO/`dbprop:` exclusion filter (§3).
//!
//! ```
//! use relpat_kb::{generate, KbConfig};
//!
//! let kb = generate(&KbConfig::tiny());
//! let sols = kb.query(
//!     "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }"
//! ).unwrap().into_solutions().unwrap();
//! assert_eq!(sols.len(), 3);
//! ```

mod generate;
mod kb;
pub mod lexical;
mod names;
mod ontology;
mod qald;
mod stats;

pub use generate::{generate, KbConfig, DEFAULT_KB_FINGERPRINT};
pub use kb::{normalize_label, KnowledgeBase};
pub use lexical::{split_camel_case, IndexLookupStats, LexStats, LexicalIndex};
pub use names::AMBIGUOUS_CITY;
pub use ontology::{ClassDef, DataPropertyDef, DataRange, ObjectPropertyDef, Ontology};
pub use qald::{evaluated_subset, qald_questions, Exclusion, QaldQuestion};
pub use stats::KbStats;
