//! The knowledge base: graph + ontology + derived indexes.

use relpat_rdf::vocab::{self, rdf, rdfs, res};
use relpat_rdf::{Graph, Iri, Term};
use relpat_sparql::{query, CacheStats, PlanTrace, QueryCache, QueryResult, SparqlError};
use relpat_obs::fx::{FxHashMap, FxHashSet};

use crate::lexical::LexicalIndex;
use crate::ontology::Ontology;

/// Normalizes a label for indexing: lower-case, article-stripped,
/// whitespace-collapsed.
pub fn normalize_label(label: &str) -> String {
    let lower = label.to_lowercase();
    let trimmed = lower
        .strip_prefix("the ")
        .or_else(|| lower.strip_prefix("a "))
        .or_else(|| lower.strip_prefix("an "))
        .unwrap_or(&lower);
    trimmed.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// A DBpedia-style knowledge base with the lookup structures the QA pipeline
/// needs: label → entity index, entity → class resolution with subclass
/// reasoning, and the page-link graph for disambiguation.
#[derive(Debug)]
pub struct KnowledgeBase {
    pub graph: Graph,
    pub ontology: Ontology,
    label_index: FxHashMap<String, Vec<Iri>>,
    labels: FxHashMap<Iri, String>,
    class_by_label: FxHashMap<String, &'static str>,
    page_links: FxHashMap<Iri, FxHashSet<Iri>>,
    /// Shared result cache for [`query`](Self::query). The graph is treated
    /// as immutable once wrapped; code that mutates `graph` afterwards must
    /// call [`invalidate_query_cache`](Self::invalidate_query_cache).
    query_cache: QueryCache,
    /// Sublinear candidate index over entity labels and ontology
    /// properties, built once here (see [`crate::lexical`]).
    lexical: LexicalIndex,
}

impl KnowledgeBase {
    /// Wraps a populated graph, building all indexes. The ontology must
    /// already be materialized into the graph (labels, class tree).
    ///
    /// The graph is compacted ([`Graph::freeze`]) on entry: the serving path
    /// treats it as read-only, so every scan should be a flat slice walk and
    /// every planner estimate a pure O(log n) binary search.
    pub fn from_graph(mut graph: Graph, ontology: Ontology) -> Self {
        graph.freeze();
        let mut label_index: FxHashMap<String, Vec<Iri>> = FxHashMap::default();
        let mut labels: FxHashMap<Iri, String> = FxHashMap::default();
        let mut page_links: FxHashMap<Iri, FxHashSet<Iri>> = FxHashMap::default();

        let label_pred = Term::iri(rdfs::LABEL);
        for t in graph.triples_matching(None, Some(&label_pred), None) {
            let (Term::Iri(subject), Term::Literal(lit)) = (&t.subject, &t.object) else {
                continue;
            };
            if !subject.as_str().starts_with(res::NS) {
                continue; // class/property labels are indexed separately
            }
            let norm = normalize_label(lit.lexical_form());
            let entry = label_index.entry(norm).or_default();
            if !entry.contains(subject) {
                entry.push(subject.clone());
            }
            labels.entry(subject.clone()).or_insert_with(|| lit.lexical_form().to_string());
        }

        let link_pred = Term::iri(vocab::WIKI_PAGE_LINK);
        for t in graph.triples_matching(None, Some(&link_pred), None) {
            if let (Term::Iri(s), Term::Iri(o)) = (&t.subject, &t.object) {
                page_links.entry(s.clone()).or_default().insert(o.clone());
                page_links.entry(o.clone()).or_default().insert(s.clone());
            }
        }

        let mut class_by_label = FxHashMap::default();
        for c in &ontology.classes {
            class_by_label.insert(normalize_label(c.label), c.name);
        }

        let lexical = LexicalIndex::build(&label_index, &ontology);
        KnowledgeBase {
            graph,
            ontology,
            label_index,
            labels,
            class_by_label,
            page_links,
            query_cache: QueryCache::default(),
            lexical,
        }
    }

    /// The lexical candidate index over entity labels and ontology
    /// properties (built once at construction).
    pub fn lexical(&self) -> &LexicalIndex {
        &self.lexical
    }

    /// Entities whose label normalizes to exactly `text`.
    pub fn entities_with_label(&self, text: &str) -> &[Iri] {
        self.label_index
            .get(&normalize_label(text))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All `(normalized label, entities)` pairs — the mention detector's raw
    /// material.
    pub fn labels_iter(&self) -> impl Iterator<Item = (&str, &[Iri])> {
        self.label_index.iter().map(|(l, v)| (l.as_str(), v.as_slice()))
    }

    /// The primary (first-seen) label of an entity.
    pub fn label_of(&self, iri: &Iri) -> Option<&str> {
        self.labels.get(iri).map(String::as_str)
    }

    /// The ontology class whose label normalizes to `text`
    /// ("book" → `Book`, "films" must be singularized by the caller).
    pub fn class_with_label(&self, text: &str) -> Option<&'static str> {
        self.class_by_label.get(&normalize_label(text)).copied()
    }

    /// Direct classes of an entity (local names).
    pub fn classes_of(&self, iri: &Iri) -> Vec<String> {
        self.graph
            .objects_of(&Term::Iri(iri.clone()), &Term::iri(rdf::TYPE))
            .into_iter()
            .filter_map(|t| match t {
                Term::Iri(c) if c.as_str().starts_with(vocab::dbont::NS) => {
                    Some(c.local_name().to_string())
                }
                _ => None,
            })
            .collect()
    }

    /// True if the entity is an instance of `class_name` directly or via the
    /// subclass tree.
    pub fn is_instance_of(&self, iri: &Iri, class_name: &str) -> bool {
        self.classes_of(iri)
            .iter()
            .any(|c| self.ontology.is_subclass_of(c, class_name))
    }

    /// Number of page links touching an entity.
    pub fn page_degree(&self, iri: &Iri) -> usize {
        self.page_links.get(iri).map_or(0, FxHashSet::len)
    }

    /// True if two entities are connected by a page link (either direction).
    pub fn are_linked(&self, a: &Iri, b: &Iri) -> bool {
        self.page_links.get(a).is_some_and(|s| s.contains(b))
    }

    /// Runs a SPARQL query against the store, serving repeated query texts
    /// from the shared result cache.
    pub fn query(&self, text: &str) -> Result<QueryResult, SparqlError> {
        self.query_cache.query(&self.graph, text)
    }

    /// Runs a SPARQL query bypassing the result cache (equivalence testing
    /// and one-shot diagnostics).
    pub fn query_uncached(&self, text: &str) -> Result<QueryResult, SparqlError> {
        query(&self.graph, text)
    }

    /// Like [`query`](Self::query) but also returns the EXPLAIN ANALYZE
    /// plan trace. Cache hits return a trace flagged `cache_hit` with no
    /// steps (the executor never ran).
    pub fn query_traced(&self, text: &str) -> Result<(QueryResult, PlanTrace), SparqlError> {
        self.query_cache.query_traced(&self.graph, text)
    }

    /// Cumulative hit/miss totals of the query cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.query_cache.stats()
    }

    /// `(entries held, entry capacity)` of the query cache — the occupancy
    /// pair the serving gauges export.
    pub fn cache_occupancy(&self) -> (usize, usize) {
        (self.query_cache.len(), self.query_cache.capacity())
    }

    /// Drops every cached query result. Must be called after mutating
    /// `graph` directly.
    pub fn invalidate_query_cache(&self) {
        self.query_cache.clear();
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Number of distinct labeled entities.
    pub fn entity_count(&self) -> usize {
        self.labels.len()
    }

    /// Order-sensitive FNV-1a hash over every triple's rendered form. The
    /// frozen graph iterates in a deterministic (SPO-sorted) order, so two
    /// byte-identical knowledge bases — same triples, same interning — hash
    /// equal. Guards generator refactors: the default-scale KB's fingerprint
    /// is pinned in `relpat_kb::generate` and checked by the scaling smoke
    /// gate.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let mut buf = String::new();
        for t in self.graph.iter() {
            buf.clear();
            use std::fmt::Write;
            let _ = writeln!(buf, "{} {} {}", t.subject, t.predicate, t.object);
            eat(buf.as_bytes());
        }
        hash
    }

    /// Persists the knowledge base as N-Triples (deterministic ordering).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        relpat_rdf::save_ntriples(&self.graph, path)
    }

    /// Loads a knowledge base from a Turtle/N-Triples file, rebuilding all
    /// indexes against the standard ontology.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, relpat_rdf::RdfError> {
        let graph = relpat_rdf::load_path(path)?;
        Ok(Self::from_graph(graph, Ontology::dbpedia()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_rdf::vocab::dbont;
    use relpat_rdf::Literal;

    fn mini_kb() -> KnowledgeBase {
        let ontology = Ontology::dbpedia();
        let mut g = Graph::new();
        ontology.materialize(&mut g);
        let pamuk = Term::iri(res::iri("Orhan Pamuk"));
        let snow = Term::iri(res::iri("Snow"));
        g.add(pamuk.clone(), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Writer")));
        g.add(
            pamuk.clone(),
            Term::iri(rdfs::LABEL),
            Term::Literal(Literal::lang("Orhan Pamuk", "en")),
        );
        g.add(snow.clone(), Term::iri(rdf::TYPE), Term::iri(dbont::iri("Book")));
        g.add(snow.clone(), Term::iri(rdfs::LABEL), Term::Literal(Literal::lang("Snow", "en")));
        g.add(snow.clone(), Term::iri(dbont::iri("author")), pamuk.clone());
        g.add(snow, Term::iri(vocab::WIKI_PAGE_LINK), pamuk);
        KnowledgeBase::from_graph(g, ontology)
    }

    #[test]
    fn normalize_strips_articles_and_case() {
        assert_eq!(normalize_label("The Museum of  Innocence"), "museum of innocence");
        assert_eq!(normalize_label("a Book"), "book");
        assert_eq!(normalize_label("Ankara"), "ankara");
        // "an" only strips as a word
        assert_eq!(normalize_label("Antwerp"), "antwerp");
    }

    #[test]
    fn label_lookup_round_trip() {
        let kb = mini_kb();
        let hits = kb.entities_with_label("orhan pamuk");
        assert_eq!(hits.len(), 1);
        assert_eq!(kb.label_of(&hits[0]), Some("Orhan Pamuk"));
        assert!(kb.entities_with_label("nobody").is_empty());
    }

    #[test]
    fn class_labels_resolve() {
        let kb = mini_kb();
        assert_eq!(kb.class_with_label("book"), Some("Book"));
        assert_eq!(kb.class_with_label("basketball player"), Some("BasketballPlayer"));
        assert_eq!(kb.class_with_label("spaceship"), None);
    }

    #[test]
    fn instance_reasoning_uses_taxonomy() {
        let kb = mini_kb();
        let pamuk = Iri::new(res::iri("Orhan Pamuk"));
        assert!(kb.is_instance_of(&pamuk, "Writer"));
        assert!(kb.is_instance_of(&pamuk, "Person"));
        assert!(!kb.is_instance_of(&pamuk, "Place"));
    }

    #[test]
    fn page_links_are_symmetric() {
        let kb = mini_kb();
        let pamuk = Iri::new(res::iri("Orhan Pamuk"));
        let snow = Iri::new(res::iri("Snow"));
        assert!(kb.are_linked(&pamuk, &snow));
        assert!(kb.are_linked(&snow, &pamuk));
        assert_eq!(kb.page_degree(&pamuk), 1);
    }

    #[test]
    fn sparql_round_trip() {
        let kb = mini_kb();
        let sols = kb
            .query("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }")
            .unwrap()
            .into_solutions().unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn save_load_round_trip_preserves_indexes() {
        let kb = mini_kb();
        let path = std::env::temp_dir().join("relpat_kb_roundtrip.nt");
        kb.save(&path).unwrap();
        let loaded = KnowledgeBase::load(&path).unwrap();
        assert_eq!(loaded.len(), kb.len());
        assert_eq!(loaded.entity_count(), kb.entity_count());
        assert_eq!(
            loaded.entities_with_label("orhan pamuk"),
            kb.entities_with_label("orhan pamuk")
        );
        let pamuk = Iri::new(res::iri("Orhan Pamuk"));
        assert!(loaded.is_instance_of(&pamuk, "Person"));
        assert!(loaded.are_linked(&pamuk, &Iri::new(res::iri("Snow"))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn class_labels_not_in_entity_index() {
        let kb = mini_kb();
        // "book" is a class label; entity index must not return it.
        assert!(kb.entities_with_label("book").is_empty());
    }

    #[test]
    fn query_cache_serves_repeats_and_matches_uncached() {
        let kb = mini_kb();
        let text = "SELECT ?x WHERE { ?x rdf:type dbont:Book . }";
        let first = kb.query(text).unwrap();
        let second = kb.query(text).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, kb.query_uncached(text).unwrap());
        let stats = kb.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Uncached queries never touch the cache counters.
        kb.query_uncached(text).unwrap();
        assert_eq!(kb.cache_stats(), stats);
        kb.invalidate_query_cache();
        kb.query(text).unwrap();
        assert_eq!(kb.cache_stats().misses, 2);
    }
}
