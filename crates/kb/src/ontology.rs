//! The DBpedia-style ontology: class taxonomy, object and data properties.
//!
//! Mirrors the fragment of the real DBpedia ontology (namespace `dbont:`)
//! that the paper's pipeline touches. Classes form a tree under `owl:Thing`;
//! properties carry labels, domains and ranges. The ontology is itself
//! materialized as RDF triples in the knowledge base so that label lookups,
//! class queries and property enumeration all go through the same store.

use relpat_rdf::vocab::{dbont, owl, rdfs, xsd};
use relpat_rdf::{Graph, Iri, Literal, Term};

/// Range of a data property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataRange {
    Integer,
    Double,
    Date,
    String,
}

impl DataRange {
    /// The XSD datatype IRI for this range.
    pub fn datatype(self) -> &'static str {
        match self {
            DataRange::Integer => xsd::INTEGER,
            DataRange::Double => xsd::DOUBLE,
            DataRange::Date => xsd::DATE,
            DataRange::String => xsd::STRING,
        }
    }
}

/// An ontology class (`dbont:Book`).
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Local name within `dbont:` (`Book`).
    pub name: &'static str,
    /// Human label ("book").
    pub label: &'static str,
    /// Parent class local name (`None` only for top-level classes).
    pub parent: Option<&'static str>,
}

/// An object property (`dbont:author`: Book → Person).
#[derive(Debug, Clone)]
pub struct ObjectPropertyDef {
    pub name: &'static str,
    pub label: &'static str,
    pub domain: &'static str,
    pub range: &'static str,
}

/// A data property (`dbont:height`: Person → double).
#[derive(Debug, Clone)]
pub struct DataPropertyDef {
    pub name: &'static str,
    pub label: &'static str,
    pub domain: &'static str,
    pub range: DataRange,
}

/// The full ontology definition.
#[derive(Debug, Clone)]
pub struct Ontology {
    pub classes: Vec<ClassDef>,
    pub object_properties: Vec<ObjectPropertyDef>,
    pub data_properties: Vec<DataPropertyDef>,
}

impl Ontology {
    /// The DBpedia-fragment ontology used throughout the system.
    pub fn dbpedia() -> Self {
        Ontology {
            classes: CLASSES.to_vec(),
            object_properties: OBJECT_PROPERTIES.to_vec(),
            data_properties: DATA_PROPERTIES.to_vec(),
        }
    }

    /// IRI of a class by local name.
    pub fn class_iri(name: &str) -> Iri {
        Iri::new(dbont::iri(name))
    }

    /// IRI of a property by local name.
    pub fn property_iri(name: &str) -> Iri {
        Iri::new(dbont::iri(name))
    }

    /// Looks up a class definition.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// All ancestors of a class (exclusive), nearest first.
    pub fn ancestors(&self, name: &str) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut cur = self.class(name).and_then(|c| c.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.class(p).and_then(|c| c.parent);
        }
        out
    }

    /// True if `sub` is `sup` or a descendant of it.
    pub fn is_subclass_of(&self, sub: &str, sup: &str) -> bool {
        sub == sup || self.ancestors(sub).contains(&sup)
    }

    /// All classes that are `sup` or descendants of it.
    pub fn descendants(&self, sup: &str) -> Vec<&'static str> {
        self.classes
            .iter()
            .map(|c| c.name)
            .filter(|c| self.is_subclass_of(c, sup))
            .collect()
    }

    /// Materializes the ontology as RDF triples (class tree, property
    /// declarations, labels) into a graph.
    pub fn materialize(&self, graph: &mut Graph) {
        let label = Term::iri(rdfs::LABEL);
        let ty = Term::iri(relpat_rdf::vocab::rdf::TYPE);
        for c in &self.classes {
            let iri = Term::Iri(Self::class_iri(c.name));
            graph.add(iri.clone(), ty.clone(), Term::iri(owl::CLASS));
            graph.add(iri.clone(), label.clone(), Term::Literal(Literal::lang(c.label, "en")));
            let parent = match c.parent {
                Some(p) => Term::Iri(Self::class_iri(p)),
                None => Term::iri(owl::THING),
            };
            graph.add(iri, Term::iri(rdfs::SUBCLASS_OF), parent);
        }
        for p in &self.object_properties {
            let iri = Term::Iri(Self::property_iri(p.name));
            graph.add(iri.clone(), ty.clone(), Term::iri(owl::OBJECT_PROPERTY));
            graph.add(iri.clone(), label.clone(), Term::Literal(Literal::lang(p.label, "en")));
            graph.add(iri.clone(), Term::iri(rdfs::DOMAIN), Term::Iri(Self::class_iri(p.domain)));
            graph.add(iri, Term::iri(rdfs::RANGE), Term::Iri(Self::class_iri(p.range)));
        }
        for p in &self.data_properties {
            let iri = Term::Iri(Self::property_iri(p.name));
            graph.add(iri.clone(), ty.clone(), Term::iri(owl::DATATYPE_PROPERTY));
            graph.add(iri.clone(), label.clone(), Term::Literal(Literal::lang(p.label, "en")));
            graph.add(iri, Term::iri(rdfs::DOMAIN), Term::Iri(Self::class_iri(p.domain)));
        }
    }
}

const CLASSES: &[ClassDef] = &[
    // People
    ClassDef { name: "Agent", label: "agent", parent: None },
    ClassDef { name: "Person", label: "person", parent: Some("Agent") },
    ClassDef { name: "Artist", label: "artist", parent: Some("Person") },
    ClassDef { name: "Writer", label: "writer", parent: Some("Artist") },
    ClassDef { name: "MusicalArtist", label: "musical artist", parent: Some("Artist") },
    ClassDef { name: "Actor", label: "actor", parent: Some("Artist") },
    ClassDef { name: "FilmDirector", label: "film director", parent: Some("Artist") },
    ClassDef { name: "Athlete", label: "athlete", parent: Some("Person") },
    ClassDef { name: "BasketballPlayer", label: "basketball player", parent: Some("Athlete") },
    ClassDef { name: "Scientist", label: "scientist", parent: Some("Person") },
    ClassDef { name: "Politician", label: "politician", parent: Some("Person") },
    ClassDef { name: "President", label: "president", parent: Some("Politician") },
    ClassDef { name: "Mayor", label: "mayor", parent: Some("Politician") },
    ClassDef { name: "Architect", label: "architect", parent: Some("Person") },
    // Organisations
    ClassDef { name: "Organisation", label: "organisation", parent: Some("Agent") },
    ClassDef { name: "Company", label: "company", parent: Some("Organisation") },
    ClassDef { name: "Airline", label: "airline", parent: Some("Company") },
    ClassDef { name: "University", label: "university", parent: Some("Organisation") },
    ClassDef { name: "Band", label: "band", parent: Some("Organisation") },
    // Places
    ClassDef { name: "Place", label: "place", parent: None },
    ClassDef { name: "PopulatedPlace", label: "populated place", parent: Some("Place") },
    ClassDef { name: "Country", label: "country", parent: Some("PopulatedPlace") },
    ClassDef { name: "Settlement", label: "settlement", parent: Some("PopulatedPlace") },
    ClassDef { name: "City", label: "city", parent: Some("Settlement") },
    ClassDef { name: "NaturalPlace", label: "natural place", parent: Some("Place") },
    ClassDef { name: "BodyOfWater", label: "body of water", parent: Some("NaturalPlace") },
    ClassDef { name: "River", label: "river", parent: Some("BodyOfWater") },
    ClassDef { name: "Lake", label: "lake", parent: Some("BodyOfWater") },
    ClassDef { name: "Mountain", label: "mountain", parent: Some("NaturalPlace") },
    ClassDef { name: "Building", label: "building", parent: Some("Place") },
    ClassDef { name: "Museum", label: "museum", parent: Some("Building") },
    ClassDef { name: "Bridge", label: "bridge", parent: Some("Place") },
    // Works
    ClassDef { name: "Work", label: "work", parent: None },
    ClassDef { name: "WrittenWork", label: "written work", parent: Some("Work") },
    ClassDef { name: "Book", label: "book", parent: Some("WrittenWork") },
    ClassDef { name: "Film", label: "film", parent: Some("Work") },
    ClassDef { name: "MusicalWork", label: "musical work", parent: Some("Work") },
    ClassDef { name: "Album", label: "album", parent: Some("MusicalWork") },
    ClassDef { name: "Song", label: "song", parent: Some("MusicalWork") },
    ClassDef { name: "VideoGame", label: "video game", parent: Some("Work") },
    ClassDef { name: "Painting", label: "painting", parent: Some("Work") },
    // Misc
    ClassDef { name: "Language", label: "language", parent: None },
    ClassDef { name: "Currency", label: "currency", parent: None },
];

const OBJECT_PROPERTIES: &[ObjectPropertyDef] = &[
    ObjectPropertyDef { name: "author", label: "author", domain: "Book", range: "Person" },
    ObjectPropertyDef { name: "writer", label: "writer", domain: "Song", range: "Person" },
    ObjectPropertyDef { name: "director", label: "director", domain: "Film", range: "Person" },
    ObjectPropertyDef { name: "starring", label: "starring", domain: "Film", range: "Actor" },
    ObjectPropertyDef { name: "producer", label: "producer", domain: "Film", range: "Person" },
    ObjectPropertyDef {
        name: "musicComposer",
        label: "music composer",
        domain: "MusicalWork",
        range: "Person",
    },
    ObjectPropertyDef { name: "artist", label: "artist", domain: "Album", range: "MusicalArtist" },
    ObjectPropertyDef { name: "birthPlace", label: "birth place", domain: "Person", range: "Place" },
    ObjectPropertyDef { name: "deathPlace", label: "death place", domain: "Person", range: "Place" },
    ObjectPropertyDef { name: "residence", label: "residence", domain: "Person", range: "Place" },
    ObjectPropertyDef { name: "spouse", label: "spouse", domain: "Person", range: "Person" },
    ObjectPropertyDef { name: "child", label: "child", domain: "Person", range: "Person" },
    ObjectPropertyDef { name: "almaMater", label: "alma mater", domain: "Person", range: "University" },
    ObjectPropertyDef { name: "capital", label: "capital", domain: "Country", range: "City" },
    ObjectPropertyDef { name: "country", label: "country", domain: "Place", range: "Country" },
    ObjectPropertyDef { name: "largestCity", label: "largest city", domain: "Country", range: "City" },
    ObjectPropertyDef {
        name: "officialLanguage",
        label: "official language",
        domain: "Country",
        range: "Language",
    },
    ObjectPropertyDef { name: "currency", label: "currency", domain: "Country", range: "Currency" },
    ObjectPropertyDef { name: "leaderName", label: "leader name", domain: "Country", range: "Person" },
    ObjectPropertyDef { name: "mayor", label: "mayor", domain: "City", range: "Person" },
    ObjectPropertyDef { name: "location", label: "location", domain: "Organisation", range: "City" },
    ObjectPropertyDef {
        name: "headquarter",
        label: "headquarter",
        domain: "Company",
        range: "City",
    },
    ObjectPropertyDef { name: "foundedBy", label: "founded by", domain: "Organisation", range: "Person" },
    ObjectPropertyDef { name: "keyPerson", label: "key person", domain: "Company", range: "Person" },
    ObjectPropertyDef { name: "developer", label: "developer", domain: "VideoGame", range: "Company" },
    ObjectPropertyDef { name: "publisher", label: "publisher", domain: "Book", range: "Company" },
    ObjectPropertyDef { name: "crosses", label: "crosses", domain: "Bridge", range: "River" },
    ObjectPropertyDef { name: "mouthCountry", label: "mouth country", domain: "River", range: "Country" },
    ObjectPropertyDef { name: "bandMember", label: "band member", domain: "Band", range: "MusicalArtist" },
];

const DATA_PROPERTIES: &[DataPropertyDef] = &[
    DataPropertyDef { name: "height", label: "height", domain: "Person", range: DataRange::Double },
    DataPropertyDef { name: "birthDate", label: "birth date", domain: "Person", range: DataRange::Date },
    DataPropertyDef { name: "deathDate", label: "death date", domain: "Person", range: DataRange::Date },
    DataPropertyDef {
        name: "populationTotal",
        label: "population total",
        domain: "PopulatedPlace",
        range: DataRange::Integer,
    },
    DataPropertyDef {
        name: "areaTotal",
        label: "area total",
        domain: "PopulatedPlace",
        range: DataRange::Double,
    },
    DataPropertyDef {
        name: "elevation",
        label: "elevation",
        domain: "Mountain",
        range: DataRange::Double,
    },
    DataPropertyDef { name: "length", label: "length", domain: "River", range: DataRange::Double },
    DataPropertyDef { name: "depth", label: "depth", domain: "Lake", range: DataRange::Double },
    DataPropertyDef {
        name: "numberOfPages",
        label: "number of pages",
        domain: "Book",
        range: DataRange::Integer,
    },
    DataPropertyDef {
        name: "numberOfEmployees",
        label: "number of employees",
        domain: "Company",
        range: DataRange::Integer,
    },
    DataPropertyDef {
        name: "foundingDate",
        label: "founding date",
        domain: "Organisation",
        range: DataRange::Date,
    },
    DataPropertyDef {
        name: "releaseDate",
        label: "release date",
        domain: "Work",
        range: DataRange::Date,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_links_resolve() {
        let o = Ontology::dbpedia();
        for c in &o.classes {
            if let Some(p) = c.parent {
                assert!(o.class(p).is_some(), "dangling parent {p} of {}", c.name);
            }
        }
        for p in &o.object_properties {
            assert!(o.class(p.domain).is_some(), "bad domain for {}", p.name);
            assert!(o.class(p.range).is_some(), "bad range for {}", p.name);
        }
        for p in &o.data_properties {
            assert!(o.class(p.domain).is_some(), "bad domain for {}", p.name);
        }
    }

    #[test]
    fn subclass_reasoning() {
        let o = Ontology::dbpedia();
        assert!(o.is_subclass_of("Writer", "Person"));
        assert!(o.is_subclass_of("Writer", "Agent"));
        assert!(o.is_subclass_of("City", "Place"));
        assert!(o.is_subclass_of("Book", "Work"));
        assert!(!o.is_subclass_of("Book", "Person"));
        assert!(o.is_subclass_of("Person", "Person"));
    }

    #[test]
    fn ancestors_nearest_first() {
        let o = Ontology::dbpedia();
        assert_eq!(o.ancestors("Writer"), vec!["Artist", "Person", "Agent"]);
        assert!(o.ancestors("Place").is_empty());
    }

    #[test]
    fn descendants_include_self() {
        let o = Ontology::dbpedia();
        let d = o.descendants("Person");
        assert!(d.contains(&"Person"));
        assert!(d.contains(&"Writer"));
        assert!(d.contains(&"BasketballPlayer"));
        assert!(!d.contains(&"Company"));
    }

    #[test]
    fn materialize_produces_labels_and_tree() {
        let o = Ontology::dbpedia();
        let mut g = Graph::new();
        o.materialize(&mut g);
        let book = Term::Iri(Ontology::class_iri("Book"));
        let labels = g.objects_of(&book, &Term::iri(rdfs::LABEL));
        assert_eq!(labels.len(), 1);
        let supers = g.objects_of(&book, &Term::iri(rdfs::SUBCLASS_OF));
        assert_eq!(supers, vec![Term::Iri(Ontology::class_iri("WrittenWork"))]);
        // Property declarations present
        let author = Term::Iri(Ontology::property_iri("author"));
        assert!(!g.objects_of(&author, &Term::iri(rdfs::DOMAIN)).is_empty());
    }

    #[test]
    fn class_names_unique() {
        let o = Ontology::dbpedia();
        let mut names: Vec<_> = o.classes.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn data_ranges_map_to_xsd() {
        assert_eq!(DataRange::Integer.datatype(), xsd::INTEGER);
        assert_eq!(DataRange::Date.datatype(), xsd::DATE);
    }
}
