//! Deterministic synthetic-DBpedia generator.
//!
//! Substitutes for the live DBpedia endpoint the paper queried. All content
//! is derived from a seed: same [`KbConfig`] → byte-identical knowledge base.
//! A fixed set of "famous" entities reproduces the paper's running examples
//! (Orhan Pamuk and his books, Michael Jordan's height, Abraham Lincoln's
//! death place, Michael Jackson born in Gary, Frank Herbert's death date),
//! and bulk entities scale the store to a realistic size.

use relpat_obs::Rng;
use relpat_rdf::vocab::{self, dbont, rdf, rdfs, res};
use relpat_rdf::{Graph, Iri, Literal, Term};
use relpat_obs::fx::FxHashSet;

use crate::kb::KnowledgeBase;
use crate::names;
use crate::ontology::Ontology;

/// Size knobs for the generator. Defaults produce a KB of a few thousand
/// entities — large enough for meaningful retrieval, small enough for tests.
#[derive(Debug, Clone)]
pub struct KbConfig {
    pub seed: u64,
    pub countries: usize,
    pub cities_per_country: usize,
    pub writers: usize,
    pub directors: usize,
    pub actors: usize,
    pub musicians: usize,
    pub players: usize,
    pub scientists: usize,
    pub companies: usize,
    pub universities: usize,
    pub games: usize,
    pub rivers: usize,
    pub mountains: usize,
    pub lakes: usize,
    pub bands: usize,
    /// Extra random page links (noise) as a fraction of entity count.
    pub link_noise: f64,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            seed: 0x5EED_CAFE,
            countries: 30,
            cities_per_country: 4,
            writers: 60,
            directors: 30,
            actors: 80,
            musicians: 40,
            players: 30,
            scientists: 30,
            companies: 40,
            universities: 20,
            games: 30,
            rivers: 20,
            mountains: 20,
            lakes: 12,
            bands: 20,
            link_noise: 0.5,
        }
    }
}

impl KbConfig {
    /// A smaller configuration for fast unit tests.
    pub fn tiny() -> Self {
        KbConfig {
            countries: 6,
            cities_per_country: 2,
            writers: 10,
            directors: 6,
            actors: 12,
            musicians: 8,
            players: 6,
            scientists: 6,
            companies: 8,
            universities: 4,
            games: 6,
            rivers: 5,
            mountains: 5,
            lakes: 3,
            bands: 4,
            ..KbConfig::default()
        }
    }

    /// Scales every entity count by an integer factor (for store-scaling
    /// benchmarks). Name pools are reused with numeric suffixes.
    pub fn scaled(factor: usize) -> Self {
        let base = KbConfig::default();
        KbConfig {
            countries: base.countries, // bounded by the name pool
            cities_per_country: base.cities_per_country * factor,
            writers: base.writers * factor,
            directors: base.directors * factor,
            actors: base.actors * factor,
            musicians: base.musicians * factor,
            players: base.players * factor,
            scientists: base.scientists * factor,
            companies: base.companies * factor,
            universities: base.universities * factor,
            games: base.games * factor,
            rivers: base.rivers * factor,
            mountains: base.mountains * factor,
            lakes: base.lakes * factor,
            bands: base.bands * factor,
            ..base
        }
    }
}

/// Pinned fingerprint of the default-scale knowledge base
/// ([`KbConfig::default`], equivalently `KbConfig::scaled(1)`). Generator
/// refactors that only touch the large-scale fallback paths (where the name
/// pools are exhausted) must keep this byte-identical; the store-scaling
/// smoke gate asserts it on every CI run.
pub const DEFAULT_KB_FINGERPRINT: u64 = 0x382b_011a_6e07_1b92;

/// Generates the knowledge base.
pub fn generate(config: &KbConfig) -> KnowledgeBase {
    let mut gen = Generator::new(config.clone());
    gen.famous_entities();
    gen.bulk_entities();
    gen.page_links();
    let ontology = Ontology::dbpedia();
    KnowledgeBase::from_graph(gen.graph, ontology)
}

struct Generator {
    config: KbConfig,
    rng: Rng,
    graph: Graph,
    used_iris: FxHashSet<String>,
    // Entity registries used for cross-links while generating.
    countries: Vec<Iri>,
    cities: Vec<Iri>,
    persons: Vec<Iri>,
    actors: Vec<Iri>,
    musicians: Vec<Iri>,
    companies: Vec<Iri>,
    universities: Vec<Iri>,
    rivers: Vec<Iri>,
    famous_athlete: Option<Iri>,
    /// Persistent positions in the deterministic fallback name/title walks.
    /// Restarting the walk per call (the old `k = used.len()` scheme) made
    /// every post-exhaustion draw re-scan the same occupied prefix, turning
    /// generation quadratic past ~1.2M triples; the cursors keep the walk
    /// amortized O(1) per draw at any scale.
    name_cursor: usize,
    title_cursor: usize,
}

impl Generator {
    fn new(config: KbConfig) -> Self {
        let mut graph = Graph::new();
        Ontology::dbpedia().materialize(&mut graph);
        Generator {
            rng: Rng::seed_from_u64(config.seed),
            config,
            graph,
            used_iris: FxHashSet::default(),
            countries: Vec::new(),
            cities: Vec::new(),
            persons: Vec::new(),
            actors: Vec::new(),
            musicians: Vec::new(),
            companies: Vec::new(),
            universities: Vec::new(),
            rivers: Vec::new(),
            famous_athlete: None,
            name_cursor: 0,
            title_cursor: 0,
        }
    }

    /// Mints an entity: unique IRI (label + optional disambiguating
    /// qualifier, DBpedia-style), `rdf:type`, `rdfs:label`.
    fn entity(&mut self, label: &str, class: &str) -> Iri {
        let mut iri_str = res::iri(label);
        if self.used_iris.contains(&iri_str) {
            // Qualify like DBpedia: Springfield_(2), Michael_Jordan_(scientist)
            let mut n = 2;
            loop {
                let candidate = format!("{}_({n})", res::iri(label));
                if !self.used_iris.contains(&candidate) {
                    iri_str = candidate;
                    break;
                }
                n += 1;
            }
        }
        self.used_iris.insert(iri_str.clone());
        let iri = Iri::new(iri_str);
        let term = Term::Iri(iri.clone());
        self.graph.add(term.clone(), Term::iri(rdf::TYPE), Term::iri(dbont::iri(class)));
        self.graph.add(
            term,
            Term::iri(rdfs::LABEL),
            Term::Literal(Literal::lang(label, "en")),
        );
        iri
    }

    fn obj(&mut self, s: &Iri, prop: &str, o: &Iri) {
        self.graph.add(
            Term::Iri(s.clone()),
            Term::iri(dbont::iri(prop)),
            Term::Iri(o.clone()),
        );
    }

    fn data(&mut self, s: &Iri, prop: &str, value: Literal) {
        self.graph.add(
            Term::Iri(s.clone()),
            Term::iri(dbont::iri(prop)),
            Term::Literal(value),
        );
    }

    // (picking uses the free function `pick_from` so that the RNG and the
    // entity pools can be borrowed disjointly, avoiding a full pool clone
    // per fact — generation stays linear in the number of facts)

    fn date(&mut self, lo_year: i32, hi_year: i32) -> Literal {
        let y = self.rng.gen_range(lo_year..=hi_year);
        let m = self.rng.gen_range(1..=12);
        let d = self.rng.gen_range(1..=28);
        Literal::date(y, m, d)
    }

    // ---------------------------------------------------------------- famous

    /// The fixed entities behind the paper's running examples, plus known
    /// ambiguity cases for the disambiguation step.
    fn famous_entities(&mut self) {
        // Countries/cities referenced by examples.
        let turkey = self.entity("Turkey", "Country");
        let usa = self.entity("United States", "Country");
        let germany = self.entity("Germany", "Country");
        let istanbul = self.entity("Istanbul", "City");
        let ankara = self.entity("Ankara", "City");
        let washington = self.entity("Washington", "City");
        let gary = self.entity("Gary", "City");
        let los_angeles = self.entity("Los Angeles", "City");
        let hodgenville = self.entity("Hodgenville", "City");
        let ulm = self.entity("Ulm", "City");
        let bonn = self.entity("Bonn", "City");
        let brooklyn = self.entity("Brooklyn", "City");
        for (city, country) in [
            (&istanbul, &turkey),
            (&ankara, &turkey),
            (&washington, &usa),
            (&gary, &usa),
            (&los_angeles, &usa),
            (&hodgenville, &usa),
            (&brooklyn, &usa),
            (&ulm, &germany),
            (&bonn, &germany),
        ] {
            let (city, country) = (city.to_owned().clone(), country.to_owned().clone());
            self.obj(&city, "country", &country);
        }
        self.obj(&turkey, "capital", &ankara);
        self.obj(&turkey, "largestCity", &istanbul);
        self.obj(&usa, "capital", &washington);
        self.data(&turkey, "populationTotal", Literal::integer(74_724_269));
        self.data(&ankara, "populationTotal", Literal::integer(4_890_893));
        self.data(&istanbul, "populationTotal", Literal::integer(13_854_740));
        self.data(&usa, "populationTotal", Literal::integer(316_128_839));
        self.data(&germany, "populationTotal", Literal::integer(80_716_000));
        self.countries.extend([turkey, usa, germany.clone()]);
        self.cities.extend([
            istanbul.clone(),
            ankara,
            washington.clone(),
            gary.clone(),
            los_angeles.clone(),
            hodgenville.clone(),
            ulm.clone(),
            bonn.clone(),
            brooklyn.clone(),
        ]);

        // Orhan Pamuk and his books (paper Figure 1 and §2 examples).
        let pamuk = self.entity("Orhan Pamuk", "Writer");
        self.obj(&pamuk, "birthPlace", &istanbul);
        self.data(&pamuk, "birthDate", Literal::date(1952, 6, 7));
        for (title, pages) in
            [("Snow", 432), ("The Museum of Innocence", 536), ("My Name is Red", 417)]
        {
            let book = self.entity(title, "Book");
            self.obj(&book, "author", &pamuk);
            self.data(&book, "numberOfPages", Literal::integer(pages));
        }
        self.persons.push(pamuk);

        // Michael Jordan, basketball player, height 1.98 (paper §2.2.2) —
        // plus a scientist namesake to exercise disambiguation (§2.2.5).
        // The scientist is minted FIRST (getting the unqualified IRI and the
        // front slot in the label index) so that string similarity alone
        // cannot find the famous reading: only the page-link centrality of
        // §2.2.5 resolves "Michael Jordan" to the athlete.
        let mj2 = self.entity("Michael Jordan", "Scientist");
        self.data(&mj2, "height", Literal::double(1.78));
        self.obj(&mj2, "birthPlace", &los_angeles);
        // The scientist namesake has a residence fact; the famous athlete
        // does not — the benchmark uses this to probe disambiguation.
        self.obj(&mj2, "residence", &los_angeles);
        let mj = self.entity("Michael Jordan", "BasketballPlayer");
        self.data(&mj, "height", Literal::double(1.98));
        self.obj(&mj, "birthPlace", &brooklyn);
        self.data(&mj, "birthDate", Literal::date(1963, 2, 17));
        self.famous_athlete = Some(mj.clone());
        self.persons.extend([mj, mj2]);

        // Abraham Lincoln (paper §2.2.3: "Where did Abraham Lincoln die?").
        let lincoln = self.entity("Abraham Lincoln", "President");
        self.obj(&lincoln, "birthPlace", &hodgenville);
        self.obj(&lincoln, "deathPlace", &washington);
        self.data(&lincoln, "birthDate", Literal::date(1809, 2, 12));
        self.data(&lincoln, "deathDate", Literal::date(1865, 4, 15));
        self.persons.push(lincoln);

        // Michael Jackson, born in Gary (paper §2.2.3).
        let jackson = self.entity("Michael Jackson", "MusicalArtist");
        self.obj(&jackson, "birthPlace", &gary);
        self.obj(&jackson, "deathPlace", &los_angeles);
        self.data(&jackson, "birthDate", Literal::date(1958, 8, 29));
        self.data(&jackson, "deathDate", Literal::date(2009, 6, 25));
        let thriller = self.entity("Thriller", "Album");
        self.obj(&thriller, "artist", &jackson);
        self.musicians.push(jackson.clone());
        self.persons.push(jackson);

        // Frank Herbert (paper §5: "Is Frank Herbert still alive?").
        let herbert = self.entity("Frank Herbert", "Writer");
        self.data(&herbert, "birthDate", Literal::date(1920, 10, 8));
        self.data(&herbert, "deathDate", Literal::date(1986, 2, 11));
        let dune = self.entity("Dune", "Book");
        self.obj(&dune, "author", &herbert);
        self.data(&dune, "numberOfPages", Literal::integer(412));
        self.persons.push(herbert);

        // Einstein & Beethoven (birth-place questions).
        let einstein = self.entity("Albert Einstein", "Scientist");
        self.obj(&einstein, "birthPlace", &ulm);
        self.data(&einstein, "birthDate", Literal::date(1879, 3, 14));
        let beethoven = self.entity("Ludwig van Beethoven", "MusicalArtist");
        self.obj(&beethoven, "birthPlace", &bonn);
        self.data(&beethoven, "birthDate", Literal::date(1770, 12, 17));
        self.persons.extend([einstein, beethoven.clone()]);
        self.musicians.push(beethoven);

        // James Cameron and Titanic (who-directed questions).
        let cameron = self.entity("James Cameron", "FilmDirector");
        let titanic = self.entity("Titanic", "Film");
        let avatar = self.entity("Avatar", "Film");
        self.obj(&titanic, "director", &cameron);
        self.obj(&avatar, "director", &cameron);
        self.data(&titanic, "releaseDate", Literal::date(1997, 12, 19));
        self.persons.push(cameron);

        // A spouse pair for who-is-the-wife questions.
        let obama = self.entity("Barack Obama", "President");
        let michelle = self.entity("Michelle Obama", "Person");
        self.obj(&obama, "spouse", &michelle);
        self.obj(&michelle, "spouse", &obama);
        let usa_iri = usa_of(self);
        self.obj(&usa_iri, "leaderName", &obama);
        self.persons.extend([obama, michelle]);

        // Ambiguous Springfields in three countries.
        for (i, country) in self.countries.clone().iter().take(3).enumerate() {
            let springfield = self.entity(names::AMBIGUOUS_CITY, "City");
            self.obj(&springfield, "country", country);
            self.data(&springfield, "populationTotal", Literal::integer(30_000 + (i as i64) * 85_000));
            self.cities.push(springfield);
        }
    }

    // ------------------------------------------------------------------ bulk

    fn bulk_entities(&mut self) {
        self.gen_countries_and_cities();
        self.gen_companies_and_universities();
        self.gen_people_and_works();
        self.gen_nature();
    }

    fn gen_countries_and_cities(&mut self) {
        let existing: FxHashSet<String> = self
            .countries
            .iter()
            .filter_map(|c| self.graph_label(c))
            .collect();
        let pool: Vec<&str> = names::COUNTRY_NAMES
            .iter()
            .copied()
            .filter(|n| !existing.contains(*n))
            .collect();
        let n_countries = self.config.countries.saturating_sub(self.countries.len());
        let mut city_pool: Vec<&str> = names::CITY_NAMES
            .iter()
            .copied()
            .filter(|c| {
                !self.used_iris.contains(&res::iri(c))
            })
            .collect();

        for (idx, name) in pool.iter().take(n_countries).enumerate() {
            let country = self.entity(name, "Country");
            let pop = self.rng.gen_range(1_000_000..150_000_000);
            self.data(&country, "populationTotal", Literal::integer(pop));
            let area = self.rng.gen_range(10_000.0..2_000_000.0f64).round();
            self.data(&country, "areaTotal", Literal::double(area));
            if idx < names::LANGUAGE_NAMES.len() {
                let lang = self.entity(names::LANGUAGE_NAMES[idx], "Language");
                self.obj(&country, "officialLanguage", &lang);
            }
            let cur_name = names::CURRENCY_NAMES[idx % names::CURRENCY_NAMES.len()];
            let cur_iri = res::iri(cur_name);
            let currency = if self.used_iris.contains(&cur_iri) {
                Iri::new(cur_iri)
            } else {
                self.entity(cur_name, "Currency")
            };
            self.obj(&country, "currency", &currency);

            for c in 0..self.config.cities_per_country {
                let name = match city_pool.pop() {
                    Some(n) => n.to_string(),
                    None => format!(
                        "New {}",
                        names::CITY_NAMES[self.rng.gen_range(0..names::CITY_NAMES.len())]
                    ),
                };
                let city = self.entity(&name, "City");
                self.obj(&city, "country", &country);
                let pop = self.rng.gen_range(50_000..15_000_000);
                self.data(&city, "populationTotal", Literal::integer(pop));
                if c == 0 {
                    self.obj(&country, "capital", &city);
                }
                self.cities.push(city);
            }
            self.countries.push(country);
        }
    }

    fn gen_companies_and_universities(&mut self) {
        for i in 0..self.config.companies {
            let stem = names::COMPANY_STEMS[i % names::COMPANY_STEMS.len()];
            let suffix = names::COMPANY_SUFFIXES[(i / names::COMPANY_STEMS.len() + i)
                % names::COMPANY_SUFFIXES.len()];
            let company = self.entity(&format!("{stem} {suffix}"), "Company");
            let hq = pick_from(&mut self.rng, &self.cities);
            self.obj(&company, "headquarter", &hq);
            self.obj(&company, "location", &hq);
            let staff = self.rng.gen_range(50..250_000);
            self.data(&company, "numberOfEmployees", Literal::integer(staff));
            let founding = self.date(1850, 2005);
            self.data(&company, "foundingDate", founding);
            self.companies.push(company);
        }
        for i in 0..self.config.universities {
            let city = pick_from(&mut self.rng, &self.cities);
            let city_label = self.graph_label(&city).unwrap_or_else(|| format!("City{i}"));
            let form = names::UNIVERSITY_CITY_FORMS[i % names::UNIVERSITY_CITY_FORMS.len()];
            let label = form.replace("{}", &city_label);
            let uni = self.entity(&label, "University");
            self.obj(&uni, "location", &city);
            let founded = self.date(1400, 1990);
            self.data(&uni, "foundingDate", founded);
            self.universities.push(uni);
        }
    }

    fn person_name(&mut self, used: &mut FxHashSet<String>) -> String {
        for _ in 0..32 {
            let f = names::FIRST_NAMES[self.rng.gen_range(0..names::FIRST_NAMES.len())];
            let l = names::LAST_NAMES[self.rng.gen_range(0..names::LAST_NAMES.len())];
            let name = format!("{f} {l}");
            if used.insert(name.clone()) {
                return name;
            }
        }
        // Pool exhausted (huge scale factors): indexed walk over a
        // deterministic middle-initial scheme, with a numeral-qualified
        // variant backing it up so the candidate space is unbounded. The
        // cursor persists across calls — every index is visited at most
        // once over the whole generation, so the walk stays amortized O(1)
        // per draw instead of re-scanning the occupied prefix each call.
        loop {
            let k = self.name_cursor;
            self.name_cursor += 1;
            let f = names::FIRST_NAMES[k % names::FIRST_NAMES.len()];
            let l = names::LAST_NAMES[(k / names::FIRST_NAMES.len()) % names::LAST_NAMES.len()];
            let initial = (b'A' + (k % 26) as u8) as char;
            let name = format!("{f} {initial}. {l}");
            if used.insert(name.clone()) {
                return name;
            }
            let name = format!("{f} {initial}. {l} {k}");
            if used.insert(name.clone()) {
                return name;
            }
        }
    }

    fn title(&mut self, used: &mut FxHashSet<String>) -> String {
        // Rejection-sample the pool; at large scale factors the combination
        // space (|adjectives| × |nouns| × 2) is exhausted, so fall back to a
        // deterministic numbered variant instead of looping forever.
        for _ in 0..32 {
            let a = names::TITLE_ADJECTIVES[self.rng.gen_range(0..names::TITLE_ADJECTIVES.len())];
            let n = names::TITLE_NOUNS[self.rng.gen_range(0..names::TITLE_NOUNS.len())];
            let candidate = if self.rng.gen_bool(0.5) {
                format!("The {a} {n}")
            } else {
                format!("{a} {n}")
            };
            if used.insert(candidate.clone()) {
                return candidate;
            }
        }
        loop {
            let k = self.title_cursor;
            self.title_cursor += 1;
            let a = names::TITLE_ADJECTIVES[k % names::TITLE_ADJECTIVES.len()];
            let n = names::TITLE_NOUNS[(k / names::TITLE_ADJECTIVES.len()) % names::TITLE_NOUNS.len()];
            let candidate = format!("The {a} {n} {k}");
            if used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    fn new_person(&mut self, class: &str, used_names: &mut FxHashSet<String>) -> Iri {
        let name = self.person_name(used_names);
        let person = self.entity(&name, class);
        let birth_city = pick_from(&mut self.rng, &self.cities);
        self.obj(&person, "birthPlace", &birth_city);
        let birth = self.date(1850, 1995);
        self.data(&person, "birthDate", birth.clone());
        // Half the people have died; deaths occur after births.
        if self.rng.gen_bool(0.5) {
            let death_city = pick_from(&mut self.rng, &self.cities);
            self.obj(&person, "deathPlace", &death_city);
            let birth_year: i32 = birth.lexical_form()[..4].parse().unwrap();
            let death = self.date(birth_year + 20, birth_year + 90);
            self.data(&person, "deathDate", death);
        } else {
            // The living get heights and residences.
            let height = (self.rng.gen_range(1.50..2.05f64) * 100.0).round() / 100.0;
            self.data(&person, "height", Literal::double(height));
            let residence = pick_from(&mut self.rng, &self.cities);
            self.obj(&person, "residence", &residence);
        }
        self.persons.push(person.clone());
        person
    }

    fn gen_people_and_works(&mut self) {
        let mut used_names: FxHashSet<String> = FxHashSet::default();
        let mut used_titles: FxHashSet<String> = FxHashSet::default();

        for _ in 0..self.config.writers {
            let writer = self.new_person("Writer", &mut used_names);
            for _ in 0..self.rng.gen_range(1..=4) {
                let title = self.title(&mut used_titles);
                let book = self.entity(&title, "Book");
                self.obj(&book, "author", &writer);
                let pages = self.rng.gen_range(90..900);
                self.data(&book, "numberOfPages", Literal::integer(pages));
                if !self.companies.is_empty() && self.rng.gen_bool(0.7) {
                    let publisher = pick_from(&mut self.rng, &self.companies);
                    self.obj(&book, "publisher", &publisher);
                }
                let released = self.date(1900, 2012);
                self.data(&book, "releaseDate", released);
            }
        }

        for _ in 0..self.config.actors {
            let actor = self.new_person("Actor", &mut used_names);
            self.actors.push(actor);
        }

        for _ in 0..self.config.directors {
            let director = self.new_person("FilmDirector", &mut used_names);
            for _ in 0..self.rng.gen_range(1..=3) {
                let title = self.title(&mut used_titles);
                let film = self.entity(&title, "Film");
                self.obj(&film, "director", &director);
                let released = self.date(1930, 2012);
                self.data(&film, "releaseDate", released);
                for _ in 0..self.rng.gen_range(1..=3) {
                    let star = pick_from(&mut self.rng, &self.actors);
                    self.obj(&film, "starring", &star);
                }
                if self.rng.gen_bool(0.4) {
                    let producer = pick_from(&mut self.rng, &self.persons);
                    self.obj(&film, "producer", &producer);
                }
            }
        }

        for _ in 0..self.config.musicians {
            let musician = self.new_person("MusicalArtist", &mut used_names);
            for _ in 0..self.rng.gen_range(1..=2) {
                let title = self.title(&mut used_titles);
                let album = self.entity(&title, "Album");
                self.obj(&album, "artist", &musician);
                let released = self.date(1950, 2012);
                self.data(&album, "releaseDate", released);
            }
            for _ in 0..self.rng.gen_range(1..=3) {
                let title = self.title(&mut used_titles);
                let song = self.entity(&title, "Song");
                self.obj(&song, "writer", &musician);
                if self.rng.gen_bool(0.5) {
                    self.obj(&song, "musicComposer", &musician);
                }
            }
            self.musicians.push(musician);
        }

        for _ in 0..self.config.players {
            let player = self.new_person("BasketballPlayer", &mut used_names);
            // Players are tall; overwrite/set height explicitly.
            let height = (self.rng.gen_range(1.85..2.20f64) * 100.0).round() / 100.0;
            self.data(&player, "height", Literal::double(height));
        }

        for _ in 0..self.config.scientists {
            let scientist = self.new_person("Scientist", &mut used_names);
            if !self.universities.is_empty() {
                let uni = pick_from(&mut self.rng, &self.universities);
                self.obj(&scientist, "almaMater", &uni);
            }
        }

        // Spouses among the living, mayors and leaders, founders, key people.
        let persons = self.persons.clone();
        for chunk in persons.chunks(7) {
            if chunk.len() >= 2 && self.rng.gen_bool(0.4) {
                self.obj(&chunk[0], "spouse", &chunk[1]);
                self.obj(&chunk[1], "spouse", &chunk[0]);
            }
            if chunk.len() >= 3 && self.rng.gen_bool(0.3) {
                self.obj(&chunk[0], "child", &chunk[2]);
            }
        }
        let cities = self.cities.clone();
        let mut used_mayor_names = used_names.clone();
        for city in cities.iter() {
            if self.rng.gen_bool(0.3) {
                let mayor = self.new_person("Mayor", &mut used_mayor_names);
                self.obj(city, "mayor", &mayor);
            }
        }
        let countries = self.countries.clone();
        for country in countries.iter().skip(1) {
            // skip USA which has Obama
            if self.rng.gen_bool(0.6) {
                let leader = self.new_person("Politician", &mut used_mayor_names);
                self.obj(country, "leaderName", &leader);
            }
        }
        let companies = self.companies.clone();
        for company in companies.iter() {
            if self.rng.gen_bool(0.6) {
                let founder = pick_from(&mut self.rng, &self.persons);
                self.obj(company, "foundedBy", &founder);
                self.obj(company, "keyPerson", &founder);
            }
        }

        // Video games by companies.
        for _ in 0..self.config.games {
            let title = self.title(&mut used_titles);
            let game = self.entity(&title, "VideoGame");
            if !self.companies.is_empty() {
                let dev = pick_from(&mut self.rng, &self.companies);
                self.obj(&game, "developer", &dev);
            }
            let released = self.date(1980, 2012);
            self.data(&game, "releaseDate", released);
        }

        // Bands with members.
        for i in 0..self.config.bands {
            let stem = names::TITLE_NOUNS[i % names::TITLE_NOUNS.len()];
            let band = self.entity(&format!("The {stem}s"), "Band");
            for _ in 0..self.rng.gen_range(2..=4) {
                if self.musicians.is_empty() {
                    break;
                }
                let member = pick_from(&mut self.rng, &self.musicians);
                self.obj(&band, "bandMember", &member);
            }
        }
    }

    fn gen_nature(&mut self) {
        for i in 0..self.config.rivers {
            let stem = names::RIVER_STEMS[i % names::RIVER_STEMS.len()];
            let suffix = if i / names::RIVER_STEMS.len() == 0 { String::new() } else {
                format!(" {}", i / names::RIVER_STEMS.len() + 1)
            };
            let river = self.entity(&format!("{stem}a River{suffix}"), "River");
            let length = self.rng.gen_range(80.0..3600.0f64).round();
            self.data(&river, "length", Literal::double(length));
            let country = pick_from(&mut self.rng, &self.countries);
            self.obj(&river, "mouthCountry", &country);
            if self.rng.gen_bool(0.5) {
                let bridge = self.entity(&format!("{stem}a Bridge"), "Bridge");
                self.obj(&bridge, "crosses", &river);
            }
            self.rivers.push(river);
        }
        for i in 0..self.config.mountains {
            let stem = names::MOUNT_STEMS[i % names::MOUNT_STEMS.len()];
            let mountain = self.entity(&format!("Mount {stem}on"), "Mountain");
            let elevation = self.rng.gen_range(900.0..8500.0f64).round();
            self.data(&mountain, "elevation", Literal::double(elevation));
            let country = pick_from(&mut self.rng, &self.countries);
            self.obj(&mountain, "country", &country);
        }
        for i in 0..self.config.lakes {
            let stem = names::MOUNT_STEMS[(i * 3 + 1) % names::MOUNT_STEMS.len()];
            let lake = self.entity(&format!("Lake {stem}ia"), "Lake");
            let depth = self.rng.gen_range(8.0..1600.0f64).round();
            self.data(&lake, "depth", Literal::double(depth));
            let country = pick_from(&mut self.rng, &self.countries);
            self.obj(&lake, "country", &country);
        }
    }

    // ------------------------------------------------------------ page links

    /// Derives `dbont:wikiPageWikiLink` triples: one per object-property fact
    /// (both directions), a popularity boost for the famous athlete (every
    /// basketball player links to him), and random noise links.
    fn page_links(&mut self) {
        let link = Term::iri(vocab::WIKI_PAGE_LINK);
        let mut pairs: Vec<(Iri, Iri)> = Vec::new();
        for t in self.graph.iter() {
            let (Term::Iri(s), Term::Iri(p), Term::Iri(o)) =
                (&t.subject, &t.predicate, &t.object)
            else {
                continue;
            };
            if p.as_str().starts_with(dbont::NS)
                && s.as_str().starts_with(res::NS)
                && o.as_str().starts_with(res::NS)
            {
                pairs.push((s.clone(), o.clone()));
            }
        }
        for (s, o) in pairs {
            self.graph.add(Term::Iri(s.clone()), link.clone(), Term::Iri(o.clone()));
            self.graph.add(Term::Iri(o), link.clone(), Term::Iri(s));
        }

        if let Some(mj) = self.famous_athlete.clone() {
            for p in self.persons.clone() {
                if p != mj && self.rng.gen_bool(0.25) {
                    self.graph.add(Term::Iri(p), link.clone(), Term::Iri(mj.clone()));
                }
            }
        }

        let n_noise = (self.persons.len() as f64 * self.config.link_noise) as usize;
        for _ in 0..n_noise {
            let a = pick_from(&mut self.rng, &self.persons);
            let b = pick_from(&mut self.rng, &self.cities);
            self.graph.add(Term::Iri(a), link.clone(), Term::Iri(b));
        }
    }

    fn graph_label(&self, iri: &Iri) -> Option<String> {
        self.graph
            .objects_of(&Term::Iri(iri.clone()), &Term::iri(rdfs::LABEL))
            .into_iter()
            .find_map(|t| t.as_literal().map(|l| l.lexical_form().to_string()))
    }
}

/// Uniformly picks one IRI from a pool (disjoint-borrow-friendly helper).
fn pick_from(rng: &mut Rng, pool: &[Iri]) -> Iri {
    pool[rng.gen_range(0..pool.len())].clone()
}

/// Helper: the United States IRI (exists after `famous_entities`).
fn usa_of(gen: &Generator) -> Iri {
    gen.countries
        .iter()
        .find(|c| c.as_str().ends_with("United_States"))
        .cloned()
        .expect("USA generated")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&KbConfig::tiny());
        let b = generate(&KbConfig::tiny());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn default_scale_kb_matches_the_pinned_fingerprint() {
        // The rejection-sampling fast path never exhausts its pools at
        // default scale, so the persistent-cursor fallback must leave the
        // default KB byte-identical to the pre-refactor generator.
        let kb = generate(&KbConfig::default());
        assert_eq!(
            kb.fingerprint(),
            DEFAULT_KB_FINGERPRINT,
            "default-scale KB drifted from the pinned fingerprint"
        );
    }

    #[test]
    fn name_fallback_walk_is_unique_and_single_pass() {
        // Force the fallback by pre-filling `used` with every 2-part name
        // the rejection sampler could draw; the indexed walk must mint
        // unique names while visiting each cursor index at most once.
        let mut gen = Generator::new(KbConfig::tiny());
        let mut used: FxHashSet<String> = FxHashSet::default();
        for f in names::FIRST_NAMES {
            for l in names::LAST_NAMES {
                used.insert(format!("{f} {l}"));
            }
        }
        let saturated = used.len();
        let draws = 5_000;
        for _ in 0..draws {
            let name = gen.person_name(&mut used);
            assert!(used.contains(&name));
        }
        assert_eq!(used.len(), saturated + draws, "every draw minted a fresh name");
        // Each cursor index yields at most two candidates and is never
        // revisited, so the walk length is linear in the number of draws —
        // the old per-call `k = used.len()` restart re-scanned this prefix
        // on every draw.
        assert!(
            gen.name_cursor <= draws,
            "cursor advanced {} times for {draws} draws",
            gen.name_cursor
        );
        let mut titles: FxHashSet<String> = FxHashSet::default();
        for a in names::TITLE_ADJECTIVES {
            for n in names::TITLE_NOUNS {
                titles.insert(format!("The {a} {n}"));
                titles.insert(format!("{a} {n}"));
            }
        }
        let saturated = titles.len();
        for _ in 0..draws {
            gen.title(&mut titles);
        }
        assert_eq!(titles.len(), saturated + draws);
        assert_eq!(gen.title_cursor, draws, "numbered titles collide with nothing");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&KbConfig::tiny());
        let b = generate(&KbConfig { seed: 42, ..KbConfig::tiny() });
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn paper_examples_are_queryable() {
        let kb = generate(&KbConfig::tiny());
        // Which book is written by Orhan Pamuk → 3 books via dbont:author.
        let sols = kb
            .query("SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }")
            .unwrap()
            .into_solutions().unwrap();
        assert_eq!(sols.len(), 3);
        // Michael Jordan's height (the basketball player holds the
        // qualified IRI; the scientist namesake was minted first).
        let sols = kb
            .query("SELECT ?h { <http://dbpedia.org/resource/Michael_Jordan_(2)> dbont:height ?h }")
            .unwrap()
            .into_solutions().unwrap();
        assert_eq!(sols.first().unwrap().as_literal().unwrap().as_f64(), Some(1.98));
        // Where did Abraham Lincoln die.
        let sols = kb
            .query("SELECT ?p { res:Abraham_Lincoln dbont:deathPlace ?p }")
            .unwrap()
            .into_solutions().unwrap();
        assert_eq!(kb.label_of(sols.first().unwrap().as_iri().unwrap()), Some("Washington"));
    }

    #[test]
    fn ambiguous_labels_have_multiple_entities() {
        let kb = generate(&KbConfig::tiny());
        assert!(kb.entities_with_label("Springfield").len() >= 3);
        assert_eq!(kb.entities_with_label("Michael Jordan").len(), 2);
    }

    #[test]
    fn famous_athlete_has_higher_degree_than_namesake() {
        let kb = generate(&KbConfig::default());
        let jordans = kb.entities_with_label("Michael Jordan");
        let athlete = jordans.iter().find(|i| kb.is_instance_of(i, "Athlete")).unwrap();
        let scientist = jordans.iter().find(|i| kb.is_instance_of(i, "Scientist")).unwrap();
        assert!(
            kb.page_degree(athlete) > kb.page_degree(scientist),
            "athlete {} vs scientist {}",
            kb.page_degree(athlete),
            kb.page_degree(scientist)
        );
    }

    #[test]
    fn every_entity_has_type_and_label() {
        let kb = generate(&KbConfig::tiny());
        for (_, iris) in kb.labels_iter() {
            for iri in iris {
                assert!(!kb.classes_of(iri).is_empty(), "{iri:?} lacks a class");
            }
        }
    }

    #[test]
    fn default_config_reaches_realistic_scale() {
        let kb = generate(&KbConfig::default());
        assert!(kb.entity_count() > 800, "got {}", kb.entity_count());
        assert!(kb.len() > 8_000, "got {} triples", kb.len());
    }

    #[test]
    fn page_links_exist_for_facts() {
        let kb = generate(&KbConfig::tiny());
        let pamuk = Iri::new(res::iri("Orhan Pamuk"));
        let snow = Iri::new(res::iri("Snow"));
        assert!(kb.are_linked(&pamuk, &snow));
    }
}

